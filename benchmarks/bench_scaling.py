"""E14/E15: scaling behaviour of the core pipelines.

Chase throughput vs instance size, exact-inference tree size vs
branching, parallel-chase fan-out, query evaluation on PDBs, sharded
multi-process sampling scale-up, and program-server throughput - all
driven through the compile-once facade.
"""

import os
import math
import time

import pytest

from repro.api import compile as compile_program
from repro.core.exact import exact_sequential_spdb
from repro.core.observe import observe
from repro.core.program import Program
from repro.pdb.events import (AtLeastEvent, ContainsFactEvent, Equals,
                              FactSet, Interval)
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.query import (Aggregate, agg_count, aggregate_distribution,
                         scan)
from repro.serving import ProgramServer, ShardExecutor, sample_sharded
from repro.workloads.generators import (bernoulli_grid_program,
                                        earthquake_city_instance,
                                        items_instance,
                                        staged_slots_instance,
                                        staged_slots_program)
from repro.workloads.paper import example_3_4_program


class TestE14ChaseScaling:
    @pytest.mark.parametrize("n_cities", [10, 40])
    def test_sequential_chase(self, benchmark, n_cities):
        instance = earthquake_city_instance(n_cities, 4, seed=0)
        session = compile_program(example_3_4_program()).on(instance)
        run = benchmark(lambda: session.run(rng=0))
        assert run.terminated

    @pytest.mark.parametrize("n_items", [50, 400])
    def test_parallel_fanout(self, benchmark, n_items):
        instance = items_instance(n_items)
        session = compile_program(bernoulli_grid_program()).on(
            instance, parallel=True)
        run = benchmark(lambda: session.run(rng=0))
        assert run.terminated and run.steps == 2


class TestE14ExactTreeScaling:
    @pytest.mark.parametrize("n_flips", [4, 8, 12])
    def test_tree_growth(self, benchmark, n_flips):
        # n independent flips: 2^n leaf worlds.
        rules = "\n".join(f"F{i}(Flip<0.5>) :- true."
                          for i in range(n_flips))
        program = Program.parse(rules)
        pdb = benchmark(lambda: exact_sequential_spdb(program))
        assert pdb.support_size() == 2 ** n_flips
        assert pdb.total_mass() == pytest.approx(1.0)


class TestE14SamplerScaling:
    @pytest.mark.parametrize("backend", ["scalar", "batched"])
    @pytest.mark.parametrize("n_samples", [100, 1000])
    def test_monte_carlo_throughput(self, benchmark, n_samples,
                                    backend):
        instance = earthquake_city_instance(5, 4, seed=1)
        session = compile_program(example_3_4_program()).on(instance,
                                                            seed=0)
        pdb = benchmark(lambda: session.sample(n_samples,
                                               backend=backend).pdb)
        assert pdb.n_runs == n_samples

    def test_monte_carlo_error_decay(self, benchmark):
        # Estimator error shrinks ~ 1/sqrt(n): the workhorse fact
        # behind every Monte-Carlo comparison in this suite.
        compiled = compile_program("R(Flip<0.3>) :- true.")
        from repro.pdb.facts import Fact
        f = Fact("R", (1,))

        def errors():
            out = []
            for n, seed in ((200, 0), (5000, 1)):
                pdb = compiled.on(seed=seed).sample(n).pdb
                out.append(abs(pdb.marginal(f) - 0.3))
            return out

        small_n, large_n = benchmark(errors)
        assert large_n <= small_n + 0.02


class TestE15ServingScaling:
    """Sharded sampling scale-up + program-server throughput (E15).

    The shard benchmarks reuse one warm :class:`ShardExecutor` across
    rounds (the pool initializer's compile/bootstrap cost is paid
    once, as in the server), so the timed region is the steady-state
    per-batch cost the shard count is supposed to divide.
    """

    N_WORLDS = 256

    @staticmethod
    def _staged_session(seed: int = 0):
        instance = staged_slots_instance(n_stages=6, slots_per_stage=6,
                                         padding=200)
        return compile_program(staged_slots_program(n_stages=6)).on(
            instance, seed=seed)

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_shard_scaling(self, benchmark, shards):
        session = self._staged_session()
        cfg = session.config.replace(shards=shards)
        with ShardExecutor(session.compiled.translated,
                           session.instance, cfg,
                           processes=shards) as executor:
            # One un-timed call warms every pool worker.
            sample_sharded(session, self.N_WORLDS, cfg,
                           executor=executor)
            result = benchmark(
                lambda: sample_sharded(session, self.N_WORLDS, cfg,
                                       executor=executor))
        assert result.pdb.n_runs == self.N_WORLDS
        assert result.backend == "sharded"
        assert result.diagnostics["shards"] == shards

    def test_shard_speedup_at_four(self):
        # The acceptance-criterion assertion: 4 shards beat 1 shard
        # by >1.5x on the staged-slots workload.  Only meaningful
        # with real cores to spread over, so single/dual-core runners
        # (this fixed container has one) skip rather than fake it.
        if (os.cpu_count() or 1) < 4:
            pytest.skip("shard speedup needs >= 4 cores "
                        f"(have {os.cpu_count()})")
        session = self._staged_session()
        n = 4000
        timings = {}
        for shards in (1, 4):
            cfg = session.config.replace(shards=shards)
            with ShardExecutor(session.compiled.translated,
                               session.instance, cfg,
                               processes=shards) as executor:
                sample_sharded(session, n, cfg, executor=executor)
                best = float("inf")
                for _ in range(3):
                    start = time.perf_counter()
                    sample_sharded(session, n, cfg, executor=executor)
                    best = min(best, time.perf_counter() - start)
            timings[shards] = best
        speedup = timings[1] / timings[4]
        assert speedup > 1.5, (
            f"4-shard speedup {speedup:.2f}x <= 1.5x "
            f"(1 shard {timings[1]:.3f}s, 4 shards {timings[4]:.3f}s)")

    def test_server_request_throughput(self, benchmark):
        # Mixed-workload requests/sec through the transport-free
        # handler - the steady-state cost of a served request once
        # the caches are warm.  Zero recompilation is asserted via
        # the same counter the acceptance criterion names.
        coin = "Heads(x, Flip<0.5>) :- Coin(x)."
        cascade = ("Trig(x, Flip<0.6>) :- Site(x).\n"
                   "Alarm(x, Flip<0.5>) :- Trig(x, 1).")
        coins = {"Coin": [[0], [1]]}
        sites = {"Site": [[0], [1], [2]]}
        requests = [
            {"op": "ping"},
            {"op": "analyze", "program": coin},
            {"op": "sample", "program": coin, "instance": coins,
             "n": 100, "config": {"seed": 1}},
            {"op": "marginal", "program": coin, "instance": coins,
             "fact": ["Heads", [0, 1]], "n": 100,
             "config": {"seed": 2}},
            {"op": "sample", "program": cascade, "instance": sites,
             "n": 100, "config": {"seed": 3}},
        ]
        server = ProgramServer()

        def serve_mixed():
            for request in requests:
                reply = server.handle(request)
                assert reply["ok"], reply
            return server.stats["requests"]

        serve_mixed()  # warm both program/session caches
        benchmark(serve_mixed)
        assert server.stats["programs_compiled"] == 2
        assert server.stats["errors"] == 0
        # 4 of every 5 requests reach the compile cache; only the
        # first call's 2 compiles ever miss.
        assert server.stats["program_cache_hits"] \
            == server.stats["requests"] * 4 // 5 - 2


class TestE16StreamingScaling:
    """Streaming-posterior update cost vs the one-shot chase (E16).

    The streaming contract: once the 10k-world batch is sampled, an
    ``observe()`` is a handful of numpy passes over per-world weight
    arrays - O(evidence), not O(program) - so an evidence update must
    be far cheaper than re-running ``posterior(method="likelihood")``
    from scratch over the same ensemble.
    """

    N_WORLDS = 10_000
    N_CITIES = 20

    @classmethod
    def _session(cls, seed: int = 0):
        instance = Instance.from_dict(
            {"City": [(f"c{i}",) for i in range(cls.N_CITIES)]})
        return compile_program(
            "Temp(c, Normal<20.0, 4.0>) :- City(c).").on(instance,
                                                         seed=seed)

    def test_stream_observe_cycle(self, benchmark):
        stream = self._session().stream(self.N_WORLDS)
        evidence = observe("Temp", "c0", 21.5)

        def cycle():
            stream.retract(stream.observe(evidence))

        benchmark(cycle)
        assert stream.n_evidence == 0
        assert stream.n_worlds == self.N_WORLDS

    def test_stream_open(self, benchmark):
        session = self._session()
        stream = benchmark(lambda: session.stream(self.N_WORLDS))
        assert stream.n_worlds == self.N_WORLDS

    def test_observe_cheaper_than_fresh_posterior(self):
        # The acceptance-criterion assertion: a per-observe update on
        # the 10k-world stream is >= 10x cheaper than a fresh
        # likelihood-weighted posterior.  The fresh side is timed on a
        # 20x smaller run count - a strict lower bound on the full
        # job (the scalar weighted chase is linear in n) - to keep
        # the benchmark's wall clock in seconds, not minutes.
        session = self._session()
        evidence = observe("Temp", "c0", 21.5)
        stream = session.stream(self.N_WORLDS)
        conditioned = session.observe(evidence)

        def observe_cycle():
            stream.retract(stream.observe(evidence))

        def fresh_posterior():
            conditioned.posterior(method="likelihood",
                                  n=self.N_WORLDS // 20)

        observe_cycle()  # warm the mask/weight buffers
        fresh_posterior()
        per_observe = float("inf")
        fresh_lower_bound = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            observe_cycle()
            per_observe = min(per_observe,
                              time.perf_counter() - start)
            start = time.perf_counter()
            fresh_posterior()
            fresh_lower_bound = min(fresh_lower_bound,
                                    time.perf_counter() - start)
        assert fresh_lower_bound > 10 * per_observe, (
            f"streaming observe ({per_observe * 1e3:.2f} ms) is not "
            f">= 10x cheaper than a fresh posterior (>= "
            f"{fresh_lower_bound * 1e3:.2f} ms at n/20)")


class TestE14QueryScaling:
    @pytest.mark.parametrize("n_worlds", [100, 1000])
    def test_query_over_pdb(self, benchmark, n_worlds):
        instance = earthquake_city_instance(4, 4, seed=2)
        pdb = compile_program(example_3_4_program()).on(
            instance, seed=1).sample(n_worlds).pdb
        query = Aggregate(scan("Alarm", "unit"), (),
                          {"n": agg_count()})
        distribution = benchmark(
            lambda: aggregate_distribution(pdb, query))
        assert distribution.total_mass() == pytest.approx(1.0)


class TestE17ColumnarQueryPushdown:
    """Compiled columnar plans vs the materializing path (E17).

    The pushdown contract: a structural join+aggregate over a
    10k-world columnar batch compiles to mask/reduction passes over
    the sample arrays and never expands the grouped worlds, so it must
    beat evaluating the same plan per materialized world by a wide
    margin.  The materializing side is timed on a fresh columnar view
    of the *same* batch outcome each round - re-materializing is that
    path's real cost, exactly what the pushdown exists to avoid.
    """

    N_WORLDS = 10_000

    def test_join_aggregate_speedup(self):
        from repro.engine.batched import ColumnarMonteCarloPDB
        from repro.measures.discrete import DiscreteMeasure
        from repro.query.columnar import explain

        instance = earthquake_city_instance(4, 4, seed=2)
        session = compile_program(example_3_4_program()).on(instance,
                                                            seed=1)
        pdb = session.sample(self.N_WORLDS).pdb
        assert isinstance(pdb, ColumnarMonteCarloPDB)
        query = Aggregate(
            scan("Alarm", "unit").join(scan("House", "unit", "city")),
            (), {"n": agg_count()})
        assert explain(pdb, query) == "columnar"
        visible = session.compiled.visible_relations

        def columnar():
            return aggregate_distribution(pdb, query)

        def materializing():
            fresh = ColumnarMonteCarloPDB(pdb._outcome, visible)
            counts = [next(iter(query.evaluate(world).rows))[0]
                      for world in fresh.worlds]
            return DiscreteMeasure.from_samples(counts).scale(
                fresh.total_mass())

        compiled_answer = columnar()  # warm (and correctness anchor)
        assert pdb.materializations == 0, \
            "the columnar plan expanded the grouped worlds"
        assert materializing() == compiled_answer
        pushdown = float("inf")
        materialized = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            columnar()
            pushdown = min(pushdown, time.perf_counter() - start)
            start = time.perf_counter()
            materializing()
            materialized = min(materialized,
                               time.perf_counter() - start)
        assert pdb.materializations == 0
        assert materialized > 5 * pushdown, (
            f"columnar pushdown ({pushdown * 1e3:.1f} ms) is not "
            f">= 5x faster than the materializing path "
            f"({materialized * 1e3:.1f} ms) on "
            f"{self.N_WORLDS} worlds")


class TestE18GuidedConditioning:
    """Guided conditioning vs rejection on rare evidence (E18).

    Backward evidence propagation (repro.core.backward) turns a
    1-in-1000 discrete event into truncated proposals with acceptance
    1.0, so the cost of one posterior-effective world must undercut
    rejection's by far more than an order of magnitude - >= 20x is
    the gate here, with >= 1000x the typical observed ratio - while
    the importance-weighted marginals stay law-exact (anchored against
    ``method="exact"`` on the same session, and against the
    closed-form truncated normal on the continuous side).
    """

    DIE_TEXT = """
        Roll(d, DiscreteUniform<1, 1000>) :- Die(d).
        Win(d) :- Roll(d, 1000).
    """
    HEIGHT_TEXT = "Height(p, Normal<170.0, 100.0>) :- Person(p)."

    @classmethod
    def _die_session(cls):
        return compile_program(cls.DIE_TEXT) \
            .on(Instance.of(Fact("Die", ("d1",)))) \
            .observe(ContainsFactEvent(Fact("Win", ("d1",))))

    def test_guided_rare_event_throughput(self, benchmark):
        session = self._die_session()
        result = benchmark(
            lambda: session.posterior(method="guided", n=512, seed=3))
        assert result.diagnostics["acceptance_rate"] == 1.0
        assert result.diagnostics["n_pinned"] == 1

    def test_guided_beats_rejection_20x(self):
        session = self._die_session()
        start = time.perf_counter()
        guided = session.posterior(method="guided", n=512, seed=3)
        guided_cost = (time.perf_counter() - start) \
            / guided.diagnostics["n_accepted"]
        start = time.perf_counter()
        rejection = session.posterior(method="rejection", n=6000,
                                      seed=5)
        rejection_cost = (time.perf_counter() - start) \
            / rejection.diagnostics["n_accepted"]
        assert rejection_cost > 20 * guided_cost, (
            f"guided conditioning ({guided_cost * 1e6:.0f} us per "
            f"posterior world) is not >= 20x cheaper than rejection "
            f"({rejection_cost * 1e6:.0f} us per accepted world at "
            f"acceptance "
            f"{rejection.diagnostics['acceptance_rate']:.4f})")
        # exact marginal agreement: conditioning on Win forces the
        # winning roll with probability one, and guided must report
        # that *exactly* (weights are uniform across proposals)
        exact = session.posterior(method="exact")
        for f in (Fact("Roll", ("d1", 1000)), Fact("Win", ("d1",))):
            assert exact.pdb.marginal(f) == pytest.approx(1.0)
            assert guided.pdb.marginal(f) == pytest.approx(1.0)

    def test_continuous_truncation_agreement(self, benchmark):
        """Height >= 190 under N(170, 100): acceptance 1.0 and the
        posterior mean of the closed-form truncated normal."""
        tall = AtLeastEvent(
            FactSet("Height", Equals("ada"),
                    Interval(190.0, float("inf"))), 1)
        session = compile_program(self.HEIGHT_TEXT) \
            .on(Instance.of(Fact("Person", ("ada",)))).observe(tall)
        result = benchmark(
            lambda: session.posterior(method="guided", n=1500, seed=3))
        assert result.diagnostics["acceptance_rate"] == 1.0
        assert result.diagnostics["n_truncated"] == 1
        mean = result.pdb.expectation(
            lambda w: next(iter(w.facts_of("Height"))).args[1])
        z = 2.0  # (190 - 170) / sigma
        hazard = (math.exp(-z * z / 2) / math.sqrt(2 * math.pi)) \
            / (1 - 0.5 * (1 + math.erf(z / math.sqrt(2))))
        closed_form = 170.0 + 10.0 * hazard
        assert abs(mean - closed_form) < 0.4, (
            f"guided posterior mean {mean:.2f} vs closed-form "
            f"truncated normal {closed_form:.2f}")
