"""E14: scaling behaviour of the core pipelines.

Chase throughput vs instance size, exact-inference tree size vs
branching, parallel-chase fan-out, and query evaluation on PDBs - all
driven through the compile-once facade.
"""

import pytest

from repro.api import compile as compile_program
from repro.core.exact import exact_sequential_spdb
from repro.core.program import Program
from repro.query.aggregates import Aggregate, agg_count
from repro.query.lifted import aggregate_distribution
from repro.query.relalg import scan
from repro.workloads.generators import (bernoulli_grid_program,
                                        earthquake_city_instance,
                                        items_instance)
from repro.workloads.paper import example_3_4_program


class TestE14ChaseScaling:
    @pytest.mark.parametrize("n_cities", [10, 40])
    def test_sequential_chase(self, benchmark, n_cities):
        instance = earthquake_city_instance(n_cities, 4, seed=0)
        session = compile_program(example_3_4_program()).on(instance)
        run = benchmark(lambda: session.run(rng=0))
        assert run.terminated

    @pytest.mark.parametrize("n_items", [50, 400])
    def test_parallel_fanout(self, benchmark, n_items):
        instance = items_instance(n_items)
        session = compile_program(bernoulli_grid_program()).on(
            instance, parallel=True)
        run = benchmark(lambda: session.run(rng=0))
        assert run.terminated and run.steps == 2


class TestE14ExactTreeScaling:
    @pytest.mark.parametrize("n_flips", [4, 8, 12])
    def test_tree_growth(self, benchmark, n_flips):
        # n independent flips: 2^n leaf worlds.
        rules = "\n".join(f"F{i}(Flip<0.5>) :- true."
                          for i in range(n_flips))
        program = Program.parse(rules)
        pdb = benchmark(lambda: exact_sequential_spdb(program))
        assert pdb.support_size() == 2 ** n_flips
        assert pdb.total_mass() == pytest.approx(1.0)


class TestE14SamplerScaling:
    @pytest.mark.parametrize("backend", ["scalar", "batched"])
    @pytest.mark.parametrize("n_samples", [100, 1000])
    def test_monte_carlo_throughput(self, benchmark, n_samples,
                                    backend):
        instance = earthquake_city_instance(5, 4, seed=1)
        session = compile_program(example_3_4_program()).on(instance,
                                                            seed=0)
        pdb = benchmark(lambda: session.sample(n_samples,
                                               backend=backend).pdb)
        assert pdb.n_runs == n_samples

    def test_monte_carlo_error_decay(self, benchmark):
        # Estimator error shrinks ~ 1/sqrt(n): the workhorse fact
        # behind every Monte-Carlo comparison in this suite.
        compiled = compile_program("R(Flip<0.3>) :- true.")
        from repro.pdb.facts import Fact
        f = Fact("R", (1,))

        def errors():
            out = []
            for n, seed in ((200, 0), (5000, 1)):
                pdb = compiled.on(seed=seed).sample(n).pdb
                out.append(abs(pdb.marginal(f) - 0.3))
            return out

        small_n, large_n = benchmark(errors)
        assert large_n <= small_n + 0.02


class TestE14QueryScaling:
    @pytest.mark.parametrize("n_worlds", [100, 1000])
    def test_query_over_pdb(self, benchmark, n_worlds):
        instance = earthquake_city_instance(4, 4, seed=2)
        pdb = compile_program(example_3_4_program()).on(
            instance, seed=1).sample(n_worlds).pdb
        query = Aggregate(scan("Alarm", "unit"), (),
                          {"n": agg_count()})
        distribution = benchmark(
            lambda: aggregate_distribution(pdb, query))
        assert distribution.total_mass() == pytest.approx(1.0)
