"""E14: scaling behaviour of the core pipelines.

Chase throughput vs instance size, exact-inference tree size vs
branching, parallel-chase fan-out, and query evaluation on PDBs.
"""

import pytest

from repro.core.chase import run_chase
from repro.core.exact import exact_sequential_spdb
from repro.core.parallel import run_parallel_chase
from repro.core.program import Program
from repro.core.semantics import sample_spdb
from repro.query.aggregates import Aggregate, agg_count
from repro.query.lifted import aggregate_distribution
from repro.query.relalg import scan
from repro.workloads.generators import (bernoulli_grid_program,
                                        earthquake_city_instance,
                                        items_instance)
from repro.workloads.paper import example_3_4_program


class TestE14ChaseScaling:
    @pytest.mark.parametrize("n_cities", [10, 40])
    def test_sequential_chase(self, benchmark, n_cities):
        program = example_3_4_program()
        instance = earthquake_city_instance(n_cities, 4, seed=0)
        run = benchmark(lambda: run_chase(program, instance, rng=0))
        assert run.terminated

    @pytest.mark.parametrize("n_items", [50, 400])
    def test_parallel_fanout(self, benchmark, n_items):
        program = bernoulli_grid_program()
        instance = items_instance(n_items)
        run = benchmark(lambda: run_parallel_chase(program, instance,
                                                   rng=0))
        assert run.terminated and run.steps == 2


class TestE14ExactTreeScaling:
    @pytest.mark.parametrize("n_flips", [4, 8, 12])
    def test_tree_growth(self, benchmark, n_flips):
        # n independent flips: 2^n leaf worlds.
        rules = "\n".join(f"F{i}(Flip<0.5>) :- true."
                          for i in range(n_flips))
        program = Program.parse(rules)
        pdb = benchmark(lambda: exact_sequential_spdb(program))
        assert pdb.support_size() == 2 ** n_flips
        assert pdb.total_mass() == pytest.approx(1.0)


class TestE14SamplerScaling:
    @pytest.mark.parametrize("n_samples", [100, 1000])
    def test_monte_carlo_throughput(self, benchmark, n_samples):
        program = example_3_4_program()
        instance = earthquake_city_instance(5, 4, seed=1)
        pdb = benchmark(lambda: sample_spdb(program, instance,
                                            n=n_samples, rng=0))
        assert pdb.n_runs == n_samples

    def test_monte_carlo_error_decay(self, benchmark):
        # Estimator error shrinks ~ 1/sqrt(n): the workhorse fact
        # behind every Monte-Carlo comparison in this suite.
        program = Program.parse("R(Flip<0.3>) :- true.")
        from repro.pdb.facts import Fact
        f = Fact("R", (1,))

        def errors():
            out = []
            for n, seed in ((200, 0), (5000, 1)):
                pdb = sample_spdb(program, n=n, rng=seed)
                out.append(abs(pdb.marginal(f) - 0.3))
            return out

        small_n, large_n = benchmark(errors)
        assert large_n <= small_n + 0.02


class TestE14QueryScaling:
    @pytest.mark.parametrize("n_worlds", [100, 1000])
    def test_query_over_pdb(self, benchmark, n_worlds):
        program = example_3_4_program()
        instance = earthquake_city_instance(4, 4, seed=2)
        pdb = sample_spdb(program, instance, n=n_worlds, rng=1)
        query = Aggregate(scan("Alarm", "unit"), (),
                          {"n": agg_count()})
        distribution = benchmark(
            lambda: aggregate_distribution(pdb, query))
        assert distribution.total_mass() == pytest.approx(1.0)
