"""Benchmark post-processing + regression gate for CI.

Turns a raw ``pytest --benchmark-json`` dump into the committed-schema
``BENCH_<sha>.json`` artifact (one median per experiment id) that the
benchmark-regression CI job uploads on every run - the project's
performance trajectory - and compares it against
``benchmarks/baseline.json``, failing on a >25% median regression.

**Runner-speed normalization.**  Absolute medians are meaningless
across CI runners (a cold shared VM is easily 2-3x slower than the
machine that wrote the baseline), so the gate compares medians
*normalized by the calibration benchmark* of the same run
(``test_calibration_spin`` in ``bench_engine_ablation.py``: a pure
python spin loop whose cost tracks single-core interpreter speed).
``baseline.json`` stores normalized medians; regressions are ratios of
ratios and survive runner churn.

The calibration tracks single-core *interpreter* speed, which is the
dominant cost of every gated benchmark (all are single-threaded; the
"parallel chase" benchmarks are semantic parallelism, not threads).
numpy-heavy experiments (the batched backend) can drift if a runner's
BLAS-to-interpreter speed ratio differs from the baseline machine's -
if the gate flaps on such an experiment with no code change, refresh
the baseline (``--write-baseline``) from a run on the CI runner class
rather than loosening the threshold.

Stdlib-only on purpose (the CI image guarantees nothing beyond the
test dependencies).  Usage::

    pytest benchmarks/bench_engine_ablation.py benchmarks/bench_scaling.py \
        --benchmark-json=bench-raw.json -q
    python benchmarks/perf_report.py bench-raw.json --sha "$GITHUB_SHA" \
        --out "BENCH_${GITHUB_SHA}.json"              # artifact + gate
    python benchmarks/perf_report.py bench-raw.json --sha seed \
        --write-baseline benchmarks/baseline.json     # refresh baseline

Exit codes: 0 gate passed, 1 regression found, 2 usage/validation
error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
DEFAULT_SCHEMA = HERE / "bench_schema.json"
DEFAULT_BASELINE = HERE / "baseline.json"
CALIBRATION_NAME = "test_calibration_spin"
DEFAULT_THRESHOLD = 0.25
SCHEMA_VERSION = 1


class ReportError(Exception):
    """Anything that should abort with a usage/validation error."""


# ---------------------------------------------------------------------------
# Building the report
# ---------------------------------------------------------------------------

def experiment_id(entry: dict) -> str:
    """The stable experiment id of one pytest-benchmark entry.

    ``fullname`` is the pytest nodeid
    (``file.py::Class::test[param]``) - stable across runs and
    runners, human-readable in diffs of the trajectory artifacts.
    """
    return str(entry["fullname"])


def build_report(raw: dict, sha: str) -> dict:
    """Raw ``--benchmark-json`` dump -> committed-schema report."""
    benchmarks = raw.get("benchmarks")
    if not benchmarks:
        raise ReportError("raw benchmark dump has no 'benchmarks' "
                          "entries (did pytest-benchmark run with "
                          "--benchmark-disable?)")
    medians: dict[str, float] = {}
    calibration_ids = []
    for entry in benchmarks:
        identifier = experiment_id(entry)
        median = float(entry["stats"]["median"])
        if median <= 0.0:
            raise ReportError(f"non-positive median for {identifier}")
        medians[identifier] = median
        # Exact match on the final nodeid segment: a future
        # test_calibration_spin_large (or parametrized variant) must
        # not silently become the divisor for every normalization.
        if identifier.split("::")[-1] == CALIBRATION_NAME:
            calibration_ids.append(identifier)
    if not calibration_ids:
        raise ReportError(
            f"calibration benchmark {CALIBRATION_NAME!r} missing from "
            "the dump; the regression gate cannot normalize for "
            "runner speed without it")
    if len(calibration_ids) > 1:
        raise ReportError(
            f"ambiguous calibration benchmark: {calibration_ids}")
    calibration = medians[calibration_ids[0]]
    return {
        "schema_version": SCHEMA_VERSION,
        "sha": str(sha),
        "generated_by": "benchmarks/perf_report.py",
        "calibration_median_seconds": calibration,
        "experiments": {
            identifier: {
                "median_seconds": median,
                "normalized": median / calibration,
            }
            for identifier, median in sorted(medians.items())
        },
    }


# ---------------------------------------------------------------------------
# Minimal JSON-Schema subset validation (stdlib-only)
# ---------------------------------------------------------------------------

def validate(instance, schema: dict, path: str = "$") -> list[str]:
    """Validate against the subset of JSON Schema the project uses.

    Supports ``type`` (object/number/integer/string/boolean),
    ``required``, ``properties`` and ``additionalProperties`` (bool or
    schema).  Returns a list of violation messages (empty = valid).
    """
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None and not _type_ok(instance, expected):
        return [f"{path}: expected {expected}, "
                f"got {type(instance).__name__}"]
    if expected == "object":
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in properties:
                errors.extend(validate(value, properties[key],
                                       f"{path}.{key}"))
            elif additional is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(additional, dict):
                errors.extend(validate(value, additional,
                                       f"{path}.{key}"))
    return errors


def _type_ok(instance, expected: str) -> bool:
    if expected == "object":
        return isinstance(instance, dict)
    if expected == "string":
        return isinstance(instance, str)
    if expected == "integer":
        return isinstance(instance, int) and \
            not isinstance(instance, bool)
    if expected == "number":
        return isinstance(instance, (int, float)) and \
            not isinstance(instance, bool)
    if expected == "boolean":
        return isinstance(instance, bool)
    raise ReportError(f"schema uses unsupported type {expected!r}")


# ---------------------------------------------------------------------------
# Regression gate
# ---------------------------------------------------------------------------

def compare(report: dict, baseline: dict,
            threshold: float = DEFAULT_THRESHOLD) -> dict:
    """Gate verdict: normalized-median regressions beyond threshold.

    Experiments absent from the baseline are reported (new benchmarks
    start their trajectory) but never fail the gate; experiments the
    run no longer produces are reported as retired.
    """
    base = baseline.get("experiments", {})
    regressions, improvements, new, unchanged = [], [], [], []
    for identifier, entry in report["experiments"].items():
        reference = base.get(identifier)
        if reference is None:
            new.append(identifier)
            continue
        ratio = entry["normalized"] / reference
        record = {"id": identifier, "baseline": reference,
                  "normalized": entry["normalized"],
                  "ratio": ratio}
        if ratio > 1.0 + threshold:
            regressions.append(record)
        elif ratio < 1.0 - threshold:
            improvements.append(record)
        else:
            unchanged.append(record)
    retired = sorted(set(base) - set(report["experiments"]))
    return {"regressions": regressions, "improvements": improvements,
            "unchanged": unchanged, "new": new, "retired": retired,
            "threshold": threshold}


def format_delta_table(verdict: dict) -> str:
    """The gate verdict as an aligned per-benchmark delta table.

    One row per compared experiment (worst ratio first), then the new
    and retired ids.  This is what the CI job prints - a failing gate
    must be diagnosable from the log alone, not from the raw exit
    code.
    """
    rows: list[tuple[str, str, str, str, str]] = []
    compared = (
        [("REGRESSED", record) for record in verdict["regressions"]]
        + [("IMPROVED", record) for record in verdict["improvements"]]
        + [("ok", record) for record in verdict["unchanged"]])
    compared.sort(key=lambda pair: -pair[1]["ratio"])
    for status, record in compared:
        rows.append((status, record["id"],
                     f"{record['baseline']:.4g}",
                     f"{record['normalized']:.4g}",
                     f"{record['ratio']:.2f}x"))
    for identifier in verdict["new"]:
        rows.append(("NEW", identifier, "-", "-", "-"))
    for identifier in verdict["retired"]:
        rows.append(("RETIRED", identifier, "-", "-", "-"))
    header = ("STATUS", "EXPERIMENT", "BASELINE", "CURRENT", "RATIO")
    widths = [max(len(header[column]),
                  *(len(row[column]) for row in rows)) if rows
              else len(header[column]) for column in range(5)]

    def line(cells: tuple) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    limit = 1.0 + verdict["threshold"]
    out = [line(header), line(tuple("-" * width for width in widths))]
    out.extend(line(row) for row in rows)
    out.append(f"(normalized medians; gate limit {limit:.2f}x of "
               "baseline)")
    return "\n".join(out)


def baseline_from_report(report: dict) -> dict:
    """The committed-baseline form: normalized medians only."""
    return {
        "schema_version": SCHEMA_VERSION,
        "source_sha": report["sha"],
        "experiments": {
            identifier: entry["normalized"]
            for identifier, entry in report["experiments"].items()
        },
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _load_json(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ReportError(f"cannot read {path}: {error}") from None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="pytest-benchmark post-processing + regression "
                    "gate")
    parser.add_argument("raw", help="pytest --benchmark-json output")
    parser.add_argument("--sha", required=True,
                        help="commit sha stamped into the report")
    parser.add_argument("--out", default=None,
                        help="write the BENCH_<sha>.json report here")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="committed baseline to gate against "
                             "(skipped if the file does not exist)")
    parser.add_argument("--schema", default=str(DEFAULT_SCHEMA),
                        help="committed report schema")
    parser.add_argument("--fail-threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="fail on normalized-median regressions "
                             "beyond this fraction (default 0.25)")
    parser.add_argument("--write-baseline", default=None,
                        metavar="PATH",
                        help="refresh the committed baseline from "
                             "this run instead of gating")
    args = parser.parse_args(argv)

    try:
        report = build_report(_load_json(Path(args.raw)), args.sha)
        schema = _load_json(Path(args.schema))
        violations = validate(report, schema)
        if violations:
            raise ReportError("report fails its own schema: "
                              + "; ".join(violations))
        if args.out:
            Path(args.out).write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n")
            print(f"wrote {args.out} "
                  f"({len(report['experiments'])} experiments)")
        if args.write_baseline:
            Path(args.write_baseline).write_text(json.dumps(
                baseline_from_report(report), indent=2,
                sort_keys=True) + "\n")
            print(f"wrote baseline {args.write_baseline}")
            return 0
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path}; gate skipped")
            return 0
        verdict = compare(report, _load_json(baseline_path),
                          args.fail_threshold)
    except ReportError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(format_delta_table(verdict))
    if verdict["regressions"]:
        print(f"gate FAILED: {len(verdict['regressions'])} "
              "regression(s)")
        return 1
    print(f"gate passed: {len(verdict['unchanged'])} within "
          f"threshold, {len(verdict['improvements'])} improved, "
          f"{len(verdict['new'])} new")
    return 0


if __name__ == "__main__":
    sys.exit(main())
