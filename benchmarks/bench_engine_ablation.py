"""E13: engine ablations + facade amortization + batched sampling.

Four ablations:

* applicability maintenance - incremental (delta) engine vs naive
  recomputation per chase step;
* Datalog fixpoint - semi-naive vs naive evaluation;
* **facade vs legacy batching** - ``Session.sample(n)`` (translate
  once, bootstrap the applicability engine once, fork per run) against
  ``n`` independent ``run_chase`` calls (translate + bootstrap per
  run).  The facade path must be no slower at n=1000 chases; in
  practice it is strictly faster because per-run setup is amortized;
* **batched vs scalar backend** - the vectorized batch chase
  (:mod:`repro.engine.batched`) against the per-run scalar loop.  Four
  acceptance bounds: batched ``sample(n=1000)`` on Example 3.5 (single
  sampling layer) must be at least 3x faster; on Example 3.4 (the
  cascading earthquake model, where the multi-round signature-group
  loop keeps trigger-hit worlds vectorized instead of splitting ~22%
  of the batch to the scalar engine) at least **6x** - both measured
  end-to-end including a marginal read, so the columnar fast path is
  inside the timed region; on the staged-slots workload (8 small
  signature groups over a padded instance - the cross-group
  draw-pooling + overlay-fork case) at least **2x**; and on Example
  3.5 under the **Bárány translation** (previously a whole-batch
  scalar decline; the shared-``Sample#`` companion fan-out is now
  vectorized) strictly faster than scalar (asserted with 2x
  headroom).  The law checks ride along: the batched ensemble must
  agree with the exact SPDB (binomial-sigma marginals + chi-squared
  world distribution) and with the scalar backend (KS over the
  sampled values), on the new workloads too.

``test_calibration_spin`` is the pure-python calibration workload the
benchmark-regression CI gate normalizes against
(``benchmarks/perf_report.py``): absolute medians differ wildly across
runners, medians *relative to the spin loop* do not.

All equivalent pairs are asserted equivalent; the benchmarks quantify
the gaps.
"""

import time
import warnings

import pytest

from repro.api import compile as compile_program
from repro.core.chase import _run_chase_impl, run_chase
from repro.engine.seminaive import naive_fixpoint, seminaive_fixpoint
from repro.measures.empirical import ks_critical_value, ks_two_sample
from repro.workloads.generators import (chain_instance, chain_program,
                                        earthquake_city_instance,
                                        random_graph_instance,
                                        staged_slots_instance,
                                        staged_slots_program,
                                        transitive_closure_program)
from repro.workloads.paper import (example_3_4_instance,
                                   example_3_4_program,
                                   example_3_5_instance,
                                   example_3_5_program)


def _timed_sample_seconds(session, n_runs, backend, probe=None,
                          require_err_free=False):
    """One timed ``sample(n)`` on a backend.

    The probe read (when given) sits *inside* the timed region, so the
    batched side's columnar fast path is part of the comparison and
    the scalar side pays its world materialization.
    """
    from repro.pdb.facts import Fact
    assert probe is None or isinstance(probe, Fact)
    start = time.perf_counter()
    result = session.sample(n_runs, backend=backend)
    marginal = result.marginal(probe) if probe is not None else None
    elapsed = time.perf_counter() - start
    assert result.backend == backend
    assert result.n_runs == n_runs
    if probe is not None:
        # Strictly inside (0, 1): every probe below has a genuinely
        # uncertain truth value, so a degenerate 0/1 read means the
        # column was dropped and the timing would measure a broken
        # path.
        assert 0.0 < marginal < 1.0
    if require_err_free:
        assert result.err_mass() == 0.0
    return elapsed


def assert_batched_speedup(session, n_runs, factor, probe=None,
                           require_err_free=False):
    """Warm both backends, then compare best-of-3 trials.

    The shared acceptance harness of every batched-vs-scalar bound in
    this file: the warm-up runs pay translation/fixpoint/engine
    bootstrap for both paths, and taking the best of 3 keeps noisy
    shared CI runners from tripping a genuine bound.
    """
    def seconds(backend):
        return _timed_sample_seconds(session, n_runs, backend, probe,
                                     require_err_free)

    seconds("batched")
    seconds("scalar")
    batched = min(seconds("batched") for _ in range(3))
    scalar = min(seconds("scalar") for _ in range(3))
    assert batched * factor <= scalar, \
        f"batched {batched:.3f}s vs scalar {scalar:.3f}s " \
        f"({scalar / batched:.1f}x, needed {factor:.0f}x)"


class TestCalibration:
    """The runner-speed yardstick for the CI regression gate."""

    def test_calibration_spin(self, benchmark):
        result = benchmark(lambda: sum(i * i for i in range(100_000)))
        assert result == 333328333350000


class TestE13Applicability:
    @pytest.mark.parametrize("engine", ["incremental", "naive"])
    def test_chase_engine_comparison(self, benchmark, engine):
        instance = earthquake_city_instance(12, 4, seed=0)
        session = compile_program(example_3_4_program()).on(
            instance, engine=engine)

        run = benchmark(lambda: session.run(rng=0))
        assert run.terminated

    def test_engines_identical_output(self, benchmark):
        instance = earthquake_city_instance(6, 3, seed=1)
        session = compile_program(example_3_4_program()).on(instance)

        def both():
            a = session.run(rng=5, engine="incremental")
            b = session.run(rng=5, engine="naive")
            return a, b

        a, b = benchmark(both)
        assert a.instance == b.instance


class TestE13FacadeAmortization:
    """Acceptance check: compile-once sampling dominates the legacy path.

    The legacy path re-translates the program and re-bootstraps the
    applicability engine on every call; the facade pays both costs
    once per (program, instance) and forks per run.
    """

    N_RUNS = 1000

    def _facade_seconds(self, program, instance) -> float:
        session = compile_program(program).on(instance, seed=0,
                                              streams="shared")
        start = time.perf_counter()
        result = session.sample(self.N_RUNS)
        elapsed = time.perf_counter() - start
        assert result.n_runs == self.N_RUNS
        assert result.err_mass() == 0.0
        return elapsed

    def _legacy_seconds(self, program, instance) -> float:
        import numpy as np
        rng = np.random.default_rng(0)
        start = time.perf_counter()
        outputs = [
            _run_chase_impl(program, instance, rng=rng)
            for _ in range(self.N_RUNS)]
        elapsed = time.perf_counter() - start
        assert all(run.terminated for run in outputs)
        return elapsed

    def test_facade_no_slower_than_legacy_at_n1000(self):
        program = example_3_4_program()
        instance = earthquake_city_instance(4, 2, seed=0)
        # Warm both code paths, then take the best of 3 trials each.
        self._facade_seconds(program, instance)
        self._legacy_seconds(program, instance)
        facade = min(self._facade_seconds(program, instance)
                     for _ in range(3))
        legacy = min(self._legacy_seconds(program, instance)
                     for _ in range(3))
        # Acceptance bound: no slower, with headroom for noisy shared
        # CI runners; the facade typically measures 1.2-2x faster, so
        # a genuine regression still trips this.
        assert facade <= legacy * 1.15, \
            f"facade {facade:.3f}s vs legacy {legacy:.3f}s"

    def test_facade_equals_legacy_output(self):
        program = example_3_4_program()
        instance = earthquake_city_instance(3, 2, seed=0)
        facade = compile_program(program).on(
            instance, seed=11, streams="shared").sample(50).pdb
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro
            legacy = repro.sample_spdb(program, instance, n=50, rng=11)
        assert [w.canonical_text() for w in facade.worlds] == \
            [w.canonical_text() for w in legacy.worlds]

    def test_benchmark_facade_batch(self, benchmark):
        program = example_3_4_program()
        instance = earthquake_city_instance(4, 2, seed=0)
        session = compile_program(program).on(instance, seed=0)
        result = benchmark(lambda: session.sample(200))
        assert result.n_runs == 200

    def test_benchmark_legacy_batch(self, benchmark):
        program = example_3_4_program()
        instance = earthquake_city_instance(4, 2, seed=0)

        def batch():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                return [run_chase(program, instance, rng=seed)
                        for seed in range(200)]

        runs = benchmark(batch)
        assert all(run.terminated for run in runs)


class TestE13BatchedBackend:
    """Acceptance check: the vectorized batch backend beats scalar.

    Example 3.5 is the paper's continuous flagship (one sampling layer
    over a deterministic base - the case batching is built for); the
    issue's acceptance bound is a 3x speedup at n=1000, far below the
    ~10x the backend actually measures, so genuine regressions trip
    the assert without CI noise doing so.
    """

    N_RUNS = 1000

    def _session(self):
        return compile_program(example_3_5_program()).on(
            example_3_5_instance(), seed=0)

    def test_batched_3x_faster_than_scalar_at_n1000(self):
        assert_batched_speedup(self._session(), self.N_RUNS, 3.0,
                               require_err_free=True)

    def test_batched_equals_scalar_law(self):
        # Same output law (KS over the sampled heights): the backends
        # draw differently, so the comparison is statistical.
        session = self._session()
        def heights(backend, seed):
            values = []
            pdb = session.sample(400, backend=backend, seed=seed).pdb
            for world in pdb.worlds:
                for fact in world.facts_of("PHeight"):
                    values.append(float(fact.args[1]))
            return values
        a, b = heights("batched", 0), heights("scalar", 1)
        statistic = ks_two_sample(a, b)
        assert statistic <= 1.3 * ks_critical_value(
            len(a), len(b), 1e-4), statistic

    def test_benchmark_batched_3_5(self, benchmark):
        session = self._session()
        result = benchmark(
            lambda: session.sample(self.N_RUNS, backend="batched"))
        assert result.diagnostics["n_split"] == 0

    def test_benchmark_scalar_3_5(self, benchmark):
        session = self._session()
        result = benchmark(
            lambda: session.sample(self.N_RUNS, backend="scalar"))
        assert result.n_runs == self.N_RUNS

    def test_benchmark_batched_3_4(self, benchmark):
        # Cascading discrete program: trigger-hit worlds regroup by
        # signature and stay vectorized (multi-round batch loop).
        session = compile_program(example_3_4_program()).on(
            earthquake_city_instance(4, 2, seed=0), seed=0)
        result = benchmark(
            lambda: session.sample(500, backend="batched"))
        assert result.diagnostics["n_batched"] > 0


class TestMultiRoundBatched:
    """Acceptance check: cascading programs batch end to end.

    The single-round backend sent every trigger-hit world of Example
    3.4 (~22% of the batch) through world-by-world scalar replay and
    capped out around 3x; the multi-round loop regroups those worlds
    by enabled-trigger signature and runs the Trig/Alarm stage
    vectorized per group, with columnar marginal reads skipping world
    materialization entirely.  The acceptance bound is >= 6x over
    scalar at n=1000 - measured including a marginal query - far below
    the ~20-30x the backend actually measures, so genuine regressions
    trip the assert without CI noise doing so.
    """

    N_RUNS = 1000

    def _session(self):
        return compile_program(example_3_4_program()).on(
            example_3_4_instance(), seed=0)

    def test_batched_6x_faster_than_scalar_on_3_4_at_n1000(self):
        from repro.pdb.facts import Fact
        assert_batched_speedup(self._session(), self.N_RUNS, 6.0,
                               probe=Fact("Alarm", ("house-1",)))

    def test_multi_round_law_matches_exact_and_scalar(self):
        from repro.testing.fuzz import random_value_positions
        from repro.testing.oracles import (ks_agreement,
                                           marginals_agree,
                                           sampled_values,
                                           worlds_agree_chi_squared)
        session = self._session()
        exact = session.exact().pdb
        batched = session.sample(2000, backend="batched", seed=0)
        assert batched.diagnostics["n_rounds"] == 2
        assert marginals_agree(exact, batched.pdb) is None
        assert worlds_agree_chi_squared(exact, batched.pdb) is None
        scalar = session.sample(2000, backend="scalar", seed=1)
        positions = random_value_positions(example_3_4_program())
        assert ks_agreement(
            sampled_values(batched.pdb, positions),
            sampled_values(scalar.pdb, positions)) is None

    def test_benchmark_multi_round_3_4_with_marginal(self, benchmark):
        from repro.pdb.facts import Fact
        session = self._session()

        def run():
            result = session.sample(self.N_RUNS, backend="batched")
            result.marginal(Fact("Alarm", ("house-1",)))
            return result

        result = benchmark(run)
        assert result.diagnostics["n_rounds"] == 2
        assert result.diagnostics["n_split"] < self.N_RUNS * 0.05


class TestPooledGroupBatched:
    """Acceptance check: many-small-signature-groups programs batch.

    The staged-slots workload produces 8 signature groups in round 2,
    each over a padded (inert-fact-heavy) closed instance.  Before
    this PR every group paid a full applicability re-index on fork and
    its own ``sample_batch`` call per (distribution, params); overlay
    forks cut the per-group setup to O(delta) and cross-group pooling
    serves all groups' same-key draws from one call.  The acceptance
    bound is >= 2x over scalar at n=1000 - well below what the backend
    measures, so CI noise does not trip it - plus law agreement
    against exact enumeration on a smaller configuration.
    """

    N_RUNS = 1000

    def _session(self):
        return compile_program(staged_slots_program()).on(
            staged_slots_instance(), seed=0)

    def test_batched_2x_faster_than_scalar_on_staged_slots(self):
        from repro.pdb.facts import Fact
        assert_batched_speedup(self._session(), self.N_RUNS, 2.0,
                               probe=Fact("Next", ("slot-0-0", 1)))

    def test_draws_actually_pool_across_groups(self):
        result = self._session().sample(self.N_RUNS,
                                        backend="batched")
        diag = result.diagnostics
        assert diag["n_rounds"] == 2
        assert diag["n_split"] == 0
        # One DiscreteUniform call + one pooled Flip call: without
        # pooling the 8 stage groups would issue 8 separate calls.
        assert diag["n_draw_calls"] == 2
        assert diag["n_pooled_draws"] > 0

    def test_staged_slots_law_matches_exact(self):
        from repro.testing.oracles import (marginals_agree,
                                           worlds_agree_chi_squared)
        session = compile_program(staged_slots_program(4)).on(
            staged_slots_instance(4, 3, padding=20), seed=5)
        exact = session.exact().pdb
        result = session.sample(2000, backend="batched")
        assert result.backend == "batched"
        assert result.diagnostics["n_pooled_draws"] > 0
        assert marginals_agree(exact, result.pdb) is None
        assert worlds_agree_chi_squared(exact, result.pdb) is None

    def test_benchmark_batched_staged_slots(self, benchmark):
        session = self._session()
        result = benchmark(
            lambda: session.sample(self.N_RUNS, backend="batched"))
        assert result.diagnostics["n_pooled_draws"] > 0


class TestBaranyBatched:
    """Acceptance check: Bárány-translation workloads now batch.

    Before this PR the batched backend declined the §6.2 translation
    outright (whole-batch scalar fallback); vectorizing the shared
    ``Sample#`` companion fan-out makes Example 3.5 under Bárány
    semantics a single-round batch (two draws per batch - one per
    (mu, sigma2) key - fanned out to every person).  The acceptance
    bound is a strict >1x speedup over scalar at n=1000 (asserted with
    2x headroom), plus KS law agreement between the backends.
    """

    N_RUNS = 1000

    def _session(self):
        return compile_program(example_3_5_program(),
                               semantics="barany").on(
            example_3_5_instance(), seed=0)

    def test_batched_beats_scalar_on_barany_3_5(self):
        # The issue's acceptance bound is >1x (the class previously
        # declined wholesale); assert with 2x headroom so a regression
        # back toward the scalar fallback trips it.
        assert_batched_speedup(self._session(), self.N_RUNS, 2.0,
                               require_err_free=True)

    def test_barany_batched_equals_scalar_law(self):
        session = self._session()

        def heights(backend, seed):
            pdb = session.sample(400, backend=backend, seed=seed).pdb
            return [float(fact.args[1]) for world in pdb.worlds
                    for fact in world.facts_of("PHeight")]

        batched = heights("batched", 0)
        scalar = heights("scalar", 1)
        statistic = ks_two_sample(batched, scalar)
        assert statistic <= 1.3 * ks_critical_value(
            len(batched), len(scalar), 1e-4), statistic

    def test_benchmark_batched_barany_3_5(self, benchmark):
        session = self._session()
        result = benchmark(
            lambda: session.sample(self.N_RUNS, backend="batched"))
        assert result.backend == "batched"
        assert result.diagnostics["n_split"] == 0


class TestE13DatalogFixpoint:
    @pytest.mark.parametrize("engine", ["seminaive", "naive"])
    def test_transitive_closure(self, benchmark, engine):
        program = transitive_closure_program()
        graph = random_graph_instance(30, 90, seed=2)
        fixpoint = seminaive_fixpoint if engine == "seminaive" \
            else naive_fixpoint

        result = benchmark(lambda: fixpoint(program, graph))
        assert result.facts_of("Path")

    @pytest.mark.parametrize("engine", ["seminaive", "naive"])
    def test_long_chain(self, benchmark, engine):
        program = chain_program(30)
        instance = chain_instance(40)
        fixpoint = seminaive_fixpoint if engine == "seminaive" \
            else naive_fixpoint

        result = benchmark(lambda: fixpoint(program, instance))
        assert len(result.facts_of("T30")) == 40

    def test_fixpoints_agree(self, benchmark):
        program = transitive_closure_program()
        graph = random_graph_instance(15, 40, seed=3)

        def both():
            return (seminaive_fixpoint(program, graph),
                    naive_fixpoint(program, graph))

        a, b = benchmark(both)
        assert a == b
