"""E13: engine ablations + facade amortization.

Three ablations:

* applicability maintenance - incremental (delta) engine vs naive
  recomputation per chase step;
* Datalog fixpoint - semi-naive vs naive evaluation;
* **facade vs legacy batching** - ``Session.sample(n)`` (translate
  once, bootstrap the applicability engine once, fork per run) against
  ``n`` independent ``run_chase`` calls (translate + bootstrap per
  run).  The facade path must be no slower at n=1000 chases; in
  practice it is strictly faster because per-run setup is amortized.

All equivalent pairs are asserted equivalent; the benchmarks quantify
the gaps.
"""

import time
import warnings

import pytest

from repro.api import compile as compile_program
from repro.core.chase import _run_chase_impl, run_chase
from repro.engine.seminaive import naive_fixpoint, seminaive_fixpoint
from repro.workloads.generators import (chain_instance, chain_program,
                                        earthquake_city_instance,
                                        random_graph_instance,
                                        transitive_closure_program)
from repro.workloads.paper import example_3_4_program


class TestE13Applicability:
    @pytest.mark.parametrize("engine", ["incremental", "naive"])
    def test_chase_engine_comparison(self, benchmark, engine):
        instance = earthquake_city_instance(12, 4, seed=0)
        session = compile_program(example_3_4_program()).on(
            instance, engine=engine)

        run = benchmark(lambda: session.run(rng=0))
        assert run.terminated

    def test_engines_identical_output(self, benchmark):
        instance = earthquake_city_instance(6, 3, seed=1)
        session = compile_program(example_3_4_program()).on(instance)

        def both():
            a = session.run(rng=5, engine="incremental")
            b = session.run(rng=5, engine="naive")
            return a, b

        a, b = benchmark(both)
        assert a.instance == b.instance


class TestE13FacadeAmortization:
    """Acceptance check: compile-once sampling dominates the legacy path.

    The legacy path re-translates the program and re-bootstraps the
    applicability engine on every call; the facade pays both costs
    once per (program, instance) and forks per run.
    """

    N_RUNS = 1000

    def _facade_seconds(self, program, instance) -> float:
        session = compile_program(program).on(instance, seed=0,
                                              streams="shared")
        start = time.perf_counter()
        result = session.sample(self.N_RUNS)
        elapsed = time.perf_counter() - start
        assert result.n_runs == self.N_RUNS
        assert result.err_mass() == 0.0
        return elapsed

    def _legacy_seconds(self, program, instance) -> float:
        import numpy as np
        rng = np.random.default_rng(0)
        start = time.perf_counter()
        outputs = [
            _run_chase_impl(program, instance, rng=rng)
            for _ in range(self.N_RUNS)]
        elapsed = time.perf_counter() - start
        assert all(run.terminated for run in outputs)
        return elapsed

    def test_facade_no_slower_than_legacy_at_n1000(self):
        program = example_3_4_program()
        instance = earthquake_city_instance(4, 2, seed=0)
        # Warm both code paths, then take the best of 3 trials each.
        self._facade_seconds(program, instance)
        self._legacy_seconds(program, instance)
        facade = min(self._facade_seconds(program, instance)
                     for _ in range(3))
        legacy = min(self._legacy_seconds(program, instance)
                     for _ in range(3))
        # Acceptance bound: no slower, with headroom for noisy shared
        # CI runners; the facade typically measures 1.2-2x faster, so
        # a genuine regression still trips this.
        assert facade <= legacy * 1.15, \
            f"facade {facade:.3f}s vs legacy {legacy:.3f}s"

    def test_facade_equals_legacy_output(self):
        program = example_3_4_program()
        instance = earthquake_city_instance(3, 2, seed=0)
        facade = compile_program(program).on(
            instance, seed=11, streams="shared").sample(50).pdb
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro
            legacy = repro.sample_spdb(program, instance, n=50, rng=11)
        assert [w.canonical_text() for w in facade.worlds] == \
            [w.canonical_text() for w in legacy.worlds]

    def test_benchmark_facade_batch(self, benchmark):
        program = example_3_4_program()
        instance = earthquake_city_instance(4, 2, seed=0)
        session = compile_program(program).on(instance, seed=0)
        result = benchmark(lambda: session.sample(200))
        assert result.n_runs == 200

    def test_benchmark_legacy_batch(self, benchmark):
        program = example_3_4_program()
        instance = earthquake_city_instance(4, 2, seed=0)

        def batch():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                return [run_chase(program, instance, rng=seed)
                        for seed in range(200)]

        runs = benchmark(batch)
        assert all(run.terminated for run in runs)


class TestE13DatalogFixpoint:
    @pytest.mark.parametrize("engine", ["seminaive", "naive"])
    def test_transitive_closure(self, benchmark, engine):
        program = transitive_closure_program()
        graph = random_graph_instance(30, 90, seed=2)
        fixpoint = seminaive_fixpoint if engine == "seminaive" \
            else naive_fixpoint

        result = benchmark(lambda: fixpoint(program, graph))
        assert result.facts_of("Path")

    @pytest.mark.parametrize("engine", ["seminaive", "naive"])
    def test_long_chain(self, benchmark, engine):
        program = chain_program(30)
        instance = chain_instance(40)
        fixpoint = seminaive_fixpoint if engine == "seminaive" \
            else naive_fixpoint

        result = benchmark(lambda: fixpoint(program, instance))
        assert len(result.facts_of("T30")) == 40

    def test_fixpoints_agree(self, benchmark):
        program = transitive_closure_program()
        graph = random_graph_instance(15, 40, seed=3)

        def both():
            return (seminaive_fixpoint(program, graph),
                    naive_fixpoint(program, graph))

        a, b = benchmark(both)
        assert a == b
