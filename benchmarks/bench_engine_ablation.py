"""E13: engine ablations.

Two ablations called out in DESIGN.md §4:

* applicability maintenance - incremental (delta) engine vs naive
  recomputation per chase step;
* Datalog fixpoint - semi-naive vs naive evaluation.

Both pairs are asserted equivalent; the benchmark quantifies the gap.
"""

import pytest

from repro.core.chase import run_chase
from repro.engine.seminaive import naive_fixpoint, seminaive_fixpoint
from repro.workloads.generators import (chain_instance, chain_program,
                                        earthquake_city_instance,
                                        random_graph_instance,
                                        transitive_closure_program)
from repro.workloads.paper import example_3_4_program


class TestE13Applicability:
    @pytest.mark.parametrize("engine", ["incremental", "naive"])
    def test_chase_engine_comparison(self, benchmark, engine):
        program = example_3_4_program()
        instance = earthquake_city_instance(12, 4, seed=0)

        def chase():
            return run_chase(program, instance, rng=0, engine=engine)

        run = benchmark(chase)
        assert run.terminated

    def test_engines_identical_output(self, benchmark):
        program = example_3_4_program()
        instance = earthquake_city_instance(6, 3, seed=1)

        def both():
            a = run_chase(program, instance, rng=5,
                          engine="incremental")
            b = run_chase(program, instance, rng=5, engine="naive")
            return a, b

        a, b = benchmark(both)
        assert a.instance == b.instance


class TestE13DatalogFixpoint:
    @pytest.mark.parametrize("engine", ["seminaive", "naive"])
    def test_transitive_closure(self, benchmark, engine):
        program = transitive_closure_program()
        graph = random_graph_instance(30, 90, seed=2)
        fixpoint = seminaive_fixpoint if engine == "seminaive" \
            else naive_fixpoint

        result = benchmark(lambda: fixpoint(program, graph))
        assert result.facts_of("Path")

    @pytest.mark.parametrize("engine", ["seminaive", "naive"])
    def test_long_chain(self, benchmark, engine):
        program = chain_program(30)
        instance = chain_instance(40)
        fixpoint = seminaive_fixpoint if engine == "seminaive" \
            else naive_fixpoint

        result = benchmark(lambda: fixpoint(program, instance))
        assert len(result.facts_of("T30")) == 40

    def test_fixpoints_agree(self, benchmark):
        program = transitive_closure_program()
        graph = random_graph_instance(15, 40, seed=3)

        def both():
            return (seminaive_fixpoint(program, graph),
                    naive_fixpoint(program, graph))

        a, b = benchmark(both)
        assert a == b
