"""E11: probabilistic input databases (Theorems 4.8/5.5, second parts)."""

import pytest

from benchmarks.conftest import facade_exact
from repro.api import compile as compile_program
from repro.measures.discrete import DiscreteMeasure
from repro.pdb.database import DiscretePDB
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads import paper


def uncertain_city_input():
    """An uncertain input: Napa's burglary rate is itself uncertain."""
    low = Instance.of(Fact("City", ("Napa", 0.01)),
                      Fact("House", ("h", "Napa")))
    high = Instance.of(Fact("City", ("Napa", 0.2)),
                       Fact("House", ("h", "Napa")))
    return DiscretePDB(DiscreteMeasure({low: 0.6, high: 0.4}))


class TestE11PdbInput:
    def test_output_is_input_mixture(self, benchmark,
                                     earthquake_program):
        input_pdb = uncertain_city_input()
        compiled = compile_program(earthquake_program)

        output = benchmark(
            lambda: compiled.apply_to_pdb(input_pdb).pdb)
        expected = (0.6 * paper.alarm_probability_closed_form(0.01)
                    + 0.4 * paper.alarm_probability_closed_form(0.2))
        assert output.marginal(Fact("Alarm", ("h",))) == \
            pytest.approx(expected)
        assert output.total_mass() == pytest.approx(1.0)

    def test_parallel_agrees_on_pdb_input(self, benchmark,
                                          earthquake_program):
        input_pdb = uncertain_city_input()
        compiled = compile_program(earthquake_program)
        reference = compiled.apply_to_pdb(input_pdb).pdb
        parallel = benchmark(lambda: compiled.apply_to_pdb(
            input_pdb, parallel=True).pdb)
        assert parallel.allclose(reference)

    def test_subprobabilistic_input_passthrough(self, benchmark):
        program = paper.example_1_1_g0()
        world = Instance.empty()
        input_pdb = DiscretePDB(DiscreteMeasure({world: 0.8}), err=0.2)
        compiled = compile_program(program)

        output = benchmark(
            lambda: compiled.apply_to_pdb(input_pdb).pdb)
        assert output.err_mass() == pytest.approx(0.2)
        assert output.total_mass() == pytest.approx(0.8)
        # Conditional world probabilities match the Dirac-input run.
        reference = facade_exact(program)
        for world_, probability in reference.worlds():
            assert output.prob_of_instance(world_) == \
                pytest.approx(0.8 * probability)

    def test_input_worlds_scaling(self, benchmark, earthquake_program):
        # Mixture over many input worlds (per-world exact inference).
        worlds = {}
        for index in range(8):
            rate = 0.01 + 0.02 * index
            worlds[Instance.of(Fact("City", ("c", round(rate, 3))),
                               Fact("House", ("h", "c")))] = 1 / 8
        input_pdb = DiscretePDB(DiscreteMeasure(worlds))
        compiled = compile_program(earthquake_program)
        output = benchmark(
            lambda: compiled.apply_to_pdb(input_pdb).pdb)
        assert output.total_mass() == pytest.approx(1.0)
