"""E3: Section 6.2 - H vs H' and the mutual semantics simulations."""

import pytest

from benchmarks.conftest import assert_close_map, facade_exact
from repro.api import compile as compile_program
from repro.core.barany import to_barany_simulation, to_grohe_simulation
from repro.workloads import paper


class TestE3HPrograms:
    def test_h_under_ours(self, benchmark):
        compiled = compile_program(paper.section_6_2_h())
        pdb = benchmark(lambda: compiled.on().exact().pdb)
        assert_close_map(dict(pdb.worlds()), paper.H_EXPECTED_GROHE)

    def test_h_under_barany(self, benchmark):
        compiled = compile_program(paper.section_6_2_h(),
                                   semantics="barany")
        pdb = benchmark(lambda: compiled.on().exact().pdb)
        assert_close_map(dict(pdb.worlds()), paper.H_EXPECTED_BARANY)

    def test_h_prime_simulates(self, benchmark):
        compiled = compile_program(paper.section_6_2_h_prime())
        pdb = benchmark(
            lambda: compiled.on().exact().pdb.project(["R", "S"]))
        assert_close_map(dict(pdb.worlds()),
                         paper.H_PRIME_EXPECTED_RESTRICTED)


class TestE3GeneralSimulations:
    @pytest.mark.parametrize("name,maker", [
        ("G0", paper.example_1_1_g0),
        ("G0'", paper.example_1_1_g0_prime),
        ("H", paper.section_6_2_h),
    ])
    def test_barany_in_grohe(self, benchmark, name, maker):
        program = maker()
        visible = program.relations()
        target = facade_exact(program, semantics="barany") \
            .project(visible)

        def simulate():
            return facade_exact(to_grohe_simulation(program)) \
                .project(visible)

        simulated = benchmark(simulate)
        assert simulated.allclose(target)

    @pytest.mark.parametrize("name,maker", [
        ("G0", paper.example_1_1_g0),
        ("H", paper.section_6_2_h),
    ])
    def test_grohe_in_barany(self, benchmark, name, maker):
        program = maker()
        visible = program.relations()
        target = facade_exact(program).project(visible)

        def simulate():
            rewritten, _registry = to_barany_simulation(program)
            return facade_exact(rewritten, semantics="barany") \
                .project(visible)

        simulated = benchmark(simulate)
        assert simulated.allclose(target)
