"""E6 + E12: Theorem 6.1 (chase independence) and Lemma 3.10 (FDs)."""

from benchmarks.conftest import facade_exact
import pytest

from repro.api import compile as compile_program
from repro.core.exact import exact_parallel_spdb, exact_sequential_spdb
from repro.core.fd import check_all_fds
from repro.core.policies import standard_policies
from repro.measures.empirical import ks_critical_value, ks_two_sample
from repro.workloads import paper
from repro.workloads.generators import (base_instance,
                                        random_discrete_program)


class TestE6ExactIndependence:
    def test_policy_battery_earthquake(self, benchmark,
                                       earthquake_program,
                                       earthquake_instance):
        session = compile_program(earthquake_program).on(
            earthquake_instance)
        reference = session.exact().pdb

        def battery():
            return [session.exact(policy=policy).pdb
                    for policy in standard_policies()]

        results = benchmark(battery)
        for pdb in results:
            assert pdb.allclose(reference)

    def test_parallel_vs_sequential_earthquake(self, benchmark,
                                               earthquake_program,
                                               earthquake_instance):
        session = compile_program(earthquake_program).on(
            earthquake_instance)
        reference = session.exact().pdb
        parallel = benchmark(
            lambda: session.exact(parallel=True).pdb)
        assert parallel.allclose(reference)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_programs(self, benchmark, seed):
        program = random_discrete_program(3, 3, seed=seed)
        instance = base_instance(2)
        reference = exact_sequential_spdb(program, instance)

        def battery():
            results = [exact_sequential_spdb(program, instance,
                                             policy=policy)
                       for policy in standard_policies()[:4]]
            results.append(exact_parallel_spdb(program, instance))
            return results

        for pdb in benchmark(battery):
            assert pdb.allclose(reference)


class TestE6ContinuousIndependence:
    def test_heights_ks_across_policies(self, benchmark,
                                        heights_program):
        instance = paper.example_3_5_instance(
            moments={"NL": (180.0, 30.0)}, persons_per_country=1)
        compiled = compile_program(heights_program)
        policies = standard_policies()[:2]

        def collect():
            samples = []
            for index, policy in enumerate(policies):
                pdb = compiled.on(instance, seed=50 + index,
                                  policy=policy).sample(600).pdb
                samples.append(pdb.values_of(
                    lambda D: [f.args[1]
                               for f in D.facts_of("PHeight")]))
            return samples

        first, second = benchmark(collect)
        assert ks_two_sample(first, second) < \
            ks_critical_value(len(first), len(second), alpha=0.001)


class TestE12FdInvariant:
    def test_fds_hold_over_many_chases(self, benchmark,
                                       earthquake_program,
                                       earthquake_instance):
        compiled = compile_program(earthquake_program)
        translated = compiled.translated
        session = compiled.on(earthquake_instance, keep_aux=True)

        def chase_batch():
            outputs = []
            for seed in range(20):
                run = session.run(rng=seed)
                assert run.terminated
                outputs.append(run.instance)
            return outputs

        for instance in benchmark(chase_batch):
            assert check_all_fds(translated, instance)

    def test_facade_exact_matches_lowlevel(self, earthquake_program,
                                           earthquake_instance):
        assert facade_exact(earthquake_program,
                            earthquake_instance).allclose(
            exact_sequential_spdb(earthquake_program.translate(),
                                  earthquake_instance))