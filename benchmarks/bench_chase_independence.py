"""E6 + E12: Theorem 6.1 (chase independence) and Lemma 3.10 (FDs)."""

import pytest

from repro.core.exact import exact_parallel_spdb, exact_sequential_spdb
from repro.core.fd import check_all_fds
from repro.core.chase import run_chase
from repro.core.policies import standard_policies
from repro.core.semantics import sample_spdb
from repro.core.translate import translate
from repro.measures.empirical import ks_critical_value, ks_two_sample
from repro.workloads import paper
from repro.workloads.generators import (base_instance,
                                        random_discrete_program)


class TestE6ExactIndependence:
    def test_policy_battery_earthquake(self, benchmark,
                                       earthquake_program,
                                       earthquake_instance):
        reference = exact_sequential_spdb(earthquake_program,
                                          earthquake_instance)

        def battery():
            return [exact_sequential_spdb(earthquake_program,
                                          earthquake_instance,
                                          policy=policy)
                    for policy in standard_policies()]

        results = benchmark(battery)
        for pdb in results:
            assert pdb.allclose(reference)

    def test_parallel_vs_sequential_earthquake(self, benchmark,
                                               earthquake_program,
                                               earthquake_instance):
        reference = exact_sequential_spdb(earthquake_program,
                                          earthquake_instance)
        parallel = benchmark(lambda: exact_parallel_spdb(
            earthquake_program, earthquake_instance))
        assert parallel.allclose(reference)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_programs(self, benchmark, seed):
        program = random_discrete_program(3, 3, seed=seed)
        instance = base_instance(2)
        reference = exact_sequential_spdb(program, instance)

        def battery():
            results = [exact_sequential_spdb(program, instance,
                                             policy=policy)
                       for policy in standard_policies()[:4]]
            results.append(exact_parallel_spdb(program, instance))
            return results

        for pdb in benchmark(battery):
            assert pdb.allclose(reference)


class TestE6ContinuousIndependence:
    def test_heights_ks_across_policies(self, benchmark,
                                        heights_program):
        instance = paper.example_3_5_instance(
            moments={"NL": (180.0, 30.0)}, persons_per_country=1)
        policies = standard_policies()[:2]

        def collect():
            samples = []
            for index, policy in enumerate(policies):
                pdb = sample_spdb(heights_program, instance, n=600,
                                  rng=50 + index, policy=policy)
                samples.append(pdb.values_of(
                    lambda D: [f.args[1]
                               for f in D.facts_of("PHeight")]))
            return samples

        first, second = benchmark(collect)
        assert ks_two_sample(first, second) < \
            ks_critical_value(len(first), len(second), alpha=0.001)


class TestE12FdInvariant:
    def test_fds_hold_over_many_chases(self, benchmark,
                                       earthquake_program,
                                       earthquake_instance):
        translated = translate(earthquake_program)

        def chase_batch():
            outputs = []
            for seed in range(20):
                run = run_chase(translated, earthquake_instance,
                                rng=seed)
                assert run.terminated
                outputs.append(run.instance)
            return outputs

        for instance in benchmark(chase_batch):
            assert check_all_fds(translated, instance)
