"""Shared fixtures/helpers for the benchmark harness.

Every benchmark both *asserts* its experiment's reproduced values
(so ``pytest benchmarks/`` doubles as a reproduction check) and *times*
the pipeline via pytest-benchmark.  EXPERIMENTS.md indexes the files by
experiment id (E1-E14 of DESIGN.md §9).
"""

from __future__ import annotations

import pytest

from repro.api import compile as compile_program
from repro.workloads import paper


def facade_exact(program, instance=None, semantics="grohe",
                 **overrides):
    """Exact SPDB through the compile-once facade (benchmark shorthand)."""
    return compile_program(program, semantics=semantics) \
        .on(instance, **overrides).exact().pdb


def assert_close_map(actual: dict, expected: dict,
                     tolerance: float = 1e-9) -> None:
    keys = set(actual) | set(expected)
    for key in keys:
        a = actual.get(key, 0.0)
        e = expected.get(key, 0.0)
        assert abs(a - e) <= tolerance, f"{key!r}: {a} vs {e}"


@pytest.fixture
def earthquake_program():
    return paper.example_3_4_program()


@pytest.fixture
def earthquake_instance():
    return paper.example_3_4_instance()


@pytest.fixture
def heights_program():
    return paper.example_3_5_program()
