"""E4: Example 3.4 (earthquake/burglary/alarm) - exact, MC, scaling."""

import pytest

from repro.core.chase import run_chase
from repro.core.semantics import exact_spdb, sample_spdb
from repro.pdb.facts import Fact
from repro.workloads import paper
from repro.workloads.generators import earthquake_city_instance


class TestE4Exact:
    def test_exact_inference_two_cities(self, benchmark,
                                        earthquake_program,
                                        earthquake_instance):
        pdb = benchmark(lambda: exact_spdb(earthquake_program,
                                           earthquake_instance))
        assert pdb.marginal(Fact("Alarm", ("house-1",))) == \
            pytest.approx(paper.alarm_probability_closed_form(0.03))
        assert pdb.marginal(Fact("Alarm", ("biz-1",))) == \
            pytest.approx(paper.alarm_probability_closed_form(0.01))
        assert pdb.total_mass() == pytest.approx(1.0)

    def test_exact_inference_parallel_chase(self, benchmark,
                                            earthquake_program,
                                            earthquake_instance):
        reference = exact_spdb(earthquake_program, earthquake_instance)
        pdb = benchmark(lambda: exact_spdb(
            earthquake_program, earthquake_instance, parallel=True))
        assert pdb.allclose(reference)


class TestE4MonteCarlo:
    def test_sampling_agreement(self, benchmark, earthquake_program,
                                earthquake_instance):
        exact = exact_spdb(earthquake_program, earthquake_instance)

        def sample():
            return sample_spdb(earthquake_program, earthquake_instance,
                               n=2000, rng=0)

        sampled = benchmark(sample)
        f = Fact("Alarm", ("house-1",))
        assert abs(sampled.marginal(f) - exact.marginal(f)) < 0.03


class TestE4Scaling:
    @pytest.mark.parametrize("n_cities", [5, 20, 50])
    def test_chase_scaling(self, benchmark, earthquake_program,
                           n_cities):
        instance = earthquake_city_instance(n_cities, 4, seed=1)

        def chase():
            return run_chase(earthquake_program, instance, rng=0)

        run = benchmark(chase)
        assert run.terminated
        # Every unit gets a burglary sample: facts grow with the grid.
        assert len(run.instance.facts_of("Burglary")) == n_cities * 4
