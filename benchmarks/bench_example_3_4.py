"""E4: Example 3.4 (earthquake/burglary/alarm) - exact, MC, scaling."""

import pytest

from repro.api import compile as compile_program
from repro.pdb.facts import Fact
from repro.workloads import paper
from repro.workloads.generators import earthquake_city_instance


class TestE4Exact:
    def test_exact_inference_two_cities(self, benchmark,
                                        earthquake_program,
                                        earthquake_instance):
        compiled = compile_program(earthquake_program)
        pdb = benchmark(
            lambda: compiled.on(earthquake_instance).exact().pdb)
        assert pdb.marginal(Fact("Alarm", ("house-1",))) == \
            pytest.approx(paper.alarm_probability_closed_form(0.03))
        assert pdb.marginal(Fact("Alarm", ("biz-1",))) == \
            pytest.approx(paper.alarm_probability_closed_form(0.01))
        assert pdb.total_mass() == pytest.approx(1.0)

    def test_exact_inference_parallel_chase(self, benchmark,
                                            earthquake_program,
                                            earthquake_instance):
        compiled = compile_program(earthquake_program)
        reference = compiled.on(earthquake_instance).exact().pdb
        pdb = benchmark(lambda: compiled.on(
            earthquake_instance, parallel=True).exact().pdb)
        assert pdb.allclose(reference)


class TestE4MonteCarlo:
    def test_sampling_agreement(self, benchmark, earthquake_program,
                                earthquake_instance):
        compiled = compile_program(earthquake_program)
        session = compiled.on(earthquake_instance, seed=0)
        exact = session.exact().pdb

        sampled = benchmark(lambda: session.sample(2000).pdb)
        f = Fact("Alarm", ("house-1",))
        assert abs(sampled.marginal(f) - exact.marginal(f)) < 0.03


class TestE4Scaling:
    @pytest.mark.parametrize("n_cities", [5, 20, 50])
    def test_chase_scaling(self, benchmark, earthquake_program,
                           n_cities):
        instance = earthquake_city_instance(n_cities, 4, seed=1)
        session = compile_program(earthquake_program).on(instance)

        run = benchmark(lambda: session.run(rng=0))
        assert run.terminated
        # Every unit gets a burglary sample: facts grow with the grid.
        assert len(run.instance.facts_of("Burglary")) == n_cities * 4
