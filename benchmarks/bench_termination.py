"""E7 + E8: Theorem 6.3 (weak acyclicity) and Section 6.3 cycles."""

import pytest

from repro.api import compile as compile_program
from repro.core.termination import (analyze_termination,
                                    estimate_termination_probability,
                                    weakly_acyclic)
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads import paper
from repro.workloads.generators import random_discrete_program


class TestE7StaticAnalysis:
    def test_paper_programs_classified(self, benchmark):
        programs = [paper.example_1_1_g0(), paper.example_3_4_program(),
                    paper.example_3_5_program(), paper.section_6_2_h(),
                    paper.section_6_2_h_prime()]

        def analyze_all():
            return [compile_program(p).analyze() for p in programs]

        for report in benchmark(analyze_all):
            assert report.weakly_acyclic

    def test_cycles_detected_and_classified(self, benchmark):
        def analyze():
            return (analyze_termination(
                        paper.continuous_feedback_program()),
                    analyze_termination(paper.discrete_cycle_program()))

        continuous, discrete = benchmark(analyze)
        assert not continuous.weakly_acyclic
        assert continuous.continuous_cycle
        assert not discrete.weakly_acyclic
        assert not discrete.continuous_cycle

    @pytest.mark.parametrize("n_rules", [5, 20, 60])
    def test_analysis_scaling(self, benchmark, n_rules):
        program = random_discrete_program(n_rules, n_rules,
                                          seed=n_rules)
        assert benchmark(lambda: weakly_acyclic(program))


class TestE7TerminationGuarantee:
    def test_weakly_acyclic_chases_terminate(self, benchmark,
                                             earthquake_program,
                                             earthquake_instance):
        compiled = compile_program(earthquake_program)
        assert compiled.analyze().weakly_acyclic
        session = compiled.on(earthquake_instance, max_steps=5000)

        def chase_batch():
            return [session.run(rng=seed).terminated
                    for seed in range(10)]

        assert all(benchmark(chase_batch))


class TestE8CycleBehaviour:
    def test_continuous_cycle_never_terminates(self, benchmark):
        program = paper.continuous_feedback_program()
        seed_db = Instance.of(Fact("Seed", (0,)))

        def estimate():
            return estimate_termination_probability(
                program, seed_db, n_runs=20, max_steps=300, rng=0)

        result = benchmark(estimate)
        assert result.probability == 0.0

    @pytest.mark.parametrize("budget,minimum", [(10, 0.6), (2000, 0.97)])
    def test_discrete_cycle_ast_convergence(self, benchmark, budget,
                                            minimum):
        program = paper.discrete_cycle_program(1.0)

        def estimate():
            return estimate_termination_probability(
                program, paper.trigger_instance(), n_runs=150,
                max_steps=budget, rng=1)

        result = benchmark(estimate)
        assert result.probability >= minimum

    def test_flip_walk_terminates_geometric_steps(self, benchmark):
        program = paper.discrete_feedback_program(0.5)
        instance = paper.seed_instance(chain_length=40)

        def estimate():
            return estimate_termination_probability(
                program, instance, n_runs=150, max_steps=1000, rng=2)

        result = benchmark(estimate)
        assert result.probability == 1.0
        # Each Reach sample adds ~2 chase steps (sample + companion),
        # plus the walk advances geometrically: E[samples] ≈ 2.
        expected_samples = paper.random_walk_expected_steps(0.5, 40)
        assert result.mean_steps_when_terminated == \
            pytest.approx(2 * expected_samples, rel=0.2)
