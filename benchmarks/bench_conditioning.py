"""E15 (extension): conditioning — exact, rejection, likelihood weighting.

The paper defers PPDL's constraint component to future work (§7); this
harness benchmarks the reproduction's extension implementing it via the
fluent facade (``session.observe(...).posterior(method=...)``):

* exact conditioning vs the prior (discrete programs);
* rejection sampling cost as a function of constraint selectivity;
* likelihood weighting vs rejection on the same evidence, including
  the continuous Normal-Normal posterior rejection cannot reach.
"""

import pytest

from repro.api import compile as compile_program
from repro.core.observe import observe
from repro.pdb.events import ContainsFactEvent
from repro.pdb.facts import Fact


class TestExtensionExactConditioning:
    def test_alarm_posterior(self, benchmark, earthquake_program,
                             earthquake_instance):
        alarm = ContainsFactEvent(Fact("Alarm", ("house-1",)))
        compiled = compile_program(earthquake_program)
        session = compiled.on(earthquake_instance)

        posterior = benchmark(
            lambda: session.observe(alarm)
            .posterior(method="exact").pdb)
        prior = session.exact().pdb
        burglary = Fact("Burglary", ("house-1", "Napa", 1))
        # Observing the alarm strongly raises the burglary posterior.
        assert posterior.marginal(burglary) > \
            3 * prior.marginal(burglary)
        assert posterior.total_mass() == pytest.approx(1.0)


class TestExtensionRejection:
    @pytest.mark.parametrize("bias,expected_rate",
                             [(0.5, 0.5), (0.1, 0.1), (0.02, 0.02)])
    def test_acceptance_tracks_selectivity(self, benchmark, bias,
                                           expected_rate):
        compiled = compile_program(f"A(Flip<{bias!r}>) :- true.")
        constraint = ContainsFactEvent(Fact("A", (1,)))
        session = compiled.on(seed=0).observe(constraint)

        result = benchmark(
            lambda: session.posterior(method="rejection", n=2000))
        assert abs(result.diagnostics["acceptance_rate"]
                   - expected_rate) < \
            5 * (expected_rate * (1 - expected_rate) / 2000) ** 0.5 \
            + 0.01


class TestExtensionLikelihoodWeighting:
    def test_discrete_agreement_with_exact(self, benchmark):
        compiled = compile_program("""
            A(Flip<0.3>) :- true.
            B(Flip<0.5>) :- A(1).
        """)
        exact = compiled.on().observe(
            ContainsFactEvent(Fact("A", (1,)))) \
            .posterior(method="exact").pdb
        session = compiled.on(seed=0).observe(observe("A", 1))

        result = benchmark(
            lambda: session.posterior(method="likelihood", n=2000))
        estimate = result.prob(lambda D: Fact("B", (1,)) in D)
        assert abs(estimate - exact.marginal(Fact("B", (1,)))) < 0.05

    def test_normal_normal_posterior(self, benchmark):
        compiled = compile_program("""
            Mu(Normal<0, 1>) :- true.
            X(Normal<m, 1>) :- Mu(m).
        """)
        session = compiled.on(seed=1).observe(observe("X", 2.0))

        result = benchmark(
            lambda: session.posterior(method="likelihood", n=4000))
        mean = result.pdb.weighted_mean(
            lambda D: [f.args[0] for f in D.facts_of("Mu")])
        assert abs(mean - 1.0) < 0.08  # analytic posterior N(1, 1/2)
        assert result.diagnostics["effective_sample_size"] > 400

    def test_weighting_vs_rejection_same_posterior(self, benchmark):
        compiled = compile_program("""
            A(Flip<0.2>) :- true.
            B(Flip<0.7>) :- A(1).
        """)
        constraint = ContainsFactEvent(Fact("A", (1,)))

        def both():
            weighted = compiled.on(seed=2).observe(
                observe("A", 1)).posterior(method="likelihood",
                                           n=1500)
            rejected = compiled.on(seed=3).observe(
                constraint).posterior(method="rejection", n=1500)
            return weighted, rejected

        weighted, rejected = benchmark(both)
        b1 = Fact("B", (1,))
        a = weighted.prob(lambda D: b1 in D)
        b = rejected.prob(lambda D: b1 in D)
        assert abs(a - b) < 0.07
        # Weighting uses every run; rejection discards ~80%.
        assert weighted.pdb.n_worlds > \
            rejected.diagnostics["n_accepted"] * 3
