"""E15 (extension): conditioning — exact, rejection, likelihood weighting.

The paper defers PPDL's constraint component to future work (§7); this
harness benchmarks the reproduction's extension implementing it:

* exact conditioning vs the prior (discrete programs);
* rejection sampling cost as a function of constraint selectivity;
* likelihood weighting vs rejection on the same evidence, including
  the continuous Normal-Normal posterior rejection cannot reach.
"""

import pytest

from repro.core.constraints import (condition_by_rejection,
                                    condition_exact)
from repro.core.observe import likelihood_weighting, observe
from repro.core.program import Program
from repro.core.semantics import exact_spdb
from repro.pdb.events import ContainsFactEvent
from repro.pdb.facts import Fact
from repro.workloads import paper


class TestExtensionExactConditioning:
    def test_alarm_posterior(self, benchmark, earthquake_program,
                             earthquake_instance):
        alarm = ContainsFactEvent(Fact("Alarm", ("house-1",)))

        def condition():
            return condition_exact(earthquake_program,
                                   earthquake_instance, [alarm])

        posterior = benchmark(condition)
        prior = exact_spdb(earthquake_program, earthquake_instance)
        burglary = Fact("Burglary", ("house-1", "Napa", 1))
        # Observing the alarm strongly raises the burglary posterior.
        assert posterior.marginal(burglary) > \
            3 * prior.marginal(burglary)
        assert posterior.total_mass() == pytest.approx(1.0)


class TestExtensionRejection:
    @pytest.mark.parametrize("bias,expected_rate",
                             [(0.5, 0.5), (0.1, 0.1), (0.02, 0.02)])
    def test_acceptance_tracks_selectivity(self, benchmark, bias,
                                           expected_rate):
        program = Program.parse(f"A(Flip<{bias!r}>) :- true.")
        constraint = ContainsFactEvent(Fact("A", (1,)))

        def reject():
            return condition_by_rejection(program, None, [constraint],
                                          n=2000, rng=0)

        result = benchmark(reject)
        assert abs(result.acceptance_rate - expected_rate) < \
            5 * (expected_rate * (1 - expected_rate) / 2000) ** 0.5 \
            + 0.01


class TestExtensionLikelihoodWeighting:
    def test_discrete_agreement_with_exact(self, benchmark):
        program = Program.parse("""
            A(Flip<0.3>) :- true.
            B(Flip<0.5>) :- A(1).
        """)
        exact = condition_exact(program, None,
                                [ContainsFactEvent(Fact("A", (1,)))])

        def weighting():
            return likelihood_weighting(program, None,
                                        [observe("A", 1)], n=2000,
                                        rng=0)

        result = benchmark(weighting)
        estimate = result.posterior.prob(
            lambda D: Fact("B", (1,)) in D)
        assert abs(estimate - exact.marginal(Fact("B", (1,)))) < 0.05

    def test_normal_normal_posterior(self, benchmark):
        program = Program.parse("""
            Mu(Normal<0, 1>) :- true.
            X(Normal<m, 1>) :- Mu(m).
        """)

        def weighting():
            return likelihood_weighting(program, None,
                                        [observe("X", 2.0)], n=4000,
                                        rng=1)

        result = benchmark(weighting)
        mean = result.posterior.weighted_mean(
            lambda D: [f.args[0] for f in D.facts_of("Mu")])
        assert abs(mean - 1.0) < 0.08  # analytic posterior N(1, 1/2)
        assert result.effective_sample_size > 400

    def test_weighting_vs_rejection_same_posterior(self, benchmark):
        program = Program.parse("""
            A(Flip<0.2>) :- true.
            B(Flip<0.7>) :- A(1).
        """)
        constraint = ContainsFactEvent(Fact("A", (1,)))

        def both():
            weighted = likelihood_weighting(
                program, None, [observe("A", 1)], n=1500, rng=2)
            rejected = condition_by_rejection(
                program, None, [constraint], n=1500, rng=3)
            return weighted, rejected

        weighted, rejected = benchmark(both)
        b1 = Fact("B", (1,))
        a = weighted.posterior.prob(lambda D: b1 in D)
        b = rejected.posterior.prob(lambda D: b1 in D)
        assert abs(a - b) < 0.07
        # Weighting uses every run; rejection discards ~80%.
        assert weighted.posterior.n_worlds > \
            rejected.posterior.n_runs * 3
