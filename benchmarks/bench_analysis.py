"""Static-analyzer micro-benchmarks (repro.analysis).

The deep report is a *pre-flight* check - the server computes it on
every program compile and ``repro lint`` runs it interactively - so it
must stay far below interactive latency.  The budget asserted here is
100 ms on the largest workload-generator program (a 100-rule chain)
and on Example 3.4 at scale; the typical cost is well under 10 ms.
"""

import time

import pytest

from repro.analysis import deep_analyze
from repro.api import compile as compile_program
from repro.workloads import paper
from repro.workloads.generators import (chain_instance, chain_program,
                                        earthquake_city_instance,
                                        staged_slots_instance,
                                        staged_slots_program)

#: The interactive-latency budget for one deep analysis (seconds).
BUDGET_SECONDS = 0.100


def deep_report(compiled, instance):
    return deep_analyze(compiled.translated, instance=instance,
                        termination=compiled.analyze())


class TestAnalysisLatency:
    def test_chain_100_rules_under_budget(self, benchmark):
        """The largest generator program: a 100-rule chain."""
        compiled = compile_program(chain_program(100))
        instance = chain_instance(50)
        report = benchmark(lambda: deep_report(compiled, instance))
        assert report.ok()
        assert not report.capabilities.growable_relations
        start = time.perf_counter()
        deep_report(compiled, instance)
        assert time.perf_counter() - start < BUDGET_SECONDS

    def test_example_3_4_at_scale_under_budget(self, benchmark):
        compiled = compile_program(paper.example_3_4_program())
        instance = earthquake_city_instance(50, 4, seed=1)
        report = benchmark(lambda: deep_report(compiled, instance))
        assert report.capabilities.batched.eligible
        start = time.perf_counter()
        deep_report(compiled, instance)
        assert time.perf_counter() - start < BUDGET_SECONDS

    def test_staged_slots_under_budget(self, benchmark):
        compiled = compile_program(staged_slots_program(n_stages=16))
        instance = staged_slots_instance(n_stages=16,
                                         slots_per_stage=8)
        report = benchmark(lambda: deep_report(compiled, instance))
        assert report.capabilities.batched.eligible
        start = time.perf_counter()
        deep_report(compiled, instance)
        assert time.perf_counter() - start < BUDGET_SECONDS

    def test_cached_deep_analyze_is_free(self, benchmark):
        """``CompiledProgram.analyze(deep=True)`` memoizes the report."""
        compiled = compile_program(paper.example_3_4_program())
        first = compiled.analyze(deep=True)
        again = benchmark(lambda: compiled.analyze(deep=True))
        assert again is first
