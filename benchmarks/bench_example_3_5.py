"""E5: Example 3.5 (continuous heights) - sampling and query layer."""

import pytest

from repro.api import compile as compile_program
from repro.distributions import Normal
from repro.measures.empirical import (ks_critical_value, ks_statistic,
                                      summarize)
from repro.query.aggregates import Aggregate, agg_avg
from repro.query.lifted import expected_aggregate
from repro.query.relalg import scan
from repro.workloads import paper
from repro.workloads.generators import heights_instance


class TestE5Moments:
    def test_sampling_matches_moments(self, benchmark, heights_program):
        instance = paper.example_3_5_instance(
            moments={"NL": (183.8, 49.0)}, persons_per_country=4)
        session = compile_program(heights_program).on(instance,
                                                      seed=0)

        pdb = benchmark(lambda: session.sample(600).pdb)
        values = pdb.values_of(
            lambda D: [f.args[1] for f in D.facts_of("PHeight")])
        summary = summarize(values)
        assert summary.mean_within(183.8)
        assert abs(summary.variance - 49.0) < 6.0

    def test_ks_against_generating_normal(self, benchmark,
                                          heights_program):
        instance = paper.example_3_5_instance(
            moments={"PE": (165.2, 36.0)}, persons_per_country=2)
        session = compile_program(heights_program).on(instance,
                                                      seed=1)
        normal = Normal()

        def pipeline():
            pdb = session.sample(800).pdb
            values = pdb.values_of(
                lambda D: [f.args[1] for f in D.facts_of("PHeight")])
            return values, ks_statistic(
                values, lambda x: normal.cdf((165.2, 36.0), x))

        values, stat = benchmark(pipeline)
        assert stat < ks_critical_value(len(values), alpha=0.001)


class TestE5QueryLayer:
    def test_expected_average_height(self, benchmark, heights_program):
        instance = paper.example_3_5_instance(persons_per_country=2)
        pdb = compile_program(heights_program).on(
            instance, seed=2).sample(800).pdb
        query = Aggregate(scan("PHeight", "p", "cm"), (),
                          {"m": agg_avg("cm")})
        value = benchmark(lambda: expected_aggregate(pdb, query))
        assert abs(value - (183.8 + 165.2) / 2) < 1.5


class TestE5Scaling:
    @pytest.mark.parametrize("n_countries,n_persons",
                             [(2, 10), (10, 10), (10, 50)])
    def test_sampling_throughput(self, benchmark, heights_program,
                                 n_countries, n_persons):
        instance = heights_instance(n_countries, n_persons, seed=0)
        session = compile_program(heights_program).on(instance,
                                                      seed=3)

        pdb = benchmark(lambda: session.sample(20).pdb)
        expected_heights = n_countries * n_persons
        assert all(len(D.facts_of("PHeight")) == expected_heights
                   for D in pdb.worlds)
