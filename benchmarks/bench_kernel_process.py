"""E10: the chase as stochastic kernel + Markov process (Prop. 4.6)."""

import numpy as np
import pytest

from repro.api import compile as compile_program
from repro.core.chase import chase_markov_process
from repro.core.parallel import parallel_markov_process
from repro.measures.discrete import DiscreteMeasure
from repro.measures.markov import empirical_final_distribution
from repro.pdb.instances import Instance
from repro.workloads import paper


class TestE10KernelConsistency:
    def test_kernel_paths_match_direct_chase(self, benchmark):
        program = paper.example_1_1_g0()
        process = chase_markov_process(program)
        session = compile_program(program).on(max_steps=50,
                                              keep_aux=True)

        def run_both():
            results = []
            for seed in range(10):
                path = process.sample_path(
                    Instance.empty(), np.random.default_rng(seed), 50)
                run = session.run(rng=np.random.default_rng(seed))
                results.append((path, run))
            return results

        for path, run in benchmark(run_both):
            assert path.absorbed and run.terminated
            assert path.final == run.instance

    def test_process_absorption_matches_exact_spdb(self, benchmark):
        program = paper.example_1_1_g0()
        process = chase_markov_process(program)
        exact = compile_program(program).on(
            keep_aux=True).exact().pdb

        def estimate():
            return empirical_final_distribution(
                process, Instance.empty(), np.random.default_rng(0),
                max_steps=50, n=1500)

        empirical, truncated = benchmark(estimate)
        assert truncated == 0.0
        reference = DiscreteMeasure(dict(exact.worlds()))
        assert empirical.tv_distance(reference) < 0.06

    def test_parallel_process_agrees(self, benchmark):
        program = paper.example_1_1_g0()
        process = parallel_markov_process(program)
        exact = compile_program(program).on(
            keep_aux=True).exact().pdb

        def estimate():
            return empirical_final_distribution(
                process, Instance.empty(), np.random.default_rng(1),
                max_steps=20, n=1500)

        empirical, truncated = benchmark(estimate)
        assert truncated == 0.0
        reference = DiscreteMeasure(dict(exact.worlds()))
        assert empirical.tv_distance(reference) < 0.06

    def test_stability_semantics(self, benchmark):
        # Absorbed paths are "stable": constant from absorption on
        # (the paper's stable-at-i device of Section 4.2).
        program = paper.example_1_1_g0()
        process = chase_markov_process(program)

        def sample_paths():
            return [process.sample_path(Instance.empty(),
                                        np.random.default_rng(seed), 50)
                    for seed in range(20)]

        for path in benchmark(sample_paths):
            index = path.stable_index()
            assert index is not None
            tail = path.states[index:]
            assert all(state == tail[0] for state in tail)
