"""E1 + E2: Example 1.1 - G0, G'0, Gε under both semantics.

Asserts the paper's exact outcome tables and the ε→0 (dis)continuity,
and times exact inference on the micro-programs through the
compile-once facade.
"""

import pytest

from benchmarks.conftest import assert_close_map, facade_exact
from repro.api import compile as compile_program
from repro.workloads import paper

EPSILONS = [0.5, 0.25, 0.125, 0.0625, 1e-3]


class TestE1Outcomes:
    def test_g0_grohe(self, benchmark):
        compiled = compile_program(paper.example_1_1_g0())
        pdb = benchmark(lambda: compiled.on().exact().pdb)
        assert_close_map(dict(pdb.worlds()), paper.G0_EXPECTED_GROHE)

    def test_g0_barany(self, benchmark):
        compiled = compile_program(paper.example_1_1_g0(),
                                   semantics="barany")
        pdb = benchmark(lambda: compiled.on().exact().pdb)
        assert_close_map(dict(pdb.worlds()), paper.G0_EXPECTED_BARANY)

    def test_g0_prime_grohe_equals_g0(self, benchmark):
        compiled = compile_program(paper.example_1_1_g0_prime())
        pdb = benchmark(lambda: compiled.on().exact().pdb)
        assert_close_map(dict(pdb.worlds()), paper.G0_EXPECTED_GROHE)

    def test_g0_prime_barany(self, benchmark):
        compiled = compile_program(paper.example_1_1_g0_prime(),
                                   semantics="barany")
        pdb = benchmark(lambda: compiled.on().exact().pdb)
        assert_close_map(dict(pdb.worlds()),
                         paper.G0_PRIME_EXPECTED_BARANY)


class TestE2EpsilonSweep:
    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_g_eps_exact_values(self, benchmark, epsilon):
        compiled = compile_program(paper.example_1_1_g_eps(epsilon))
        pdb = benchmark(lambda: compiled.on().exact().pdb)
        assert_close_map(dict(pdb.worlds()),
                         paper.g_eps_expected(epsilon))

    def test_continuity_of_new_semantics(self, benchmark):
        limit = facade_exact(paper.example_1_1_g0())

        def sweep():
            distances = []
            for epsilon in EPSILONS:
                pdb = facade_exact(paper.example_1_1_g_eps(epsilon))
                distances.append(pdb.tv_distance(limit))
            return distances

        distances = benchmark(sweep)
        # TV(Gε, G0) = ε/2 under our semantics: vanishes with ε.
        for epsilon, distance in zip(EPSILONS, distances):
            assert distance == pytest.approx(epsilon / 2, abs=1e-9)

    def test_discontinuity_of_original_semantics(self, benchmark):
        limit = facade_exact(paper.example_1_1_g0(),
                             semantics="barany")

        def sweep():
            return [facade_exact(paper.example_1_1_g_eps(epsilon),
                                 semantics="barany")
                    .tv_distance(limit)
                    for epsilon in EPSILONS]

        distances = benchmark(sweep)
        # Bounded away from 0: the limit outcome differs by TV 1/2.
        for distance in distances:
            assert distance >= 0.25
        assert distances[-1] == pytest.approx(0.5, abs=1e-3)
