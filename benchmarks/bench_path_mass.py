"""E9: Figure 1 - path mass accounting (instances vs err).

Finite (stable) chase paths carry instance mass; paths alive at the
budget carry err mass; together they always sum to 1.  Terminating
programs shed all err mass once the budget exceeds the tree height;
cyclic programs retain a decaying err tail.  Driven through
``Session.mass_report``.
"""

import pytest

from repro.api import compile as compile_program
from repro.workloads import paper


class TestE9MassAccounting:
    def test_terminating_program_budget_sweep(self, benchmark):
        session = compile_program(paper.example_1_1_g0()).on()

        reports = benchmark(
            lambda: session.mass_report(budgets=(1, 2, 3, 4, 8, 16)))
        for report in reports:
            assert report.total == pytest.approx(1.0, abs=1e-9)
        assert reports[0].err_mass == pytest.approx(1.0)
        assert reports[-1].err_mass == pytest.approx(0.0)
        errs = [r.err_mass for r in reports]
        assert all(a >= b - 1e-12 for a, b in zip(errs, errs[1:]))

    def test_earthquake_budget_sweep(self, benchmark,
                                     earthquake_program,
                                     earthquake_instance):
        session = compile_program(earthquake_program).on(
            earthquake_instance)

        reports = benchmark(
            lambda: session.mass_report(budgets=(4, 8, 32)))
        assert reports[-1].err_mass == pytest.approx(0.0)
        assert reports[0].err_mass > 0.0

    def test_discrete_cycle_err_tail(self, benchmark):
        session = compile_program(paper.discrete_cycle_program(1.0)) \
            .on(paper.trigger_instance(), tolerance=1e-6)

        reports = benchmark(
            lambda: session.mass_report(budgets=(2, 4, 8)))
        for report in reports:
            assert report.total == pytest.approx(1.0, abs=1e-4)
        # err decays but persists: mass of long chases.
        assert reports[0].err_mass > reports[-1].err_mass > 0.0

    def test_barany_same_accounting(self, benchmark):
        session = compile_program(paper.example_1_1_g0(),
                                  semantics="barany").on()

        reports = benchmark(
            lambda: session.mass_report(budgets=(1, 2, 3, 4)))
        for report in reports:
            assert report.total == pytest.approx(1.0, abs=1e-9)
        # Barany chase of G0 finishes in 3 steps (one shared sample).
        assert reports[-1].err_mass == pytest.approx(0.0)
