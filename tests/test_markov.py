"""Tests for Markov processes (repro.measures.markov)."""

import numpy as np
import pytest

from repro.measures.discrete import DiscreteMeasure
from repro.measures.kernels import DiscreteKernel, IdentityKernel
from repro.measures.markov import (MarkovProcess, absorption_distribution,
                                   empirical_final_distribution,
                                   iterate_distribution, sample_chain)


def walk_kernel(p=0.5, absorb_at=3):
    """A walk on {0..absorb_at}: +1 w.p. p, stay otherwise; absorbing top."""
    def conditional(x):
        if x >= absorb_at:
            return DiscreteMeasure.dirac(x)
        return DiscreteMeasure({x: 1 - p, x + 1: p})
    return DiscreteKernel(conditional)


class TestMarkovProcess:
    def test_absorption(self, rng):
        process = MarkovProcess(walk_kernel(p=1.0),
                                is_absorbing=lambda x: x >= 3)
        path = process.sample_path(0, rng, max_steps=10)
        assert path.absorbed and path.final == 3
        assert path.states == (0, 1, 2, 3)

    def test_stable_index(self, rng):
        process = MarkovProcess(walk_kernel(p=1.0),
                                is_absorbing=lambda x: x >= 2)
        path = process.sample_path(0, rng, max_steps=10)
        assert path.stable_index() == 2

    def test_truncation(self, rng):
        process = MarkovProcess(walk_kernel(p=0.0),  # never moves
                                is_absorbing=lambda x: x >= 3)
        path = process.sample_path(0, rng, max_steps=5)
        assert not path.absorbed
        assert path.stable_index() is None

    def test_sample_final_matches_path(self):
        process = MarkovProcess(walk_kernel(p=1.0),
                                is_absorbing=lambda x: x >= 3)
        rng_a, rng_b = (np.random.default_rng(3) for _ in range(2))
        path = process.sample_path(0, rng_a, 10)
        final, absorbed = process.sample_final(0, rng_b, 10)
        assert (path.final, path.absorbed) == (final, absorbed)

    def test_sample_many_count(self, rng):
        process = MarkovProcess(walk_kernel(),
                                is_absorbing=lambda x: x >= 3)
        results = list(process.sample_many(0, rng, 100, 25))
        assert len(results) == 25


class TestIterateDistribution:
    def test_one_step(self):
        result = iterate_distribution(DiscreteMeasure.dirac(0),
                                      walk_kernel(0.5), 1)
        assert result.mass(1) == pytest.approx(0.5)

    def test_absorbing_mass_frozen(self):
        result = iterate_distribution(
            DiscreteMeasure.dirac(0), walk_kernel(1.0), 10,
            is_absorbing=lambda x: x >= 2)
        # Everything absorbed at 2 despite kernel pointing further.
        assert result.mass(2) == pytest.approx(1.0)

    def test_mass_conserved(self):
        result = iterate_distribution(DiscreteMeasure.dirac(0),
                                      walk_kernel(0.3), 7)
        assert result.total_mass() == pytest.approx(1.0)


class TestAbsorption:
    def test_absorption_split(self):
        absorbed, escaping = absorption_distribution(
            DiscreteMeasure.dirac(0), walk_kernel(0.5), lambda x: x >= 2,
            max_steps=3)
        assert absorbed.total_mass() + escaping == pytest.approx(1.0)
        # After 3 steps of a p=1/2 walk, reaching 2 has prob 1/2.
        assert absorbed.total_mass() == pytest.approx(0.5)

    def test_all_mass_eventually_absorbed(self):
        absorbed, escaping = absorption_distribution(
            DiscreteMeasure.dirac(0), walk_kernel(1.0), lambda x: x >= 2,
            max_steps=10)
        assert escaping == pytest.approx(0.0)

    def test_empirical_agrees_with_exact(self):
        process = MarkovProcess(walk_kernel(0.5),
                                is_absorbing=lambda x: x >= 2)
        empirical, truncated = empirical_final_distribution(
            process, 0, np.random.default_rng(5), max_steps=3, n=4000)
        exact, escaping = absorption_distribution(
            DiscreteMeasure.dirac(0), walk_kernel(0.5),
            lambda x: x >= 2, max_steps=3)
        assert abs(truncated - escaping) < 0.05
        assert empirical.tv_distance(exact) < 0.05


class TestSampleChain:
    def test_inhomogeneous_chain(self, rng):
        kernels = [walk_kernel(1.0), IdentityKernel(), walk_kernel(1.0)]
        states = sample_chain(DiscreteMeasure.dirac(0), kernels, rng)
        assert states == [0, 1, 1, 2]
