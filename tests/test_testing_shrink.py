"""Unit tests for the discrepancy minimizer (repro.testing.shrink)."""

from __future__ import annotations

from repro.core.program import Program
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.testing import FuzzCase, case_size, generate_case, \
    shrink_case


def _case(text: str, facts: tuple = ()) -> FuzzCase:
    return FuzzCase(0, "deterministic", Program.parse(text),
                    Instance(facts))


class TestShrinkCase:
    def test_noop_when_nothing_reproduces_smaller(self):
        case = _case("D0(x) :- E0(x).", (Fact("E0", (1,)),))
        # Failure depends on the (only) rule AND the (only) fact.
        shrunk = shrink_case(
            case,
            lambda c: len(c.program) == 1 and len(c.instance) == 1)
        assert shrunk.program == case.program
        assert shrunk.instance == case.instance

    def test_drops_irrelevant_rules_and_facts(self):
        case = _case(
            "D0(x) :- E0(x).\nD1(x) :- E1(x).\nD2(x) :- E2(x).",
            (Fact("E0", (1,)), Fact("E1", (2,)), Fact("E2", (3,))))
        shrunk = shrink_case(
            case,
            lambda c: any(r.head.relation == "D1"
                          for r in c.program.rules))
        assert [r.head.relation for r in shrunk.program.rules] == ["D1"]
        assert len(shrunk.instance) == 0

    def test_drops_irrelevant_body_atoms(self):
        case = _case("D0(x) :- E0(x), E1(y), E2(z).")
        shrunk = shrink_case(
            case,
            lambda c: any(a.relation == "E0"
                          for r in c.program.rules for a in r.body))
        bodies = [a.relation for r in shrunk.program.rules
                  for a in r.body]
        assert bodies == ["E0"]

    def test_never_breaks_range_restriction(self):
        # Dropping "E0(x)" would orphan the head variable; the shrinker
        # must discard that candidate instead of crashing.
        case = _case("D0(x) :- E0(x), E1(y).")
        shrunk = shrink_case(case, lambda c: True)
        for rule in shrunk.program.rules:
            assert rule.head.variable_set() <= rule.body_variable_set()

    def test_respects_check_budget(self):
        case = generate_case(9, kind="sampling")
        calls = []

        def checker(candidate):
            calls.append(1)
            return True

        shrink_case(case, checker, max_checks=5)
        assert len(calls) <= 5

    def test_checker_crash_treated_as_not_reproducing(self):
        case = _case("D0(x) :- E0(x).\nD1(x) :- E1(x).")

        def fragile(candidate):
            if len(candidate.program) < 2:
                raise RuntimeError("checker bug")
            return True

        shrunk = shrink_case(case, fragile)
        assert len(shrunk.program) == 2  # crashes never "reproduce"

    def test_case_size_metric(self):
        case = _case("D0(x) :- E0(x), E1(x).", (Fact("E0", (1,)),))
        assert case_size(case) == 1 + 2 + 1
