"""Unit tests for the discrepancy minimizer (repro.testing.shrink)."""

from __future__ import annotations

from repro.core.program import Program
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.testing import FuzzCase, case_size, generate_case, \
    shrink_case
from repro.testing.shrink import case_rank, literal_cost, \
    relation_count


def _case(text: str, facts: tuple = ()) -> FuzzCase:
    return FuzzCase(0, "deterministic", Program.parse(text),
                    Instance(facts))


class TestShrinkCase:
    def test_noop_when_nothing_reproduces_smaller(self):
        # Arities differ (no merge), the literal is already 0 (no
        # constant pass), and the failure depends on the (only) rule
        # AND the (only) fact - a genuine fixed point.
        case = _case("D0(x, x) :- E0(x).", (Fact("E0", (0,)),))
        shrunk = shrink_case(
            case,
            lambda c: len(c.program) == 1 and len(c.instance) == 1)
        assert shrunk.program == case.program
        assert shrunk.instance == case.instance

    def test_drops_irrelevant_rules_and_facts(self):
        case = _case(
            "D0(x) :- E0(x).\nD1(x) :- E1(x).\nD2(x) :- E2(x).",
            (Fact("E0", (1,)), Fact("E1", (2,)), Fact("E2", (3,))))
        shrunk = shrink_case(
            case,
            lambda c: any(r.head.relation == "D1"
                          for r in c.program.rules))
        assert [r.head.relation for r in shrunk.program.rules] == ["D1"]
        assert len(shrunk.instance) == 0

    def test_drops_irrelevant_body_atoms(self):
        case = _case("D0(x) :- E0(x), E1(y), E2(z).")
        shrunk = shrink_case(
            case,
            lambda c: any(a.relation == "E0"
                          for r in c.program.rules for a in r.body))
        bodies = [a.relation for r in shrunk.program.rules
                  for a in r.body]
        assert bodies == ["E0"]

    def test_never_breaks_range_restriction(self):
        # Dropping "E0(x)" would orphan the head variable; the shrinker
        # must discard that candidate instead of crashing.
        case = _case("D0(x) :- E0(x), E1(y).")
        shrunk = shrink_case(case, lambda c: True)
        for rule in shrunk.program.rules:
            assert rule.head.variable_set() <= rule.body_variable_set()

    def test_respects_check_budget(self):
        case = generate_case(9, kind="sampling")
        calls = []

        def checker(candidate):
            calls.append(1)
            return True

        shrink_case(case, checker, max_checks=5)
        assert len(calls) <= 5

    def test_checker_crash_treated_as_not_reproducing(self):
        case = _case("D0(x) :- E0(x).\nD1(x) :- E1(x).")

        def fragile(candidate):
            if len(candidate.program) < 2:
                raise RuntimeError("checker bug")
            return True

        shrunk = shrink_case(case, fragile)
        assert len(shrunk.program) == 2  # crashes never "reproduce"

    def test_case_size_metric(self):
        case = _case("D0(x) :- E0(x), E1(x).", (Fact("E0", (1,)),))
        assert case_size(case) == 1 + 2 + 1


class TestConstantSimplification:
    def test_fact_literal_shrinks_toward_zero(self):
        case = _case("D0(x) :- E0(x).", (Fact("E0", (7,)),))
        shrunk = shrink_case(
            case,
            lambda c: len(c.program) == 1 and len(c.instance) == 1)
        (fact,) = shrunk.instance.sorted_facts()
        assert fact.args == (0,)
        assert literal_cost(shrunk) == 0

    def test_distribution_parameter_shrinks_toward_endpoint(self):
        # Flip<0.735> admits both endpoints; the ladder reaches 0.
        case = _case("R0(Flip<0.735>) :- true.")
        shrunk = shrink_case(
            case, lambda c: any(r.is_random() for r in c.program.rules))
        (rule,) = shrunk.program.rules
        _, term = rule.single_random_term()
        assert term.params[0].value == 0

    def test_invalid_parameter_candidates_are_discarded(self):
        # Exponential<0> is outside the parameter space, so the rate
        # can only shrink to 1, never to 0.
        case = _case("R0(Exponential<1.7>) :- true.")
        shrunk = shrink_case(
            case, lambda c: any(r.is_random() for r in c.program.rules))
        (rule,) = shrunk.program.rules
        _, term = rule.single_random_term()
        assert term.params[0].value == 1

    def test_head_constant_shrinks(self):
        case = _case("D0(5) :- E0(x).", (Fact("E0", (0,)),))
        shrunk = shrink_case(
            case,
            lambda c: len(c.program) == 1 and len(c.instance) == 1)
        assert shrunk.program.rules[0].head.terms[0].value == 0

    def test_strictly_smaller_on_seeded_cases(self):
        # Seeded generator output carries rich literals (biases like
        # 0.437, data values 2/3); under a permissive checker the new
        # passes must strictly reduce the rank beyond what structural
        # dropping alone reaches - i.e. the surviving literals are all
        # 0/1-or-validated-minimal and relations are merged.
        for seed in (3, 9, 21):
            case = generate_case(seed, kind="sampling")
            shrunk = shrink_case(
                case,
                lambda c: any(r.is_random() for r in c.program.rules),
                max_checks=2000)
            assert case_rank(shrunk) < case_rank(case), seed
            assert len(shrunk.program.rules) == 1
            assert len(shrunk.instance) == 0


class TestRelationMerging:
    def test_same_arity_relations_merge(self):
        case = _case(
            "D0(x) :- E0(x).\nD1(x) :- E1(x).",
            (Fact("E0", (0,)), Fact("E1", (0,))))
        shrunk = shrink_case(
            case,
            lambda c: len(c.program) == 2 and len(c.instance) >= 1)
        assert relation_count(shrunk) < relation_count(case)

    def test_merge_is_blocked_by_arity_mismatch(self):
        case = _case("D0(x, x) :- E0(x).", (Fact("E0", (0,)),))
        shrunk = shrink_case(case, lambda c: len(c.program) == 1
                             and len(c.instance) == 1)
        assert relation_count(shrunk) == 2

    def test_merging_dedupes_facts(self):
        # E0(0) and E1(0) collapse into one fact after the merge, so
        # the structural size itself drops.
        case = _case("D0(x) :- E0(x), E1(x).",
                     (Fact("E0", (0,)), Fact("E1", (0,))))
        shrunk = shrink_case(
            case, lambda c: len(c.program) == 1)
        assert case_size(shrunk) < case_size(case)


class TestRankMetric:
    def test_rank_orders_structure_before_relations_before_literals(
            self):
        big = _case("D0(x) :- E0(x).\nD1(x) :- E1(x).",
                    (Fact("E0", (7,)),))
        small = _case("D0(7) :- true.")
        assert case_rank(small) < case_rank(big)

    def test_literal_cost_ladder(self):
        zero = _case("D0(0) :- true.")
        one = _case("D0(1) :- true.")
        other = _case("D0(9) :- true.")
        assert literal_cost(zero) < literal_cost(one) \
            < literal_cost(other)
