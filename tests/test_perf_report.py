"""Tests for benchmarks/perf_report.py (the CI benchmark gate).

The module is loaded from its file path (benchmarks/ is not a
package): these tests pin the BENCH_<sha>.json schema, the
calibration-normalized regression comparison, and the CLI exit codes
the CI job relies on.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "perf_report",
    Path(__file__).resolve().parent.parent / "benchmarks"
    / "perf_report.py")
perf_report = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(perf_report)

SCHEMA = json.loads(
    (Path(__file__).resolve().parent.parent / "benchmarks"
     / "bench_schema.json").read_text())


def raw_dump(medians: dict[str, float]) -> dict:
    """A minimal pytest-benchmark --benchmark-json dump."""
    return {"benchmarks": [
        {"fullname": name, "stats": {"median": median}}
        for name, median in medians.items()]}


CALIBRATION = "bench_engine_ablation.py::TestCalibration" \
    "::test_calibration_spin"


def build(medians, sha="abc123"):
    return perf_report.build_report(raw_dump(medians), sha)


class TestBuildReport:
    def test_report_matches_committed_schema(self):
        report = build({CALIBRATION: 0.01, "bench::x": 0.05})
        assert perf_report.validate(report, SCHEMA) == []
        assert report["schema_version"] == 1
        assert report["sha"] == "abc123"

    def test_normalization_uses_calibration_median(self):
        report = build({CALIBRATION: 0.02, "bench::x": 0.05})
        assert report["experiments"]["bench::x"]["normalized"] == \
            pytest.approx(2.5)
        assert report["calibration_median_seconds"] == \
            pytest.approx(0.02)

    def test_missing_calibration_is_an_error(self):
        with pytest.raises(perf_report.ReportError):
            build({"bench::x": 0.05})

    def test_empty_dump_is_an_error(self):
        with pytest.raises(perf_report.ReportError):
            perf_report.build_report({"benchmarks": []}, "sha")


class TestSchemaValidator:
    def test_rejects_missing_required_key(self):
        report = build({CALIBRATION: 0.01})
        del report["sha"]
        assert any("sha" in violation
                   for violation in perf_report.validate(report,
                                                         SCHEMA))

    def test_rejects_unexpected_key(self):
        report = build({CALIBRATION: 0.01})
        report["extra"] = 1
        assert perf_report.validate(report, SCHEMA) != []

    def test_rejects_wrong_type(self):
        report = build({CALIBRATION: 0.01})
        report["calibration_median_seconds"] = "fast"
        assert perf_report.validate(report, SCHEMA) != []

    def test_rejects_malformed_experiment_entry(self):
        report = build({CALIBRATION: 0.01, "bench::x": 0.05})
        report["experiments"]["bench::x"]["surprise"] = 1
        assert perf_report.validate(report, SCHEMA) != []


class TestRegressionGate:
    def _baseline(self, medians):
        return perf_report.baseline_from_report(build(medians))

    def test_identical_run_passes(self):
        medians = {CALIBRATION: 0.01, "bench::x": 0.05}
        verdict = perf_report.compare(build(medians),
                                      self._baseline(medians))
        assert verdict["regressions"] == []
        assert len(verdict["unchanged"]) == 2

    def test_runner_speed_change_alone_does_not_regress(self):
        # Everything (calibration included) 3x slower: normalized
        # medians are unchanged, so a slow runner never trips the gate.
        baseline = self._baseline({CALIBRATION: 0.01, "bench::x": 0.05})
        slowed = build({CALIBRATION: 0.03, "bench::x": 0.15})
        verdict = perf_report.compare(slowed, baseline)
        assert verdict["regressions"] == []

    def test_real_regression_beyond_threshold_fails(self):
        baseline = self._baseline({CALIBRATION: 0.01, "bench::x": 0.05})
        regressed = build({CALIBRATION: 0.01, "bench::x": 0.08})
        verdict = perf_report.compare(regressed, baseline,
                                      threshold=0.25)
        assert [r["id"] for r in verdict["regressions"]] == ["bench::x"]
        assert verdict["regressions"][0]["ratio"] == pytest.approx(1.6)

    def test_regression_within_threshold_passes(self):
        baseline = self._baseline({CALIBRATION: 0.01, "bench::x": 0.05})
        wobble = build({CALIBRATION: 0.01, "bench::x": 0.06})
        verdict = perf_report.compare(wobble, baseline, threshold=0.25)
        assert verdict["regressions"] == []

    def test_new_and_retired_experiments_reported_not_failed(self):
        baseline = self._baseline({CALIBRATION: 0.01, "bench::old": 0.05})
        run = build({CALIBRATION: 0.01, "bench::new": 0.05})
        verdict = perf_report.compare(run, baseline)
        assert verdict["new"] == ["bench::new"]
        assert verdict["retired"] == ["bench::old"]
        assert verdict["regressions"] == []


class TestDeltaTable:
    def _verdict(self):
        baseline = perf_report.baseline_from_report(
            build({CALIBRATION: 0.01, "bench::slow": 0.05,
                   "bench::fast": 0.05, "bench::same": 0.05,
                   "bench::gone": 0.05}))
        run = build({CALIBRATION: 0.01, "bench::slow": 0.09,
                     "bench::fast": 0.02, "bench::same": 0.05,
                     "bench::fresh": 0.01})
        return perf_report.compare(run, baseline, threshold=0.25)

    def test_table_lists_every_experiment_with_status(self):
        table = perf_report.format_delta_table(self._verdict())
        lines = table.splitlines()
        assert lines[0].split() == ["STATUS", "EXPERIMENT",
                                    "BASELINE", "CURRENT", "RATIO"]
        by_id = {line.split()[1]: line for line in lines[2:-1]}
        assert by_id["bench::slow"].startswith("REGRESSED")
        assert by_id["bench::fast"].startswith("IMPROVED")
        assert by_id["bench::same"].startswith("ok")
        assert by_id["bench::fresh"].startswith("NEW")
        assert by_id["bench::gone"].startswith("RETIRED")
        assert "1.80x" in by_id["bench::slow"]
        assert "limit 1.25x" in lines[-1]

    def test_worst_ratio_sorts_first(self):
        table = perf_report.format_delta_table(self._verdict())
        body = [line for line in table.splitlines()[2:]
                if line.split() and line.split()[0] in
                ("REGRESSED", "IMPROVED", "ok")]
        assert body[0].split()[1] == "bench::slow"
        assert body[-1].split()[1] == "bench::fast"

    def test_failing_gate_prints_the_table(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        raw = tmp_path / "raw.json"
        raw.write_text(json.dumps(raw_dump(
            {CALIBRATION: 0.01, "bench::x": 0.05})))
        assert perf_report.main([str(raw), "--sha", "a",
                                 "--write-baseline",
                                 str(baseline)]) == 0
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(raw_dump(
            {CALIBRATION: 0.01, "bench::x": 0.09})))
        assert perf_report.main([str(slow), "--sha", "b",
                                 "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "bench::x" in out
        assert "STATUS" in out and "RATIO" in out
        assert "gate FAILED: 1 regression(s)" in out


class TestCli:
    def _write_raw(self, tmp_path, medians):
        path = tmp_path / "raw.json"
        path.write_text(json.dumps(raw_dump(medians)))
        return path

    def test_artifact_written_and_gate_passes(self, tmp_path):
        raw = self._write_raw(tmp_path,
                              {CALIBRATION: 0.01, "bench::x": 0.05})
        baseline = tmp_path / "baseline.json"
        out = tmp_path / "BENCH_abc.json"
        assert perf_report.main([str(raw), "--sha", "abc",
                                 "--write-baseline",
                                 str(baseline)]) == 0
        assert perf_report.main([str(raw), "--sha", "abc",
                                 "--out", str(out),
                                 "--baseline", str(baseline)]) == 0
        artifact = json.loads(out.read_text())
        assert perf_report.validate(artifact, SCHEMA) == []
        assert artifact["sha"] == "abc"

    def test_gate_fails_with_exit_code_1(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        raw_fast = self._write_raw(tmp_path,
                                   {CALIBRATION: 0.01, "bench::x": 0.05})
        assert perf_report.main([str(raw_fast), "--sha", "a",
                                 "--write-baseline",
                                 str(baseline)]) == 0
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(raw_dump(
            {CALIBRATION: 0.01, "bench::x": 0.09})))
        assert perf_report.main([str(slow), "--sha", "b",
                                 "--baseline", str(baseline)]) == 1

    def test_missing_baseline_skips_gate(self, tmp_path):
        raw = self._write_raw(tmp_path, {CALIBRATION: 0.01})
        assert perf_report.main([str(raw), "--sha", "c",
                                 "--baseline",
                                 str(tmp_path / "absent.json")]) == 0

    def test_unreadable_raw_is_usage_error(self, tmp_path):
        assert perf_report.main([str(tmp_path / "nope.json"),
                                 "--sha", "d"]) == 2
