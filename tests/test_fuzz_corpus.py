"""Replay of persisted fuzz reproducers (``tests/fuzz_corpus/``).

Every discrepancy the fuzzer ever finds is shrunk and saved to this
corpus (``repro fuzz --corpus tests/fuzz_corpus``); this module
replays each file through its recorded oracle on every test run, so a
found bug keeps failing the build until fixed and can never silently
regress afterwards.  The directory ships with curated "pin" entries
(known-good workloads and regression pins) so the replay path is
always exercised.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.testing import (FuzzCase, Oracle, OracleOutcome,
                           load_reproducer, replay_corpus, replay_file,
                           run_fuzz, save_reproducer, shrink_case)
from repro.testing.corpus import SCHEMA_VERSION, case_to_payload, \
    payload_to_case

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


class TestCorpusReplay:
    def test_corpus_is_populated(self):
        """The replay machinery must never be running on thin air."""
        assert CORPUS_FILES, f"no corpus files in {CORPUS_DIR}"

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[p.name for p in CORPUS_FILES])
    def test_reproducer_passes_its_oracle(self, path):
        result = replay_file(path)
        assert result.outcome.status != "fail", (
            f"{path.name} reproduces a discrepancy on oracle "
            f"{result.oracle!r}: {result.outcome.detail}\n"
            f"originally recorded as: {result.detail}")

    def test_replay_corpus_covers_every_file(self):
        results = replay_corpus(CORPUS_DIR)
        assert [r.path for r in results] == CORPUS_FILES


class TestCorpusFormat:
    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[p.name for p in CORPUS_FILES])
    def test_documented_keys_present(self, path):
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert set(payload) >= {"schema_version", "oracle", "seed",
                                "kind", "detail", "program",
                                "extensional", "facts"}

    def test_round_trip(self, tmp_path):
        from repro.testing import generate_case
        case = generate_case(42, kind="exact")
        path = save_reproducer(tmp_path, case, "chase-order",
                               "round-trip test")
        loaded, oracle_name, detail = load_reproducer(path)
        assert oracle_name == "chase-order"
        assert detail == "round-trip test"
        assert loaded.program == case.program
        assert loaded.instance == case.instance
        assert loaded.kind == case.kind

    def test_save_is_idempotent(self, tmp_path):
        from repro.testing import generate_case
        case = generate_case(7, kind="deterministic")
        first = save_reproducer(tmp_path, case, "fixpoint", "a")
        second = save_reproducer(tmp_path, case, "fixpoint", "b")
        assert first == second  # same content digest, no pollution
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_unknown_schema_version_rejected(self):
        payload = case_to_payload(
            _tiny_case(), "fixpoint", "")
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            payload_to_case(payload)


def _tiny_case() -> FuzzCase:
    from repro.core.program import Program
    from repro.pdb.instances import Instance
    return FuzzCase(0, "deterministic",
                    Program.parse("D0(x) :- E0(x)."),
                    Instance.empty())


class _BrokenOracle(Oracle):
    """A synthetic bug: 'fails' whenever a random rule is present."""

    name = "broken"

    def check(self, case: FuzzCase) -> OracleOutcome:
        if any(rule.is_random() for rule in case.program.rules):
            return OracleOutcome("fail", "synthetic discrepancy")
        return OracleOutcome("ok")


class TestEndToEndDiscrepancyFlow:
    """Find -> shrink -> persist -> replay, with a synthetic bug."""

    def test_discrepancy_is_shrunk_persisted_and_replayable(
            self, tmp_path):
        oracle = _BrokenOracle()
        report = run_fuzz(budget=8, seed=3, oracles=[oracle],
                          corpus_dir=tmp_path)
        assert not report.ok()
        assert report.stats["broken"].failed == \
            len(report.discrepancies)
        for discrepancy in report.discrepancies:
            # Shrinking kept the failure and never grew the case.
            assert oracle.check(discrepancy.shrunk).status == "fail"
            from repro.testing import case_size
            assert case_size(discrepancy.shrunk) <= \
                case_size(discrepancy.case)
            assert discrepancy.corpus_path is not None
            assert discrepancy.corpus_path.exists()
        # Replay reproduces every persisted failure.
        results = replay_corpus(tmp_path, {"broken": oracle})
        assert results and all(r.outcome.status == "fail"
                               for r in results)

    def test_shrinker_reaches_a_minimal_case(self):
        oracle = _BrokenOracle()
        from repro.testing import generate_case
        case = generate_case(3, kind="sampling")
        assert oracle.check(case).status == "fail"
        shrunk = shrink_case(
            case, lambda c: oracle.check(c).status == "fail")
        # Minimal for this predicate: one random rule, nothing else.
        assert len(shrunk.program.rules) == 1
        assert shrunk.program.rules[0].is_random()
        assert len(shrunk.instance) == 0
