"""End-to-end integration tests over the public API (import repro)."""

import numpy as np
import pytest

import repro
from repro.query.aggregates import Aggregate, agg_avg, agg_count
from repro.query.lifted import aggregate_distribution, \
    boolean_probability
from repro.query.relalg import scan


class TestPublicApi:
    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.8.0"

    def test_docstring_example(self):
        program = repro.Program.parse(
            "Earthquake(c, Flip<0.1>) :- City(c, r).")
        D0 = repro.Instance.of(repro.Fact("City", ("Napa", 0.03)))
        pdb = repro.exact_spdb(program, D0)
        assert pdb.marginal(repro.Fact("Earthquake", ("Napa", 1))) == \
            pytest.approx(0.1)


class TestSensorPipeline:
    """A realistic end-to-end pipeline mixing all subsystems."""

    PROGRAM = """
        % Sensors fail with probability 0.05.
        Working(s, Flip<0.95>)      :- Sensor(s, mu, s2).
        % Working sensors report a noisy reading.
        Reading(s, Normal<mu, s2>)  :- Sensor(s, mu, s2), Working(s, 1).
        % Deterministic classification feeds further rules.
        Deployed(s)                 :- Working(s, 1).
    """

    @pytest.fixture
    def pipeline(self):
        program = repro.Program.parse(self.PROGRAM)
        instance = repro.Instance.from_dict({
            "Sensor": [("s1", 20.0, 4.0), ("s2", 25.0, 1.0),
                       ("s3", 15.0, 9.0)],
        })
        return program, instance

    def test_static_analysis(self, pipeline):
        program, _ = pipeline
        report = repro.analyze_termination(program)
        assert report.weakly_acyclic

    def test_monte_carlo_semantics(self, pipeline):
        program, instance = pipeline
        pdb = repro.sample_spdb(program, instance, n=2000, rng=0)
        assert pdb.err_mass() == 0.0
        # Working marginal ~ 0.95 per sensor.
        p = pdb.marginal(repro.Fact("Deployed", ("s1",)))
        assert abs(p - 0.95) < 0.03

    def test_query_layer_on_output(self, pipeline):
        program, instance = pipeline
        pdb = repro.sample_spdb(program, instance, n=1500, rng=1)
        n_readings = Aggregate(scan("Reading", "s", "value"), (),
                               {"n": agg_count()})
        counts = aggregate_distribution(pdb, n_readings)
        # Number of readings ~ Binomial(3, 0.95).
        assert counts.mass(3) == pytest.approx(0.95 ** 3, abs=0.04)
        has_s2 = scan("Reading", "s", "value").where(s="s2")
        assert abs(boolean_probability(pdb, has_s2) - 0.95) < 0.03

    def test_reading_moments(self, pipeline):
        program, instance = pipeline
        pdb = repro.sample_spdb(program, instance, n=1500, rng=2)
        values = pdb.values_of(
            lambda D: [f.args[1] for f in D.facts_of("Reading")
                       if f.args[0] == "s2"])
        from repro.measures import summarize
        summary = summarize(values)
        assert summary.mean_within(25.0)
        assert abs(summary.variance - 1.0) < 0.2

    def test_event_layer(self, pipeline):
        program, instance = pipeline
        pdb = repro.sample_spdb(program, instance, n=1500, rng=3)
        hot = repro.CountingEvent(
            repro.FactSet("Reading", None,
                          repro.Interval(low=24.0)), 1)
        probability = pdb.prob(hot)
        assert 0.0 < probability < 1.0


class TestChaseAsMarkovProcess:
    """E10: kernel/Markov-process view consistent with direct chase."""

    def test_kernel_path_reproduces_chase(self, g0):
        process = repro.chase_markov_process(g0)
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        path = process.sample_path(repro.Instance.empty(), rng_a, 50)
        run = repro.run_chase(g0, rng=rng_b, max_steps=50)
        assert path.absorbed and run.terminated
        assert path.final == run.instance

    def test_exact_absorption_matches_exact_spdb(self, g0):
        from repro.measures import (DiscreteMeasure,
                                    absorption_distribution)
        from repro.core.applicability import NaiveApplicability
        from repro.core.exact import exact_sequential_spdb
        from repro.core.translate import translate
        from repro.measures.kernels import DiscreteKernel
        from repro.core.policies import FirstPolicy
        from repro.core.exact import _branches

        translated = translate(g0)
        policy = FirstPolicy()

        def conditional(instance):
            engine = NaiveApplicability(translated, instance)
            applicable = engine.applicable()
            if not applicable:
                return DiscreteMeasure.dirac(instance)
            firing = policy.select(instance, applicable)
            branches, _ = _branches(translated, firing, 1e-12)
            return DiscreteMeasure({instance.add(f): m
                                    for f, m in branches})

        kernel = DiscreteKernel(conditional)

        def absorbing(instance):
            return not NaiveApplicability(translated,
                                          instance).applicable()

        absorbed, escaping = absorption_distribution(
            DiscreteMeasure.dirac(repro.Instance.empty()), kernel,
            absorbing, max_steps=10)
        assert escaping == pytest.approx(0.0)
        exact = exact_sequential_spdb(translated, keep_aux=True)
        for world, probability in exact.worlds():
            assert absorbed.mass(world) == pytest.approx(probability)


class TestErrorHandling:
    def test_invalid_parameter_at_chase_time(self):
        program = repro.Program.parse("Q(c, Flip<r>) :- City(c, r).")
        bad = repro.Instance.of(repro.Fact("City", ("x", 1.5)))
        with pytest.raises(repro.DistributionError):
            repro.run_chase(program, bad, rng=0)

    def test_exact_on_continuous_raises(self):
        program = repro.Program.parse("X(Normal<0, 1>) :- true.")
        with pytest.raises(repro.UnsupportedProgramError):
            repro.exact_spdb(program)

    def test_exception_hierarchy(self):
        for error in (repro.ParseError, repro.SchemaError,
                      repro.ValidationError, repro.DistributionError,
                      repro.ChaseError, repro.MeasureError,
                      repro.UnsupportedProgramError):
            assert issubclass(error, repro.ReproError)
