"""Tests for the conditioning extension (repro.core.constraints)."""

import pytest

from repro.core.constraints import (ConstrainedProgram,
                                    condition_by_rejection,
                                    condition_exact)
from repro.core.program import Program
from repro.core.semantics import exact_spdb
from repro.errors import MeasureError
from repro.pdb.events import ContainsFactEvent, FactSet, Interval, \
    CountingEvent
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads import paper


@pytest.fixture
def two_coins():
    return Program.parse("""
        A(Flip<0.5>) :- true.
        B(Flip<0.5>) :- true.
    """)


class TestExactConditioning:
    def test_posterior_renormalized(self, two_coins):
        posterior = condition_exact(
            two_coins, None, [ContainsFactEvent(Fact("A", (1,)))])
        assert posterior.total_mass() == pytest.approx(1.0)
        assert posterior.marginal(Fact("A", (1,))) == pytest.approx(1.0)
        # B stays fair: independence.
        assert posterior.marginal(Fact("B", (1,))) == pytest.approx(0.5)

    def test_correlated_conditioning(self, earthquake_program,
                                     earthquake_instance):
        # Observing the alarm raises the burglary posterior.
        alarm = ContainsFactEvent(Fact("Alarm", ("house-1",)))
        posterior = condition_exact(earthquake_program,
                                    earthquake_instance, [alarm])
        prior = exact_spdb(earthquake_program, earthquake_instance)
        burglary = Fact("Burglary", ("house-1", "Napa", 1))
        assert posterior.marginal(burglary) > prior.marginal(burglary)

    def test_bayes_rule_agreement(self, two_coins):
        # P(B=1 | A=1 or B=1) = P(B=1)/P(A∪B) by inclusion-exclusion.
        union = ContainsFactEvent(Fact("A", (1,))) | \
            ContainsFactEvent(Fact("B", (1,)))
        posterior = condition_exact(two_coins, None, [union])
        assert posterior.marginal(Fact("B", (1,))) == \
            pytest.approx(0.5 / 0.75)

    def test_multiple_constraints_conjoin(self, two_coins):
        posterior = condition_exact(
            two_coins, None,
            [ContainsFactEvent(Fact("A", (1,))),
             ContainsFactEvent(Fact("B", (0,)))])
        assert posterior.support_size() == 1

    def test_zero_probability_raises(self, two_coins):
        with pytest.raises(MeasureError, match="probability zero"):
            condition_exact(two_coins, None,
                            [ContainsFactEvent(Fact("A", (7,)))])


class TestRejectionSampling:
    def test_matches_exact_posterior(self, two_coins):
        constraint = ContainsFactEvent(Fact("A", (1,)))
        exact = condition_exact(two_coins, None, [constraint])
        result = condition_by_rejection(two_coins, None, [constraint],
                                        n=4000, rng=0)
        assert abs(result.acceptance_rate - 0.5) < 0.03
        estimate = result.posterior.marginal(Fact("B", (1,)))
        assert abs(estimate - exact.marginal(Fact("B", (1,)))) < 0.04

    def test_continuous_thick_event(self):
        program = Program.parse(
            "X(Normal<0, 1>) :- true.")
        positive = CountingEvent(
            FactSet("X", Interval(low=0.0)), 1)
        result = condition_by_rejection(program, None, [positive],
                                        n=2000, rng=1)
        assert abs(result.acceptance_rate - 0.5) < 0.05
        values = result.posterior.values_of(
            lambda D: [f.args[0] for f in D.facts_of("X")])
        assert all(v >= 0.0 for v in values)

    def test_measure_zero_event_raises(self):
        program = Program.parse("X(Normal<0, 1>) :- true.")
        point = ContainsFactEvent(Fact("X", (0.123,)))
        with pytest.raises(MeasureError, match="measure-zero"):
            condition_by_rejection(program, None, [point], n=200,
                                   rng=2)

    def test_truncated_runs_excluded(self):
        program = paper.discrete_cycle_program(1.0)
        anything = lambda D: True
        result = condition_by_rejection(
            program, paper.trigger_instance(), [anything], n=300,
            rng=3, max_steps=5)
        assert result.n_truncated > 0
        assert result.n_accepted + result.n_truncated <= \
            result.n_proposed
        assert 0.0 < result.acceptance_rate <= 1.0


class TestConstrainedProgram:
    def test_observe_chain(self, two_coins):
        package = ConstrainedProgram(two_coins)
        package = package.observe(ContainsFactEvent(Fact("A", (1,))))
        assert len(package.constraints) == 1
        posterior = package.exact()
        assert posterior.marginal(Fact("A", (1,))) == pytest.approx(1.0)

    def test_prior_unchanged(self, two_coins):
        package = ConstrainedProgram(
            two_coins, [ContainsFactEvent(Fact("A", (1,)))])
        assert package.prior().allclose(exact_spdb(two_coins))

    def test_sampling_interface(self, two_coins):
        package = ConstrainedProgram(
            two_coins, [ContainsFactEvent(Fact("A", (1,)))])
        result = package.sample(n=500, rng=4)
        assert result.posterior.marginal(Fact("A", (1,))) == 1.0

    def test_repr(self, two_coins):
        package = ConstrainedProgram(two_coins, [lambda D: True])
        assert "2 rules" in repr(package)
