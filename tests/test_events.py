"""Tests for measurable fact sets and counting events (repro.pdb.events)."""

import pytest

from repro.errors import MeasureError
from repro.pdb.events import (AnyValue, AtLeastEvent, ContainsFactEvent,
                              CountingEvent, Equals, FactSet, Interval,
                              NotCondition, OneOf, PredicateEvent,
                              TrueEvent, as_condition, single_fact_set)
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


@pytest.fixture
def heights():
    return Instance.of(
        Fact("Height", ("a", 170.0)), Fact("Height", ("b", 185.0)),
        Fact("Height", ("c", 192.5)), Fact("Other", (1,)))


class TestConditions:
    def test_any(self):
        assert AnyValue().matches(42) and AnyValue().matches("x")

    def test_equals_normalizes(self):
        assert Equals(1).matches(True)
        assert Equals(True).matches(1)
        assert not Equals(1).matches(2)

    def test_one_of(self):
        cond = OneOf({1, 2})
        assert cond.matches(1) and not cond.matches(3)

    def test_interval_closure(self):
        closed = Interval(0, 1)
        assert closed.matches(0) and closed.matches(1)
        half_open = Interval(0, 1, closed_left=False)
        assert not half_open.matches(0) and half_open.matches(1)
        assert not closed.matches("x")

    def test_interval_rays(self):
        ray = Interval(low=180.0)
        assert ray.matches(185.0) and not ray.matches(170.0)

    def test_interval_empty_rejected(self):
        with pytest.raises(MeasureError):
            Interval(2, 1)

    def test_negation(self):
        cond = NotCondition(Equals(1))
        assert cond.matches(2) and not cond.matches(1)

    def test_as_condition_coercions(self):
        assert as_condition(None).matches("anything")
        assert as_condition(5).matches(5)
        assert as_condition([1, 2]).matches(2)
        assert as_condition(Equals(3)).matches(3)


class TestFactSet:
    def test_membership(self, heights):
        tall = FactSet("Height", None, Interval(low=180.0))
        assert tall.contains(Fact("Height", ("b", 185.0)))
        assert not tall.contains(Fact("Height", ("a", 170.0)))
        assert not tall.contains(Fact("Other", (1,)))

    def test_count_in(self, heights):
        tall = FactSet("Height", None, Interval(low=180.0))
        assert tall.count_in(heights) == 2

    def test_arity_mismatch_never_matches(self):
        fs = FactSet("R", None)
        assert not fs.contains(Fact("R", (1, 2)))

    def test_union_counts_each_fact_once(self, heights):
        tall = FactSet("Height", None, Interval(low=180.0))
        b_person = FactSet("Height", "b", None)
        union = tall.union(b_person)
        # b is both tall and named; counted once.
        assert union.count_in(heights) == 2

    def test_union_multi_relation(self, heights):
        union = FactSet("Other", None).union(FactSet("Height", "a", None))
        assert union.count_in(heights) == 2

    def test_single_fact_set(self):
        fs = single_fact_set(Fact("R", (1, "x")))
        assert fs.contains(Fact("R", (1, "x")))
        assert not fs.contains(Fact("R", (1, "y")))


class TestEvents:
    def test_counting_event(self, heights):
        tall = FactSet("Height", None, Interval(low=180.0))
        assert CountingEvent(tall, 2).contains(heights)
        assert not CountingEvent(tall, 1).contains(heights)

    def test_counting_event_zero(self):
        fs = FactSet("R", None)
        assert CountingEvent(fs, 0).contains(Instance.empty())

    def test_negative_count_rejected(self):
        with pytest.raises(MeasureError):
            CountingEvent(FactSet("R", None), -1)

    def test_at_least(self, heights):
        tall = FactSet("Height", None, Interval(low=180.0))
        assert AtLeastEvent(tall, 1).contains(heights)
        assert AtLeastEvent(tall, 2).contains(heights)
        assert not AtLeastEvent(tall, 3).contains(heights)

    def test_contains_fact(self, heights):
        assert ContainsFactEvent(Fact("Other", (1,))).contains(heights)
        assert not ContainsFactEvent(Fact("Other", (2,))).contains(heights)

    def test_boolean_algebra(self, heights):
        tall2 = CountingEvent(
            FactSet("Height", None, Interval(low=180.0)), 2)
        other = ContainsFactEvent(Fact("Other", (1,)))
        assert (tall2 & other).contains(heights)
        assert (tall2 | ~other).contains(heights)
        assert not (~tall2).contains(heights)

    def test_true_event(self, heights):
        assert TrueEvent().contains(heights)
        assert TrueEvent().contains(Instance.empty())

    def test_predicate_event(self, heights):
        event = PredicateEvent(lambda D: len(D) == 4, "four facts")
        assert event.contains(heights)
