"""Tests for streaming posteriors (repro.api.stream).

The contract under test: ``session.stream(n)`` samples a columnar
batch once, then every ``observe``/``retract`` updates per-world
weights and masks in place - never re-running the chase - while
agreeing with the one-shot ``posterior(method="likelihood")`` answer.
"""

import numpy as np
import pytest

import repro
from repro.api.stream import StreamingPosterior
from repro.errors import (MeasureError, StreamingUnsupported,
                          ValidationError)
from repro.pdb.facts import Fact
from repro.pdb.stats import fact_marginals

CASCADE = """
    Trig(x, Flip<0.6>) :- Site(x).
    Alarm(x, Flip<0.5>) :- Trig(x, 1).
"""

SITE = repro.Instance.of(Fact("Site", ("a",)))


def cascade_session(seed=7, **overrides):
    return repro.compile(CASCADE).on(SITE, seed=seed, **overrides)


class TestStreamBasics:
    def test_stream_returns_streaming_posterior(self):
        stream = cascade_session().stream(64)
        assert isinstance(stream, StreamingPosterior)
        assert stream.n_worlds == 64
        assert stream.n_evidence == 0
        assert stream.resamples == 0

    def test_prior_matches_plain_sampling(self):
        stream = cascade_session().stream(4000)
        prior = stream.marginal(Fact("Trig", ("a", 1)))
        assert abs(prior - 0.6) < 0.04

    def test_observation_shifts_the_posterior(self):
        # P(Trig=1 | Alarm sample = 1) = 0.6*0.5 / (0.6*0.5 + 0.4*1)
        # = 3/7: unfired Alarm rules keep likelihood factor 1.
        stream = cascade_session().stream(4000)
        stream.observe(repro.observe("Alarm", "a", 1))
        posterior = stream.marginal(Fact("Trig", ("a", 1)))
        assert abs(posterior - 3 / 7) < 0.04

    def test_agrees_with_one_shot_likelihood_weighting(self):
        evidence = repro.observe("Alarm", "a", 1)
        stream = cascade_session(seed=3).stream(3000)
        stream.observe(evidence)
        one_shot = cascade_session(seed=3).observe(evidence) \
            .posterior(method="likelihood", n=3000)
        fact = Fact("Trig", ("a", 1))
        assert abs(stream.marginal(fact) - one_shot.marginal(fact)) < 0.05

    def test_fact_evidence_masks_worlds(self):
        stream = cascade_session().stream(3000)
        stream.observe(Fact("Trig", ("a", 1)))
        assert stream.n_alive < stream.n_worlds
        assert stream.marginal(Fact("Trig", ("a", 1))) == 1.0
        assert abs(stream.marginal(Fact("Alarm", ("a", 1))) - 0.5) < 0.05

    def test_event_evidence_masks_worlds(self):
        stream = cascade_session().stream(2000)
        stream.observe(lambda world: Fact("Trig", ("a", 0)) in world)
        assert stream.marginal(Fact("Trig", ("a", 0))) == 1.0
        assert stream.marginal(Fact("Alarm", ("a", 1))) == 0.0

    def test_posterior_result_carries_diagnostics(self):
        stream = cascade_session().stream(500)
        stream.observe(repro.observe("Alarm", "a", 1))
        result = stream.posterior()
        assert result.kind == "stream"
        assert result.n_runs == 500
        assert result.effective_sample_size is not None
        assert 0 < result.effective_sample_size <= 500
        assert result.diagnostics["n_evidence"] == 1
        marginals = fact_marginals(result.pdb)
        assert marginals[Fact("Site", ("a",))] == pytest.approx(1.0)


class TestIncrementalExactness:
    def test_incremental_equals_pre_seeded_stream(self):
        # Evidence applied one observe() at a time must land on the
        # same weights as a stream opened over a session that already
        # carries the evidence (stream() replays session.evidence).
        evidence = repro.observe("Alarm", "a", 1)
        incremental = cascade_session().stream(1500)
        incremental.observe(evidence)
        seeded = cascade_session().observe(evidence).stream(1500)
        np.testing.assert_array_equal(incremental.weights,
                                      seeded.weights)
        fact = Fact("Trig", ("a", 1))
        assert incremental.marginal(fact) == seeded.marginal(fact)

    def test_retraction_restores_the_prior_exactly(self):
        stream = cascade_session().stream(1200)
        fact = Fact("Trig", ("a", 1))
        before = stream.marginal(fact)
        weights_before = stream.weights.copy()
        token = stream.observe(repro.observe("Alarm", "a", 1))
        assert stream.marginal(fact) != before
        stream.retract(token)
        assert stream.marginal(fact) == before
        np.testing.assert_array_equal(stream.weights, weights_before)

    def test_mask_retraction_revives_worlds(self):
        stream = cascade_session().stream(1000)
        token = stream.observe(Fact("Trig", ("a", 1)))
        assert stream.n_alive < stream.n_worlds
        stream.retract(token)
        assert stream.n_alive == stream.n_worlds


class TestEdgeCases:
    def test_retract_of_never_observed_token(self):
        stream = cascade_session().stream(100)
        with pytest.raises(ValidationError, match="never observed"):
            stream.retract(123)

    def test_double_retract(self):
        stream = cascade_session().stream(100)
        token = stream.observe(Fact("Site", ("a",)))
        stream.retract(token)
        with pytest.raises(ValidationError, match="retracted"):
            stream.retract(token)

    def test_duplicate_observation_key(self):
        stream = cascade_session().stream(200)
        stream.observe(repro.observe("Alarm", "a", 1))
        with pytest.raises(ValidationError, match="retract"):
            stream.observe(repro.observe("Alarm", "a", 0))

    def test_all_zero_weights_is_a_clear_error(self):
        # Flip density at 5 is zero everywhere: the evidence has zero
        # likelihood and the posterior must refuse, not emit NaNs.
        session = repro.compile("R(Flip<0.5>) :- true.").on(
            repro.Instance.empty(), seed=1)
        stream = session.stream(200)
        stream.observe(repro.observe("R", 5))
        with pytest.raises(MeasureError, match="zero"):
            stream.posterior()
        with pytest.raises(MeasureError):
            stream.marginal(Fact("R", (5,)))

    def test_single_surviving_world(self):
        # Continuous draws are a.s. distinct, so conditioning on one
        # sampled fact leaves exactly one world alive.
        session = repro.compile(
            "Temp(Normal<20.0, 4.0>) :- true.").on(
            repro.Instance.empty(), seed=5)
        stream = session.stream(50)
        marginals = fact_marginals(stream.posterior().pdb)
        target = next(fact for fact in marginals
                      if fact.relation == "Temp")
        stream.observe(target)
        assert stream.n_alive == 1
        assert stream.marginal(target) == 1.0
        assert stream.effective_sample_size() == pytest.approx(1.0)

    def test_trigger_value_observation_declined(self):
        # Trig=1 is a pinned trigger value: forcing it would require
        # replaying the downstream Alarm layer, so the stream declines
        # (StreamingUnsupported) instead of answering wrongly.
        stream = cascade_session().stream(400)
        with pytest.raises(StreamingUnsupported):
            stream.observe(repro.observe("Trig", "a", 1))

    def test_declined_observation_leaves_stream_usable(self):
        stream = cascade_session().stream(400)
        before = stream.weights.copy()
        with pytest.raises(StreamingUnsupported):
            stream.observe(repro.observe("Trig", "a", 1))
        np.testing.assert_array_equal(stream.weights, before)
        assert stream.n_evidence == 0
        stream.observe(repro.observe("Alarm", "a", 1))
        assert stream.n_evidence == 1

    def test_shared_streams_rejected(self):
        with pytest.raises(ValidationError, match="spawn"):
            cascade_session(streams="shared").stream(50)

    def test_generator_seed_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            cascade_session(seed=rng).stream(50)

    def test_resample_threshold_validation(self):
        with pytest.raises(ValidationError, match="resample_threshold"):
            cascade_session(resample_threshold=1.5)
        with pytest.raises(ValidationError, match="resample_threshold"):
            cascade_session(resample_threshold=True)


class TestSessionInterplay:
    def test_one_shot_posterior_still_works_after_stream(self):
        session = cascade_session()
        stream = session.stream(800)
        stream.observe(repro.observe("Alarm", "a", 1))
        result = session.observe(repro.observe("Alarm", "a", 1)) \
            .posterior(method="likelihood", n=800)
        fact = Fact("Trig", ("a", 1))
        assert abs(result.marginal(fact) - 3 / 7) < 0.08
        # The stream is unaffected by the session-side query.
        assert stream.n_evidence == 1
        assert abs(stream.marginal(fact) - 3 / 7) < 0.08

    def test_plain_sampling_still_works_after_stream(self):
        session = cascade_session()
        session.stream(200)
        sampled = session.sample(500)
        assert abs(sampled.marginal(Fact("Trig", ("a", 1))) - 0.6) < 0.1


class TestResampling:
    def test_resample_triggers_and_is_deterministic(self):
        streams = []
        for _repeat in range(2):
            stream = cascade_session(resample_threshold=1.0).stream(2000)
            stream.observe(repro.observe("Alarm", "a", 1))
            streams.append(stream)
        first, second = streams
        assert first.resamples > 0
        assert first.resamples == second.resamples
        np.testing.assert_array_equal(first.weights, second.weights)
        fact = Fact("Trig", ("a", 1))
        assert first.marginal(fact) == second.marginal(fact)
        assert abs(first.marginal(fact) - 3 / 7) < 0.05

    def test_resample_preserves_the_posterior(self):
        stream = cascade_session().stream(4000)
        stream.observe(repro.observe("Alarm", "a", 1))
        fact = Fact("Trig", ("a", 1))
        before = stream.marginal(fact)
        stream.resample()
        assert stream.resamples == 1
        # Systematic resampling is low-variance: the marginal moves by
        # at most one particle weight's worth.
        assert abs(stream.marginal(fact) - before) < 0.03

    def test_pre_resample_evidence_cannot_be_retracted(self):
        stream = cascade_session().stream(1000)
        token = stream.observe(repro.observe("Alarm", "a", 1))
        stream.resample()
        with pytest.raises(ValidationError, match="resampl"):
            stream.retract(token)


class TestSlidingWindow:
    def test_window_auto_retracts_oldest(self):
        windowed = cascade_session().stream(1500, max_window=1)
        windowed.observe(repro.observe("Alarm", "a", 1))
        windowed.observe(Fact("Trig", ("a", 1)))
        assert windowed.n_evidence == 1
        # Equivalent to a fresh stream holding only the newest item.
        fresh = cascade_session().stream(1500)
        fresh.observe(Fact("Trig", ("a", 1)))
        np.testing.assert_array_equal(windowed.weights, fresh.weights)

    def test_window_validation(self):
        with pytest.raises(ValidationError, match="max_window"):
            cascade_session().stream(100, max_window=0)
