"""Tests for GDatalog syntax objects: terms, atoms, rules."""

import pytest

from repro.core.atoms import Atom, atom
from repro.core.rules import Rule, fact_rule, iter_constants
from repro.core.terms import (Const, RandomTerm, Var, as_term,
                              substitute)
from repro.distributions.registry import DEFAULT_REGISTRY
from repro.errors import ValidationError

FLIP = DEFAULT_REGISTRY["Flip"]
NORMAL = DEFAULT_REGISTRY["Normal"]


class TestTerms:
    def test_var_identity(self):
        assert Var("x") == Var("x") and Var("x") != Var("y")
        assert hash(Var("x")) == hash(Var("x"))

    def test_var_name_validation(self):
        with pytest.raises(ValidationError):
            Var("")

    def test_const_normalization(self):
        assert Const(True) == Const(1)

    def test_random_term_structure(self):
        term = RandomTerm(FLIP, (Const(0.5),))
        assert term.is_random()
        assert term.distribution.name == "Flip"

    def test_random_term_arity_checked(self):
        with pytest.raises(ValidationError):
            RandomTerm(FLIP, (Const(0.5), Const(0.5)))

    def test_random_term_constant_params_validated(self):
        from repro.errors import DistributionError
        with pytest.raises(DistributionError):
            RandomTerm(FLIP, (Const(1.5),))

    def test_random_term_variable_params_deferred(self):
        # Variable parameters are validated at chase time.
        term = RandomTerm(FLIP, (Var("p"),))
        assert list(term.variables()) == [Var("p")]

    def test_no_nested_random_terms(self):
        inner = RandomTerm(FLIP, (Const(0.5),))
        with pytest.raises(ValidationError):
            RandomTerm(FLIP, (inner,))

    def test_as_term_conventions(self):
        assert as_term("x") == Var("x")
        assert as_term("Xyz") == Const("Xyz")
        assert as_term(3) == Const(3)
        assert as_term(Var("q")) == Var("q")

    def test_substitute(self):
        assert substitute(Const(5), {}) == 5
        assert substitute(Var("x"), {Var("x"): 7}) == 7
        with pytest.raises(ValidationError):
            substitute(Var("x"), {})
        with pytest.raises(ValidationError):
            substitute(RandomTerm(FLIP, (Const(0.5),)), {})


class TestAtoms:
    def test_construction(self):
        a = atom("R", "x", 1)
        assert a.relation == "R" and a.arity == 2

    def test_zero_arity_rejected(self):
        with pytest.raises(ValidationError):
            Atom("R", ())

    def test_random_detection(self):
        a = Atom("R", (Var("x"), RandomTerm(FLIP, (Const(0.5),))))
        assert a.is_random()
        assert a.random_positions() == (1,)
        assert len(a.random_terms()) == 1

    def test_variables_include_param_vars(self):
        a = Atom("R", (Var("x"), RandomTerm(FLIP, (Var("p"),))))
        assert a.variable_set() == {Var("x"), Var("p")}

    def test_ground(self):
        a = atom("R", "x", 1)
        f = a.ground({Var("x"): "v"})
        assert f.relation == "R" and f.args == ("v", 1)

    def test_ground_random_atom_rejected(self):
        a = Atom("R", (RandomTerm(FLIP, (Const(0.5),)),))
        with pytest.raises(ValidationError):
            a.ground({})

    def test_to_fact(self):
        assert atom("R", 1, 2).to_fact().args == (1, 2)

    def test_is_ground(self):
        assert atom("R", 1).is_ground()
        assert not atom("R", "x").is_ground()


class TestRules:
    def test_simple_rule(self):
        rule = Rule(atom("Head", "x"), (atom("Body", "x"),))
        assert not rule.is_random()
        assert rule.frontier() == (Var("x"),)

    def test_empty_body_is_top(self):
        rule = fact_rule(Atom("R", (RandomTerm(FLIP, (Const(0.5),)),)))
        assert rule.body == ()
        assert rule.is_random()

    def test_random_body_rejected(self):
        bad = Atom("B", (RandomTerm(FLIP, (Const(0.5),)),))
        with pytest.raises(ValidationError):
            Rule(atom("H", "x"), (bad, atom("C", "x")))

    def test_range_restriction(self):
        with pytest.raises(ValidationError):
            Rule(atom("H", "x", "y"), (atom("B", "x"),))

    def test_range_restriction_of_params(self):
        head = Atom("H", (RandomTerm(FLIP, (Var("p"),)),))
        with pytest.raises(ValidationError):
            Rule(head, (atom("B", "x"),))
        Rule(head, (atom("B", "p"),))  # bound: fine

    def test_single_random_term(self):
        head = Atom("H", (Var("x"), RandomTerm(FLIP, (Const(0.5),))))
        rule = Rule(head, (atom("B", "x"),))
        position, term = rule.single_random_term()
        assert position == 1 and term.distribution.name == "Flip"

    def test_single_random_term_rejects_deterministic(self):
        rule = Rule(atom("H", "x"), (atom("B", "x"),))
        with pytest.raises(ValidationError):
            rule.single_random_term()

    def test_multi_random_not_normal_form(self):
        head = Atom("H", (RandomTerm(FLIP, (Const(0.5),)),
                          RandomTerm(FLIP, (Const(0.5),))))
        rule = Rule(head, ())
        assert not rule.is_normal_form()

    def test_frontier_order(self):
        rule = Rule(atom("H", "b", "a"),
                    (atom("B1", "a"), atom("B2", "b")))
        assert rule.frontier() == (Var("a"), Var("b"))

    def test_all_variables(self):
        rule = Rule(atom("H", "x"), (atom("B", "x", "z"),))
        assert rule.all_variables() == (Var("x"), Var("z"))

    def test_iter_constants(self):
        head = Atom("H", (Const(7), RandomTerm(FLIP, (Const(0.25),))))
        rule = Rule(head, (atom("B", 3, "x"),))
        constants = {c.value for c in iter_constants(rule)}
        assert constants == {7, 0.25, 3}

    def test_equality(self):
        a = Rule(atom("H", "x"), (atom("B", "x"),))
        b = Rule(atom("H", "x"), (atom("B", "x"),))
        assert a == b and hash(a) == hash(b)

    def test_repr_contains_arrow(self):
        rule = Rule(atom("H", "x"), (atom("B", "x"),))
        assert "←" in repr(rule)
        assert "⊤" in repr(fact_rule(atom("H", 1)))
