"""The columnar query pushdown: Session.query, planner, wire, shims.

Covers the unified query entry points (``Session.query`` /
``InferenceResult.query`` -> ``QueryResult``), the columnar planner's
strategy selection and its zero-materialization guarantee (including
over a *sharded* merged ensemble - served queries never expand a
world), the relational-plan wire codec, the served ``query`` op, the
``repro query`` CLI contract, and the deprecated ``repro.query.lifted``
shims (which must warn yet stay bit-identical).
"""

import io
import json
import warnings

import pytest

from repro.api import QueryResult, compile as compile_program
from repro.core.observe import observe
from repro.engine.batched import ColumnarMonteCarloPDB
from repro.errors import ValidationError
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.pdb.weighted import WeightedColumnarPDB
from repro.query import (Aggregate, agg_avg, agg_count, agg_sum,
                         explain, plan_vectorizable, query_answers,
                         scan, scanned_relations)
from repro.query.relalg import Scan
from repro.serving import (ProgramServer, ShardExecutor, protocol,
                           sample_sharded)

TEMP_PROGRAM = "Temp(c, Normal<20.0, 4.0>) :- City(c)."
COIN_PROGRAM = "Heads(x, Flip<0.5>) :- Coin(x)."


def cities(*names) -> Instance:
    return Instance.from_dict({"City": [(name,) for name in names]})


def temp_session(seed: int = 5, **config):
    return compile_program(TEMP_PROGRAM).on(
        cities("amsterdam", "delft"), seed=seed, **config)


def avg_plan():
    return Aggregate(
        scan("Temp", "city", "celsius").where(city="delft"),
        (), {"t": agg_avg("celsius")})


class TestSessionQuery:
    def test_exact_path_on_discrete_program(self):
        session = compile_program(COIN_PROGRAM).on(
            Instance.from_dict({"Coin": [("a",), ("b",)]}))
        plan = Aggregate(
            scan("Heads", "coin", "side").where(side=1),
            (), {"n": agg_count()})
        result = session.query(plan)
        assert isinstance(result, QueryResult)
        assert result.result.kind == "exact"
        assert result.expected_aggregate() == pytest.approx(1.0)
        answers = result.aggregate_distribution()
        assert answers.mass(0) == pytest.approx(0.25)
        assert answers.mass(2) == pytest.approx(0.25)

    def test_columnar_path_on_continuous_program(self):
        result = temp_session().query(avg_plan(), n=2000)
        assert result.result.backend == "batched"
        assert result.strategy() == "columnar"
        assert abs(result.expected_aggregate() - 20.0) < 0.3
        assert result.boolean_probability() == 1.0
        # The accessor answered without expanding the grouped worlds.
        assert result.pdb.materializations == 0
        assert not result.pdb.materialized

    def test_lifted_fast_path_on_stable_scan(self):
        result = temp_session().query(Scan("City", ("city",)), n=200)
        assert result.strategy() == "lifted"
        distribution = result.distribution()
        assert len(dict(distribution.items())) == 1  # one shared answer
        assert result.boolean_probability() == 1.0
        assert result.pdb.materializations == 0

    def test_opaque_select_falls_back(self):
        plan = scan("Temp", "city", "celsius").select(
            lambda row: row["celsius"] > 20.0)
        assert not plan_vectorizable(plan)
        result = temp_session().query(plan, n=100)
        assert result.strategy() == "fallback"
        assert 0.0 < result.boolean_probability() < 1.0

    def test_evidence_routes_to_posterior(self):
        session = temp_session().observe(
            observe("Temp", "amsterdam", 26.0))
        result = session.query(avg_plan(), n=400)
        assert result.result.kind == "likelihood"
        assert abs(result.expected_aggregate() - 20.0) < 1.0

    def test_inference_result_query_matches_session_query(self):
        session = temp_session()
        sampled = session.sample(300)
        direct = sampled.query(avg_plan())
        routed = session.query(avg_plan(), n=300)
        assert direct.distribution() == routed.distribution()

    def test_streamed_posterior_queries_without_collapsing(self):
        session = temp_session(seed=9)
        stream = session.stream(600)
        stream.observe(observe("Temp", "amsterdam", 24.0))
        result = stream.posterior().query(avg_plan())
        assert isinstance(result.pdb, WeightedColumnarPDB)
        assert result.strategy() == "columnar"
        assert abs(result.expected_aggregate() - 20.0) < 0.5
        # Identity against naive weighted evaluation.
        pdb = result.pdb
        expected: dict = {}
        for world, weight in pdb._iter_weighted():
            key = avg_plan().evaluate(world).canonical()
            expected[key] = expected.get(key, 0.0) + weight
        total = pdb.total_weight()
        columnar = dict(result.distribution().items())
        assert set(columnar) == set(expected)
        for key, mass in expected.items():
            assert columnar[key] == pytest.approx(mass / total)


class TestPlanAnalysis:
    def test_scanned_relations_walks_the_tree(self):
        plan = Aggregate(
            scan("Alarm", "unit").join(scan("House", "unit", "city")),
            (), {"n": agg_count()})
        assert scanned_relations(plan) == frozenset(
            {"Alarm", "House"})

    def test_query_answers_matches_per_world_evaluation(self):
        pdb = temp_session().sample(250).pdb
        assert isinstance(pdb, ColumnarMonteCarloPDB)
        plan = avg_plan()
        compiled = query_answers(pdb, plan)
        assert pdb.materializations == 0
        naive = [None if world is None else plan.evaluate(world)
                 for world in pdb.world_slots()]
        assert compiled == naive

    def test_explain_over_every_representation(self):
        session = temp_session()
        pdb = session.sample(100).pdb
        assert explain(pdb, avg_plan()) == "columnar"
        assert explain(pdb, Scan("City", ("city",))) == "lifted"
        opaque = scan("Temp", "c", "v").select(lambda row: True)
        assert explain(pdb, opaque) == "fallback"
        exact = compile_program(COIN_PROGRAM).on(
            Instance.from_dict({"Coin": [("a",)]})).exact().pdb
        assert explain(exact, scan("Heads", "x", "v")) == "worlds"


class TestShardedServedQueries:
    """Served queries over sharded columnar results: zero worlds."""

    def test_sharded_merge_answers_without_materializing(self):
        session = temp_session(seed=3)
        cfg = session.config.replace(shards=2)
        with ShardExecutor(session.compiled.translated,
                           session.instance, cfg,
                           inline=True) as executor:
            result = sample_sharded(session, 240, cfg,
                                    executor=executor)
        pdb = result.pdb
        assert isinstance(pdb, ColumnarMonteCarloPDB)
        plan = Aggregate(
            scan("Temp", "city", "celsius")
            .join(scan("City", "city")),
            (), {"t": agg_avg("celsius")})
        bound = result.query(plan)
        assert bound.strategy() == "columnar"
        assert abs(bound.expected_aggregate() - 20.0) < 0.6
        assert bound.boolean_probability() == 1.0
        assert dict(bound.distribution().items())
        # The acceptance tripwire: the whole join+aggregate pipeline
        # over the merged shard result expanded zero worlds.
        assert pdb.materializations == 0
        assert not pdb.materialized

    def test_server_query_op_with_shards(self):
        server = ProgramServer()
        reply = server.handle({
            "op": "query", "program": TEMP_PROGRAM,
            "instance": {"City": [["amsterdam"], ["delft"]]},
            "n": 200, "config": {"seed": 4, "shards": 2},
            "plan": {
                "op": "aggregate",
                "source": {"op": "scan", "relation": "Temp",
                           "columns": ["city", "celsius"]},
                "group_by": [],
                "aggregates": {"t": {"fn": "avg",
                                     "column": "celsius"}}}})
        assert reply["ok"], reply
        result = reply["result"]
        assert result["command"] == "query"
        assert result["strategy"] == "columnar"
        assert result["n_runs"] == 200
        assert abs(result["expected_aggregate"] - 20.0) < 0.8
        assert result["answers"]
        assert sum(entry["probability"]
                   for entry in result["answers"]) == pytest.approx(
                       1.0, abs=1e-9)


class TestPlanCodec:
    def test_roundtrip_nested_plan(self):
        plan = Aggregate(
            scan("Temp", "town", "celsius").where(town="delft")
            .join(scan("City", "city").rename(city="town")
                  .project("town")),
            ("town",), {"total": agg_sum("celsius"),
                        "n": agg_count()})
        payload = protocol.plan_payload(plan)
        assert protocol.plan_payload(
            protocol.parse_plan(payload)) == payload

    def test_every_binary_op_roundtrips(self):
        left = scan("Heads", "x", "v")
        right = scan("Heads", "x", "v").where(v=1)
        for combined in (left.union(right), left.difference(right),
                         left.intersect(right), left.join(right)):
            payload = protocol.plan_payload(combined)
            assert protocol.plan_payload(
                protocol.parse_plan(payload)) == payload

    def test_opaque_select_is_rejected(self):
        plan = scan("Temp", "c", "v").select(lambda row: True)
        with pytest.raises(ValidationError):
            protocol.plan_payload(plan)

    def test_unknown_op_is_rejected(self):
        with pytest.raises(ValidationError):
            protocol.parse_plan({"op": "teleport"})

    def test_aggregate_needing_column_without_one_is_rejected(self):
        with pytest.raises(ValidationError):
            protocol.parse_plan({
                "op": "aggregate",
                "source": {"op": "scan", "relation": "R"},
                "group_by": [],
                "aggregates": {"s": {"fn": "sum", "column": None}}})


class TestDeprecatedLiftedShims:
    """repro.query.lifted warns but stays bit-identical."""

    def _pdb(self):
        return temp_session(seed=11).sample(150).pdb

    def test_shims_warn(self):
        from repro.query import lifted
        pdb = self._pdb()
        with pytest.warns(DeprecationWarning,
                          match="lifted.query_distribution"):
            lifted.query_distribution(pdb, Scan("City", ("city",)))

    def test_shims_are_bit_identical(self):
        from repro.query import columnar, lifted
        pdb = self._pdb()
        plan = avg_plan()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert lifted.query_distribution(pdb, plan) \
                == columnar.query_distribution(pdb, plan)
            assert lifted.boolean_probability(pdb, plan) \
                == columnar.boolean_probability(pdb, plan)
            assert lifted.expected_aggregate(pdb, plan) \
                == columnar.expected_aggregate(pdb, plan)
            assert lifted.aggregate_distribution(pdb, plan) \
                == columnar.aggregate_distribution(pdb, plan)
            assert lifted.answer_probabilities(
                pdb, scan("Temp", "city", "celsius"), "city") \
                == columnar.answer_probabilities(
                    pdb, scan("Temp", "city", "celsius"), "city")

    def test_canonical_imports_do_not_warn(self):
        pdb = self._pdb()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.query import query_distribution
            query_distribution(pdb, Scan("City", ("city",)))


class TestQueryCli:
    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "temp.gdl"
        path.write_text(TEMP_PROGRAM + "\n")
        data = tmp_path / "cities.json"
        data.write_text(json.dumps(
            {"City": [["amsterdam"], ["delft"]]}))
        return str(path), str(data)

    @staticmethod
    def _run(argv):
        from repro.cli import main
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    PLAN = json.dumps({
        "op": "aggregate",
        "source": {"op": "scan", "relation": "Temp",
                   "columns": ["city", "celsius"]},
        "group_by": [],
        "aggregates": {"t": {"fn": "avg", "column": "celsius"}}})

    def test_json_contract(self, program_file):
        program, data = program_file
        code, output = self._run(
            ["query", program, "--data", data, "--plan", self.PLAN,
             "-n", "300", "--seed", "2", "--json"])
        assert code == 0
        document = json.loads(output)
        assert document["command"] == "query"
        assert document["strategy"] == "columnar"
        assert document["kind"] == "sample"
        assert document["n_runs"] == 300
        assert document["plan"] == json.loads(self.PLAN)
        assert abs(document["expected_aggregate"] - 20.0) < 0.8
        assert all({"columns", "rows", "probability"}
                   <= set(entry) for entry in document["answers"])

    def test_plan_from_file_and_text_mode(self, program_file,
                                          tmp_path):
        program, data = program_file
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(self.PLAN)
        code, output = self._run(
            ["query", program, "--data", data,
             "--plan", f"@{plan_path}", "-n", "200"])
        assert code == 0
        assert "strategy columnar" in output
        assert "P(non-empty) = 1.000000" in output
        assert "E[aggregate]" in output

    def test_observe_routes_to_posterior(self, program_file):
        program, data = program_file
        code, output = self._run(
            ["query", program, "--data", data, "--plan", self.PLAN,
             "-n", "150", "--observe", "Temp,amsterdam,24.0",
             "--json"])
        assert code == 0
        document = json.loads(output)
        assert document["kind"] == "likelihood"

    def test_bad_plan_is_a_usage_error(self, program_file):
        program, data = program_file
        code, _ = self._run(
            ["query", program, "--data", data, "--plan", "not json"])
        assert code == 2

    def test_seeded_runs_are_reproducible(self, program_file):
        program, data = program_file
        argv = ["query", program, "--data", data, "--plan", self.PLAN,
                "-n", "120", "--seed", "6", "--json"]
        first = json.loads(self._run(argv)[1])
        second = json.loads(self._run(argv)[1])
        first.pop("elapsed_seconds")
        second.pop("elapsed_seconds")
        assert first == second


class TestExpectedSizeColumnarIdentity:
    def test_expected_size_reads_columns(self):
        from repro.pdb.stats import expected_size
        pdb = temp_session(seed=13).sample(200).pdb
        assert isinstance(pdb, ColumnarMonteCarloPDB)
        columnar = expected_size(pdb)
        assert pdb.materializations == 0
        naive = pdb.expectation(len)
        assert columnar == naive
