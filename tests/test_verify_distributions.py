"""Tests for the Fact 2.3 numeric verifiers (repro.distributions.verify)."""

import pytest

from repro.distributions.base import ParameterizedDistribution
from repro.distributions.registry import DEFAULT_REGISTRY
from repro.distributions.verify import (Fact23Report,
                                        distribution_distance,
                                        fact_2_3_report,
                                        verify_identifiability,
                                        verify_normalization,
                                        verify_parameter_continuity)

CATALOGUE = [
    ("Flip", [(0.3,), (0.7,)], [0, 1]),
    ("Binomial", [(5, 0.3), (5, 0.6)], [0, 2, 5]),
    ("Poisson", [(1.0,), (4.0,)], [0, 2, 7]),
    ("Geometric", [(0.4,), (0.8,)], [0, 1, 3]),
    ("DiscreteUniform", [(0, 4), (2, 9)], [1, 3]),
    ("Normal", [(0.0, 1.0), (2.0, 4.0)], [0.0, 1.5, -2.0]),
    ("LogNormal", [(0.0, 0.5), (1.0, 0.25)], [0.5, 1.0, 3.0]),
    ("Exponential", [(1.0,), (3.0,)], [0.2, 1.0, 2.5]),
    ("Uniform", [(0.0, 1.0), (0.0, 2.0)], [0.25, 0.75]),
    ("Gamma", [(2.0, 1.0), (3.0, 2.0)], [0.5, 1.5, 4.0]),
    ("Beta", [(2.0, 2.0), (5.0, 1.5)], [0.2, 0.5, 0.8]),
    ("Laplace", [(0.0, 1.0), (1.0, 2.0)], [0.0, 1.0, -1.5]),
]


class TestCatalogueSatisfiesFact23:
    @pytest.mark.parametrize("name,points,values", CATALOGUE,
                             ids=[c[0] for c in CATALOGUE])
    def test_all_conditions(self, name, points, values):
        distribution = DEFAULT_REGISTRY[name]
        report = fact_2_3_report(distribution, points, values)
        assert report.all_ok(), report


class TestIndividualVerifiers:
    def test_normalization_discrete(self):
        assert verify_normalization(DEFAULT_REGISTRY["Flip"], (0.25,))
        assert verify_normalization(DEFAULT_REGISTRY["Poisson"], (3.0,))

    def test_normalization_continuous(self):
        assert verify_normalization(DEFAULT_REGISTRY["Normal"],
                                    (0.0, 1.0))

    def test_normalization_catches_broken_density(self):
        class Broken(ParameterizedDistribution):
            name = "Broken"
            param_arity = 1
            is_discrete = True

            def _check_params(self, params):
                return params

            def density(self, params, x):
                # Deliberately unnormalized pmf.
                return 0.4 if x in (0, 1) else 0.0

            def support(self, params):
                return iter((0, 1))

            def support_is_finite(self, params):
                return True

        assert not verify_normalization(Broken(), (0.5,))

    def test_continuity(self):
        assert verify_parameter_continuity(DEFAULT_REGISTRY["Normal"],
                                           (0.0, 1.0), 0.5)
        assert verify_parameter_continuity(DEFAULT_REGISTRY["Flip"],
                                           (0.5,), 1)

    def test_identifiability_positive_distance(self):
        flip = DEFAULT_REGISTRY["Flip"]
        assert verify_identifiability(flip, (0.3,), (0.7,))
        assert distribution_distance(flip, (0.3,), (0.7,)) == \
            pytest.approx(0.4)

    def test_identifiability_same_point_trivial(self):
        flip = DEFAULT_REGISTRY["Flip"]
        assert verify_identifiability(flip, (0.5,), (0.5,))

    def test_tagged_distribution_not_identifiable_in_tag(self):
        # The §6.2 tagging wrapper deliberately breaks identifiability
        # in the tag coordinate - the verifier should notice.
        from repro.core.barany import TaggedDistribution
        tagged = TaggedDistribution(DEFAULT_REGISTRY["Flip"])
        assert not verify_identifiability(tagged, (0, 0.5), (1, 0.5))

    def test_continuous_distance(self):
        normal = DEFAULT_REGISTRY["Normal"]
        far = distribution_distance(normal, (0.0, 1.0), (5.0, 1.0))
        near = distribution_distance(normal, (0.0, 1.0), (0.1, 1.0))
        assert far > near > 0.0
        assert far <= 1.0 + 1e-6


class TestReport:
    def test_repr_flags(self):
        report = Fact23Report("X", True, False, True)
        assert "FAIL" in repr(report)
        assert not report.all_ok()
