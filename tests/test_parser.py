"""Tests for the GDatalog surface-syntax parser."""

import pytest

from repro.core.parser import parse_program, parse_rule, tokenize
from repro.core.program import Program
from repro.core.terms import Const, RandomTerm, Var
from repro.distributions.registry import DEFAULT_REGISTRY
from repro.errors import ParseError


def parse_one(text):
    return parse_rule(text, DEFAULT_REGISTRY)


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("R(x, 1) :- S(x).")]
        assert kinds == ["NAME", "LPAREN", "NAME", "COMMA", "NUMBER",
                         "RPAREN", "ARROW", "NAME", "LPAREN", "NAME",
                         "RPAREN", "DOT", "EOF"]

    def test_comments_skipped(self):
        tokens = [t for t in tokenize("% comment\nR(x).# more\n")
                  if t.kind != "EOF"]
        assert tokens[0].text == "R"

    def test_unicode_arrow_and_top(self):
        kinds = [t.kind for t in tokenize("R(1) ← ⊤.")]
        assert "ARROW" in kinds and "TOP" in kinds

    def test_string_literals(self):
        tokens = list(tokenize('R("hello world").'))
        assert tokens[2].kind == "STRING"
        assert tokens[2].text == "hello world"

    def test_string_escape(self):
        tokens = list(tokenize(r'R("a\"b").'))
        assert tokens[2].text == 'a"b'

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            list(tokenize('R("oops).'))

    def test_numbers(self):
        tokens = list(tokenize("R(1, -2.5, 3e-2)."))
        numbers = [t.text for t in tokens if t.kind == "NUMBER"]
        assert numbers == ["1", "-2.5", "3e-2"]

    def test_illegal_character(self):
        with pytest.raises(ParseError):
            list(tokenize("R(x) ?"))

    def test_line_numbers(self):
        tokens = list(tokenize("R(x).\nS(y)."))
        s_token = [t for t in tokens if t.text == "S"][0]
        assert s_token.line == 2


class TestRuleParsing:
    def test_fact_rule(self):
        rule = parse_one("R(1, 'x').")
        assert rule.body == ()
        assert rule.head.to_fact().args == (1, "x")

    def test_true_body(self):
        assert parse_one("R(1) :- true.").body == ()
        assert parse_one("R(1) ← ⊤.").body == ()

    def test_variables_lowercase(self):
        rule = parse_one("H(x) :- B(x, y).")
        assert rule.head.terms == (Var("x"),)
        assert rule.body[0].terms == (Var("x"), Var("y"))

    def test_boolean_keywords(self):
        rule = parse_one("R(x, true) :- B(x, false).")
        assert rule.head.terms[1] == Const(1)
        assert rule.body[0].terms[1] == Const(0)

    def test_random_term(self):
        rule = parse_one("R(Flip<0.5>) :- true.")
        term = rule.head.terms[0]
        assert isinstance(term, RandomTerm)
        assert term.distribution.name == "Flip"
        assert term.params == (Const(0.5),)

    def test_random_term_with_variable_params(self):
        rule = parse_one("H(x, Normal<mu, s2>) :- B(x, mu, s2).")
        term = rule.head.terms[1]
        assert term.params == (Var("mu"), Var("s2"))

    def test_flip_prime(self):
        rule = parse_one("R(Flip'<0.5>) :- true.")
        assert rule.head.terms[0].distribution.name == "FlipPrime"

    def test_unknown_distribution(self):
        with pytest.raises(ParseError):
            parse_one("R(Wat<1>) :- true.")

    def test_random_term_in_body_rejected(self):
        with pytest.raises(ParseError):
            parse_one("H(x) :- B(Flip<0.5>).")

    def test_uppercase_bareword_rejected(self):
        with pytest.raises(ParseError):
            parse_one("H(Xyz) :- B(x).")

    def test_distribution_in_param_rejected(self):
        with pytest.raises(ParseError):
            parse_one("H(Flip<Normal>) :- true.")

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_one("H(x) :- B(x)")

    def test_lowercase_relation_rejected(self):
        with pytest.raises(ParseError):
            parse_one("h(x) :- B(x).")


class TestProgramParsing:
    def test_multiple_rules(self):
        rules = parse_program("""
            A(x) :- B(x).
            C(x) :- A(x).
        """, DEFAULT_REGISTRY)
        assert len(rules) == 2

    def test_duplicate_rules_preserved(self):
        rules = parse_program("""
            R(Flip<0.5>) :- true.
            R(Flip<0.5>) :- true.
        """, DEFAULT_REGISTRY)
        assert len(rules) == 2
        assert rules[0] == rules[1]

    def test_paper_example_3_4_parses(self):
        from repro.workloads.paper import EARTHQUAKE_PROGRAM_TEXT
        rules = parse_program(EARTHQUAKE_PROGRAM_TEXT, DEFAULT_REGISTRY)
        assert len(rules) == 7

    def test_paper_example_3_5_parses(self):
        from repro.workloads.paper import HEIGHT_PROGRAM_TEXT
        rules = parse_program(HEIGHT_PROGRAM_TEXT, DEFAULT_REGISTRY)
        assert len(rules) == 1
        assert rules[0].is_random()

    def test_parse_rule_requires_single(self):
        with pytest.raises(ParseError):
            parse_rule("A(x) :- B(x). C(y) :- D(y).", DEFAULT_REGISTRY)

    def test_program_parse_classmethod(self):
        program = Program.parse("A(x) :- B(x).")
        assert len(program) == 1
        assert program.extensional == frozenset({"B"})

    def test_error_carries_location(self):
        try:
            parse_program("A(x) :- B(x)\nC(y).", DEFAULT_REGISTRY)
        except ParseError as error:
            assert "line" in str(error)
        else:
            pytest.fail("expected ParseError")


class TestRoundTrip:
    def test_repr_of_parsed_program_reparses(self):
        source = """
            Earthquake(c, Flip<0.1>) :- City(c, r).
            Alarm(x) :- Trig(x, 1).
        """
        program = Program.parse(source)
        # repr uses ⟨⟩-less 'Flip<...>' and ← which the parser accepts
        # once '.'-terminated; rebuild a parseable text:
        text = "\n".join(repr(rule).replace("←", ":-") + "."
                         for rule in program.rules)
        reparsed = Program.parse(text)
        assert reparsed.rules == program.rules
