"""Tests for the vectorized batch-chase backend (repro.engine.batched).

Four concerns:

* **registry tripwire** - every registered distribution implements
  ``sample_batch`` consistently with ``sample`` (same support, same
  value kind, matching moments); registering a family without batch
  coverage fails here;
* **scalar bit-identity** - ``backend="scalar"`` reproduces the
  pre-backend draw-for-draw behaviour under both stream schemes (the
  refactor must not move a single draw);
* **law agreement** - batched vs scalar on the paper's Examples 3.4
  (discrete, cascading triggers) and 3.5 (continuous, single layer):
  same output distribution, checked against closed forms and by KS;
* **mechanics** - backend resolution (auto/scalar/batched), per-world
  splitting, fallbacks outside the supported class, budget semantics.
"""

import math
import warnings

import numpy as np
import pytest

import repro
from repro.api.config import ChaseConfig
from repro.core.chase import run_chase_prepared, make_engine
from repro.core.policies import DEFAULT_POLICY, LastPolicy
from repro.distributions.mixture import FiniteMixture
from repro.distributions.continuous import Normal
from repro.distributions.registry import DEFAULT_REGISTRY
from repro.engine.batched import BatchedChase, BatchUnsupported
from repro.errors import ValidationError
from repro.measures.empirical import ks_critical_value, ks_two_sample
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads.paper import (alarm_probability_closed_form,
                                   continuous_feedback_program,
                                   example_3_4_instance,
                                   example_3_4_program,
                                   example_3_5_instance,
                                   example_3_5_program)

#: One valid parameter point per registered family - the tripwire
#: below asserts this table covers the registry exactly, so a new
#: family cannot land without batch-sampler coverage.
BATCH_PARAMS = {
    "Flip": (0.35,),
    "Bernoulli": (0.6,),
    "FlipPrime": (0.8,),
    "Binomial": (6, 0.45),
    "Poisson": (2.5,),
    "Geometric": (0.4,),
    "DiscreteUniform": (-2, 5),
    "Categorical": (0.1, 0.6, 0.3),
    "Normal": (1.0, 4.0),
    "LogNormal": (0.2, 0.5),
    "Exponential": (1.7,),
    "Uniform": (-1.0, 2.0),
    "Gamma": (2.0, 1.5),
    "Beta": (2.5, 1.5),
    "Laplace": (0.5, 1.2),
}

BATCH_N = 2000


class TestSampleBatchRegistry:
    def test_parameter_table_covers_registry_exactly(self):
        assert set(BATCH_PARAMS) == set(DEFAULT_REGISTRY.names())

    @pytest.mark.parametrize("name", sorted(BATCH_PARAMS))
    def test_batch_matches_scalar_support_and_kind(self, name):
        distribution = DEFAULT_REGISTRY[name]
        params = BATCH_PARAMS[name]
        rng = np.random.default_rng(7)
        batch = distribution.sample_batch(params, BATCH_N, rng)
        assert isinstance(batch, np.ndarray)
        assert batch.shape == (BATCH_N,)
        scalar_value = distribution.sample(params,
                                           np.random.default_rng(7))
        if distribution.is_discrete:
            assert isinstance(scalar_value, int)
            assert np.issubdtype(batch.dtype, np.integer)
        else:
            assert isinstance(scalar_value, float)
            assert np.issubdtype(batch.dtype, np.floating)
        # Every drawn value lies in the support of the scalar law.
        for value in batch[:200].tolist():
            assert distribution.density(params, value) > 0.0, \
                f"{name}: {value!r} outside the support"

    @pytest.mark.parametrize("name", sorted(BATCH_PARAMS))
    def test_batch_moments_match_declared(self, name):
        distribution = DEFAULT_REGISTRY[name]
        params = BATCH_PARAMS[name]
        batch = distribution.sample_batch(
            params, BATCH_N, np.random.default_rng(11))
        expected = distribution.mean(params)
        sigma = math.sqrt(distribution.variance(params) / BATCH_N)
        assert abs(float(batch.mean()) - expected) <= \
            6.0 * sigma + 1e-9, name

    @pytest.mark.parametrize("name", sorted(BATCH_PARAMS))
    def test_batch_ks_consistent_with_scalar(self, name):
        assert repro.distributions.verify_batch_consistency(
            DEFAULT_REGISTRY[name], BATCH_PARAMS[name], n=1500,
            seed=5), name

    def test_base_class_fallback_loops_scalar_sampler(self):
        class Odd(Normal):
            name = "OddNormal"
            # No sample_batch override: inherit the base-class loop...
            sample_batch = \
                repro.distributions.base.ParameterizedDistribution \
                .sample_batch

        batch = Odd().sample_batch((0.0, 1.0), 64,
                                   np.random.default_rng(0))
        assert batch.shape == (64,)

    def test_mixture_sample_batch_matches_law(self):
        mixture = FiniteMixture("Bimodal", [
            (0.5, Normal(), (-3.0, 0.25)),
            (0.5, Normal(), (3.0, 0.25)),
        ])
        rng = np.random.default_rng(3)
        batch = mixture.sample_batch((), 4000, rng)
        scalar = [mixture.sample((), rng) for _ in range(4000)]
        statistic = ks_two_sample(batch.tolist(), scalar)
        assert statistic <= 1.3 * ks_critical_value(4000, 4000, 1e-4)


class TestScalarBitIdentity:
    """``backend="scalar"`` must not move a single seeded draw."""

    def test_shared_streams_match_legacy_sampler(self):
        program = example_3_4_program()
        instance = example_3_4_instance()
        facade = repro.compile(program).on(
            instance, seed=23, streams="shared",
            backend="scalar").sample(80).pdb
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = repro.sample_spdb(program, instance, n=80, rng=23)
        assert facade.worlds == legacy.worlds
        assert facade.truncated == legacy.truncated

    def test_spawn_streams_match_prepared_loop(self):
        program = example_3_4_program()
        instance = example_3_4_instance()
        compiled = repro.compile(program)
        facade = compiled.on(instance, seed=9,
                             backend="scalar").sample(40).pdb
        translated = compiled.translated
        visible = compiled.visible_relations
        base = make_engine(translated, instance)
        expected = []
        for rng in ChaseConfig(seed=9).spawn_rngs(40):
            run = run_chase_prepared(translated, base.fork(), instance,
                                     DEFAULT_POLICY, rng)
            expected.append(run.instance.restrict(visible))
        assert facade.worlds == expected


class TestBatchedLawAgreement:
    def test_example_3_4_marginals_match_closed_form(self):
        session = repro.compile(example_3_4_program()).on(
            example_3_4_instance(), seed=5)
        result = session.sample(4000, backend="batched")
        assert result.backend == "batched"
        assert result.diagnostics["n_split"] > 0       # quakes happen
        assert result.diagnostics["n_batched"] > 0     # most stay flat
        for unit, rate in (("house-1", 0.03), ("biz-1", 0.01)):
            expected = alarm_probability_closed_form(rate)
            estimate = result.marginal(Fact("Alarm", (unit,)))
            sigma = math.sqrt(expected * (1 - expected) / 4000)
            assert abs(estimate - expected) <= 6 * sigma + 0.01, unit

    def test_example_3_4_batched_vs_scalar_marginals(self):
        session = repro.compile(example_3_4_program()).on(
            example_3_4_instance())
        batched = session.sample(3000, backend="batched", seed=1)
        scalar = session.sample(3000, backend="scalar", seed=2)
        marginals = scalar.fact_marginals()
        for fact, probability in batched.fact_marginals().items():
            sigma = math.sqrt(
                max(probability * (1 - probability) / 3000, 1e-12))
            assert abs(probability - marginals.get(fact, 0.0)) <= \
                6 * sigma + 0.02, fact

    def test_example_3_5_heights_ks_agreement(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0)

        def heights(backend, seed):
            pdb = session.sample(500, backend=backend, seed=seed).pdb
            return [float(fact.args[1]) for world in pdb.worlds
                    for fact in world.facts_of("PHeight")]

        batched = heights("batched", 3)
        scalar = heights("scalar", 4)
        assert len(batched) == len(scalar) == 500 * 6
        statistic = ks_two_sample(batched, scalar)
        assert statistic <= 1.3 * ks_critical_value(
            len(batched), len(scalar), 1e-4)

    def test_exact_matches_batched_flip(self):
        compiled = repro.compile("R(Flip<0.3>) :- true.")
        exact = compiled.on().exact()
        batched = compiled.on(seed=8).sample(5000, backend="batched")
        fact = Fact("R", (1,))
        assert abs(batched.marginal(fact) - exact.marginal(fact)) \
            <= 0.03


class TestBackendResolution:
    def test_auto_picks_batched_for_eligible_program(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0)
        assert session.sample(20).backend == "batched"

    def test_auto_stays_scalar_under_shared_streams(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0, streams="shared")
        assert session.sample(20).backend == "scalar"

    def test_auto_stays_scalar_with_workers(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0)
        assert session.sample(20, workers=2).backend == "scalar"

    def test_auto_respects_batch_unsafe_policy(self):
        class Skittish(LastPolicy):
            batch_safe = False

        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0, policy=Skittish())
        assert session.sample(20).backend == "scalar"
        # An honest policy stays batched (Theorem 6.1 covers it).
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0, policy=LastPolicy())
        assert session.sample(20).backend == "batched"

    def test_explicit_batched_falls_back_outside_class(self):
        # Non-weakly-acyclic: the batched backend must decline and the
        # fallback must be draw-for-draw the scalar loop.
        compiled = repro.compile(continuous_feedback_program())
        instance = Instance.of(Fact("Seed", (0,)))
        batched = compiled.on(instance, seed=3, max_steps=40).sample(
            6, backend="batched")
        scalar = compiled.on(instance, seed=3, max_steps=40).sample(
            6, backend="scalar")
        assert batched.backend == "scalar"
        assert batched.pdb.worlds == scalar.pdb.worlds
        assert batched.pdb.truncated == scalar.pdb.truncated

    def test_barany_semantics_now_batches(self):
        # The shared-Sample# fan-out is vectorized since the companion
        # batching work; eligibility no longer excludes the Bárány
        # translation (non-weak-acyclicity still declines, below).
        text = "R(Flip<0.5>) :- true.\nS(Flip<0.5>) :- true."
        compiled = repro.compile(text, semantics="barany")
        batched = compiled.on(seed=2).sample(30, backend="batched")
        assert batched.backend == "batched"

    def test_barany_non_weakly_acyclic_falls_back_identically(self):
        compiled = repro.compile(continuous_feedback_program(),
                                 semantics="barany")
        instance = Instance.of(Fact("Seed", (0,)))
        batched = compiled.on(instance, seed=3, max_steps=40).sample(
            6, backend="batched")
        scalar = compiled.on(instance, seed=3, max_steps=40).sample(
            6, backend="scalar")
        assert batched.backend == "scalar"
        assert batched.pdb.worlds == scalar.pdb.worlds

    def test_explicit_batched_never_threads_even_on_decline(self):
        # workers is a scalar-path knob: explicit backend="batched"
        # must ignore it both when the batch runs and when it
        # declines, so parallelism never depends on program structure.
        compiled = repro.compile(continuous_feedback_program())
        instance = Instance.of(Fact("Seed", (0,)))
        threaded = compiled.on(instance, seed=3, max_steps=40).sample(
            6, workers=4, backend="batched")
        plain = compiled.on(instance, seed=3, max_steps=40).sample(
            6, backend="batched")
        assert threaded.pdb.worlds == plain.pdb.worlds

    def test_record_trace_and_parallel_fall_back(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0)
        assert session.sample(
            10, record_trace=True).backend == "scalar"
        assert session.sample(10, parallel=True).backend == "scalar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            ChaseConfig(backend="quantum")

    def test_tight_budget_declines_to_scalar_semantics(self):
        # The batched prefix needs det fixpoint + 2 facts per firing;
        # a tighter budget must fall back to exact scalar truncation.
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0, max_steps=3)
        batched = session.sample(10, backend="batched")
        scalar = session.sample(10, backend="scalar")
        assert batched.backend == "scalar"
        assert batched.pdb.truncated == scalar.pdb.truncated


class TestBatchedMechanics:
    def test_single_layer_program_never_splits(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0)
        result = session.sample(200, backend="batched")
        assert result.diagnostics["n_split"] == 0
        assert result.diagnostics["n_layer_firings"] == 6
        assert result.n_truncated == 0

    def test_no_random_rules_yields_shared_fixpoint(self):
        compiled = repro.compile("""
            Path(x, y) :- Edge(x, y).
            Path(x, z) :- Path(x, y), Edge(y, z).
        """)
        instance = Instance.of(Fact("Edge", (1, 2)),
                               Fact("Edge", (2, 3)))
        result = compiled.on(instance, seed=0).sample(
            25, backend="batched")
        assert result.backend == "batched"
        assert result.diagnostics["n_layer_firings"] == 0
        world = result.pdb.worlds[0]
        assert Fact("Path", (1, 3)) in world.facts
        assert all(w == world for w in result.pdb.worlds)

    def test_keep_aux_exposes_auxiliary_facts(self):
        session = repro.compile("R(Flip<0.5>) :- true.").on(seed=0)
        bare = session.sample(10, backend="batched")
        kept = session.sample(10, backend="batched", keep_aux=True)
        assert all(not any("#" in f.relation for f in w.facts)
                   for w in bare.pdb.worlds)
        assert all(any("#" in f.relation for f in w.facts)
                   for w in kept.pdb.worlds)

    def test_cascading_worlds_stay_grouped_not_split(self):
        # Every Flip=1 triggers a cascade; the multi-round loop keeps
        # the trigger-hit worlds grouped by signature (Hit=1) and runs
        # the Boom stage vectorized instead of splitting ~90% of the
        # batch to the scalar engine like the single-round backend did.
        compiled = repro.compile("""
            Hit(Flip<0.9>) :- true.
            Boom(x) :- Hit(1), Seed(x).
        """)
        instance = Instance.of(Fact("Seed", ("s",)))
        result = compiled.on(instance, seed=0).sample(
            300, backend="batched")
        assert result.diagnostics["n_split"] == 0
        assert result.diagnostics["n_groups"] == 2  # Hit=0 and Hit=1
        hit = Fact("Hit", (1,))
        boom = Fact("Boom", ("s",))
        hits = 0
        for world in result.pdb.worlds:
            assert (hit in world.facts) == (boom in world.facts)
            hits += hit in world.facts
        assert hits > 200  # ~90% of 300

    def test_batched_chase_accepts_barany_translation(self):
        program = repro.Program.parse("R(Flip<0.5>) :- true.")
        chase = BatchedChase(program.translate_barany(),
                             Instance.empty())
        assert len(chase.layer) == 1
        (firing,) = chase.layer
        assert firing.aux_relation.startswith("Sample#")
        assert firing.heads == (("R", (None,), 0),)

    def test_deterministic_given_seed(self):
        session = repro.compile(example_3_4_program()).on(
            example_3_4_instance())
        a = session.sample(100, backend="batched", seed=13).pdb
        b = session.sample(100, backend="batched", seed=13).pdb
        assert a.worlds == b.worlds

    def test_batched_sampler_is_cached_on_the_session(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0)
        session.sample(5, backend="batched")
        first = session._engines["batched"]
        session.sample(5, backend="batched")
        assert session._engines["batched"] is first
        assert isinstance(first, BatchedChase)


CASCADE_CHAIN = """
    A(Flip<0.5>) :- true.
    B(Flip<0.5>) :- A(1).
    C(Flip<0.5>) :- B(1).
    D(1) :- C(1).
"""

CONTINUOUS_CASCADE = """
    Level(Normal<0, 1>) :- true.
    Next(Normal<x, 1>) :- Level(x).
"""

HIT_BOOM = """
    Hit(Flip<0.9>) :- true.
    Boom(x) :- Hit(1), Seed(x).
"""


class TestMultiRoundCascade:
    """The cascading batch loop: signature groups across rounds."""

    def test_example_3_4_runs_two_vectorized_rounds(self):
        session = repro.compile(example_3_4_program()).on(
            example_3_4_instance(), seed=7)
        result = session.sample(2000, backend="batched")
        assert result.backend == "batched"
        assert result.diagnostics["n_rounds"] == 2
        # Trigger-hit worlds (~20%) regroup instead of going scalar;
        # only rare multi-trigger signatures can end up as singletons.
        assert result.diagnostics["n_split"] < 50
        assert result.diagnostics["n_batched"] > 1950

    def test_three_stage_chain_matches_exact_law(self):
        compiled = repro.compile(CASCADE_CHAIN)
        exact = compiled.on().exact()
        result = compiled.on(seed=11).sample(2000, backend="batched")
        assert result.backend == "batched"
        assert result.diagnostics["n_rounds"] == 3
        assert result.diagnostics["n_split"] == 0
        # Terminal groups: A=0 | A=1,B=0 | B=1,C=0 | C=1 (cascaded).
        assert result.diagnostics["n_groups"] == 4
        for fact in (Fact("A", (1,)), Fact("B", (1,)),
                     Fact("C", (1,)), Fact("D", (1,))):
            expected = exact.marginal(fact)
            sigma = math.sqrt(expected * (1 - expected) / 2000)
            assert abs(result.marginal(fact) - expected) <= \
                6 * sigma + 0.01, fact

    def test_unhit_trigger_leaves_one_terminal_group(self):
        # The pinned trigger exists statically but no draw hits it at
        # this seed/size: the partition simply never creates the
        # trigger group, and every world stays in the all-None one.
        compiled = repro.compile("""
            Hit(Flip<0.001>) :- true.
            Boom(x) :- Hit(1), Seed(x).
        """)
        instance = Instance.of(Fact("Seed", ("s",)))
        result = compiled.on(instance, seed=1).sample(
            40, backend="batched")
        assert result.diagnostics["n_split"] == 0
        assert result.diagnostics["n_groups"] == 1
        assert all(Fact("Boom", ("s",)) not in world.facts
                   for world in result.pdb.worlds)

    def test_all_worlds_split_on_continuous_trigger(self):
        # A continuous always-trigger gives every world a unique
        # signature: all-singleton groups, which fall back to the
        # scalar engine under the default batch_min_group=2.
        session = repro.compile(CONTINUOUS_CASCADE).on(seed=2)
        result = session.sample(30, backend="batched")
        assert result.backend == "batched"
        assert result.diagnostics["n_split"] == 30
        assert result.diagnostics["n_batched"] == 0
        for world in result.pdb.worlds:
            assert len(world.facts_of("Next")) == 1

    def test_min_group_one_vectorizes_singleton_groups(self):
        session = repro.compile(CONTINUOUS_CASCADE).on(
            seed=2, batch_min_group=1)
        result = session.sample(12, backend="batched")
        assert result.diagnostics["n_split"] == 0
        assert result.diagnostics["n_rounds"] == 2
        assert result.diagnostics["n_groups"] == 12
        for world in result.pdb.worlds:
            assert len(world.facts_of("Next")) == 1

    def test_semi_join_prunes_unsatisfiable_trigger(self):
        # Hit(1) pins a trigger atom, but the rest of the Boom body
        # joins Blocker - a stable relation with no facts - so the
        # semi-join proves no firing can ever be enabled and the whole
        # batch stays in one group (no round 2, no splits).
        compiled = repro.compile("""
            Hit(Flip<0.5>) :- true.
            Boom(x) :- Hit(1), Blocker(x).
        """)
        result = compiled.on(seed=0).sample(100, backend="batched")
        assert result.diagnostics["n_split"] == 0
        assert result.diagnostics["n_groups"] == 1
        estimate = result.marginal(Fact("Hit", (1,)))
        assert abs(estimate - 0.5) <= 0.15

    def test_semi_join_refines_always_trigger_into_pins(self):
        # Pick's sampled value joins the stable Allowed relation; the
        # semi-join turns "any value triggers" into the finite pin set
        # {2}, so only Pick=2 worlds cascade (vectorized, as a group).
        compiled = repro.compile("""
            Pick(DiscreteUniform<0, 3>) :- true.
            Match(v) :- Pick(v), Allowed(v).
        """)
        instance = Instance.of(Fact("Allowed", (2,)))
        result = compiled.on(instance, seed=3).sample(
            400, backend="batched")
        assert result.diagnostics["n_split"] == 0
        assert result.diagnostics["n_groups"] == 2
        match = Fact("Match", (2,))
        pick = Fact("Pick", (2,))
        for world in result.pdb.worlds:
            assert (pick in world.facts) == (match in world.facts)
        assert abs(result.marginal(pick) - 0.25) <= 0.1

    def test_budget_exhaustion_mid_round_truncates_like_scalar(self):
        # max_steps=2 lets round 1 fire (aux + head per world) but not
        # the Boom cascade: trigger-hit worlds must fall back and
        # truncate, exactly as the scalar loop would on those draws
        # (the backends use different streams, so the comparison is
        # structural: every Hit=1 world truncates, every Hit=0 world
        # is a genuine two-step output).
        compiled = repro.compile(HIT_BOOM)
        instance = Instance.of(Fact("Seed", ("s",)))
        batched = compiled.on(instance, seed=5, max_steps=2).sample(
            60, backend="batched")
        assert batched.backend == "batched"
        assert batched.diagnostics["n_split"] > 0
        assert batched.pdb.truncated > 0
        assert batched.pdb.truncated + len(batched.pdb.worlds) == 60
        for world in batched.pdb.worlds:
            assert Fact("Hit", (0,)) in world.facts
            assert Fact("Boom", ("s",)) not in world.facts

    def test_budget_exhaustion_exact_count_on_sure_trigger(self):
        # With a certain trigger every world cascades, so truncation
        # under max_steps=2 is deterministic and must agree with the
        # scalar backend exactly: all 40 runs truncate either way.
        program = HIT_BOOM.replace("0.9", "1.0")
        compiled = repro.compile(program)
        instance = Instance.of(Fact("Seed", ("s",)))
        batched = compiled.on(instance, seed=5, max_steps=2).sample(
            40, backend="batched")
        scalar = compiled.on(instance, seed=5, max_steps=2).sample(
            40, backend="scalar")
        assert batched.backend == "batched"
        assert batched.pdb.truncated == scalar.pdb.truncated == 40
        assert batched.err_mass() == scalar.err_mass() == 1.0

    def test_exact_budget_bound_keeps_tight_cascade_vectorized(self):
        # max_steps=3 is exactly enough for the full cascade (aux,
        # head, Boom).  The per-round bound counts only facts a world
        # can actually still add (shared facts + unbound columns, with
        # bound trigger facts not double-counted), so the trigger
        # group stays vectorized and every run terminates - same as
        # the scalar backend at the same budget.
        compiled = repro.compile(HIT_BOOM)
        instance = Instance.of(Fact("Seed", ("s",)))
        batched = compiled.on(instance, seed=5, max_steps=3).sample(
            60, backend="batched")
        scalar = compiled.on(instance, seed=5, max_steps=3).sample(
            60, backend="scalar")
        assert batched.diagnostics["n_split"] == 0
        assert batched.pdb.truncated == 0
        assert scalar.pdb.truncated == 0
        hit, boom = Fact("Hit", (1,)), Fact("Boom", ("s",))
        for world in batched.pdb.worlds:
            assert (hit in world.facts) == (boom in world.facts)

    def test_numpy_integer_batch_min_group_accepted(self):
        import numpy as np
        config = ChaseConfig(batch_min_group=np.int64(2))
        assert config.batch_min_group == 2
        with pytest.raises(ValidationError):
            ChaseConfig(batch_min_group=True)

    def test_scalar_fallback_draw_order_bit_identity(self):
        # Split worlds must continue with the world's own spawned
        # stream from exactly the batched prefix state: replaying the
        # layer draws and the per-world continuation by hand must
        # reproduce the ensemble draw-for-draw.
        n = 8
        compiled = repro.compile(CONTINUOUS_CASCADE)
        session = compiled.on(seed=13)
        result = session.sample(n, backend="batched")
        assert result.diagnostics["n_split"] == n

        translated = compiled.translated
        visible = compiled.visible_relations
        chase = BatchedChase(translated, Instance.empty())
        batch_rng = ChaseConfig(seed=13).base_rng()
        draws = chase._draw_layer(chase.layer, n, batch_rng)
        rngs = ChaseConfig(seed=13).spawn_rngs(n)
        expected = []
        for index in range(n):
            state = chase._engine.fork()
            facts = []
            for firing, column in zip(chase.layer, draws):
                sampled = column[index].item()
                facts.append(Fact(firing.aux_relation,
                                  firing.prefix + (sampled,)))
                facts.extend(firing.head_facts(sampled))
            for fact in facts:
                state.add_fact(fact)
            current = chase.closed.add_all(facts)
            steps = len(current) - len(chase.instance)
            run = run_chase_prepared(translated, state, current,
                                     DEFAULT_POLICY, rngs[index],
                                     10_000 - steps)
            assert run.terminated
            expected.append(run.instance.restrict(visible))
        assert result.pdb.worlds == expected

    def test_batch_min_group_validation(self):
        with pytest.raises(ValidationError):
            ChaseConfig(batch_min_group=0)
        with pytest.raises(ValidationError):
            ChaseConfig(batch_min_group=1.5)


H_BARANY = "R(Flip<0.5>) :- true.\nS(Flip<0.5>) :- true."

FANOUT_BARANY = "Out(x, Flip<0.5>) :- Item(x)."

GROWABLE_REST_BARANY = """
    A(Flip<0.5>) :- true.
    Out(x, Flip<0.5>) :- A(x).
"""

STAGED_SLOTS = """
    Stage(DiscreteUniform<0, 3>) :- true.
    Next(k, Flip<0.5>) :- Stage(s), Slot(s, k).
"""


def _staged_instance(n_stages=4, slots=3):
    return Instance(Fact("Slot", (s, f"slot-{s}-{k}"))
                    for s in range(n_stages) for k in range(slots))


class TestBaranyCompanionBatching:
    """Shared-``Sample#`` fan-out vectorized (the §6.2 translation)."""

    def test_shared_draw_fans_out_to_both_companions(self):
        # H under [3]'s semantics: R and S share one Flip draw; the
        # batch must emit both heads from a single column.
        compiled = repro.compile(H_BARANY, semantics="barany")
        result = compiled.on(seed=0).sample(400, backend="batched")
        assert result.backend == "batched"
        assert result.diagnostics["n_split"] == 0
        assert result.diagnostics["n_layer_firings"] == 1
        for world in result.pdb.worlds:
            (r,) = world.facts_of("R")
            (s,) = world.facts_of("S")
            assert r.args == s.args  # perfectly correlated

    def test_h_program_matches_exact_barany_law(self):
        from repro.testing.oracles import (marginals_agree,
                                           worlds_agree_chi_squared)
        compiled = repro.compile(H_BARANY, semantics="barany")
        exact = compiled.on().exact().pdb
        result = compiled.on(seed=4).sample(3000, backend="batched")
        assert result.backend == "batched"
        assert marginals_agree(exact, result.pdb) is None
        assert worlds_agree_chi_squared(exact, result.pdb) is None

    def test_data_bound_fanout_shares_one_value(self):
        # One (Flip, 0.5) key, three Item matches: a single draw must
        # scatter into Out(a,v), Out(b,v), Out(c,v) with equal v.
        compiled = repro.compile(FANOUT_BARANY, semantics="barany")
        instance = Instance.of(Fact("Item", ("a",)),
                               Fact("Item", ("b",)),
                               Fact("Item", ("c",)))
        result = compiled.on(instance, seed=1).sample(
            300, backend="batched")
        assert result.backend == "batched"
        assert result.diagnostics["n_split"] == 0
        assert result.diagnostics["n_layer_firings"] == 1
        for world in result.pdb.worlds:
            values = {fact.args[1] for fact in world.facts_of("Out")}
            assert len(values) == 1
            assert len(world.facts_of("Out")) == 3

    def test_continuous_barany_ks_matches_scalar(self):
        # Example 3.5 under the Bárány translation: heights are keyed
        # by (mu, sigma2), so each country's persons share one draw.
        compiled = repro.compile(example_3_5_program(),
                                 semantics="barany")
        instance = example_3_5_instance()

        def heights(backend, seed):
            pdb = compiled.on(instance, seed=seed).sample(
                400, backend=backend).pdb
            return [float(fact.args[1]) for world in pdb.worlds
                    for fact in world.facts_of("PHeight")]

        batched = heights("batched", 3)
        scalar = heights("scalar", 4)
        assert len(batched) == len(scalar) == 400 * 6
        statistic = ks_two_sample(batched, scalar)
        assert statistic <= 1.3 * ks_critical_value(
            len(batched), len(scalar), 1e-4)
        result = compiled.on(instance, seed=0).sample(
            50, backend="batched")
        assert result.backend == "batched"
        assert result.diagnostics["n_layer_firings"] == 2
        assert result.diagnostics["n_split"] == 0
        for world in result.pdb.worlds:
            by_country: dict = {}
            for fact in world.facts_of("PHeight"):
                country = fact.args[0].split("-")[0]
                by_country.setdefault(country, set()).add(fact.args[1])
            assert all(len(values) == 1
                       for values in by_country.values())

    def test_growable_companion_rest_matches_exact_law(self):
        # Out's companion rest joins A - a growable relation - so
        # world-varying draws cannot stay columnar; every draw binds
        # into the signature and the incremental engine derives the
        # late companion heads.  The law must still match exact
        # enumeration (both semantics share one Sample#Flip key here,
        # so A(v) and Out(v, v) are fully correlated).
        compiled = repro.compile(GROWABLE_REST_BARANY,
                                 semantics="barany")
        from repro.testing.oracles import (marginals_agree,
                                           worlds_agree_chi_squared)
        exact = compiled.on().exact().pdb
        result = compiled.on(seed=6).sample(2000, backend="batched")
        assert result.backend == "batched"
        assert marginals_agree(exact, result.pdb) is None
        assert worlds_agree_chi_squared(exact, result.pdb) is None
        for world in result.pdb.worlds:
            (a,) = world.facts_of("A")
            (out,) = world.facts_of("Out")
            assert out.args == (a.args[0], a.args[0])

    def test_barany_cascade_trigger_groups(self):
        # A pinned trigger downstream of a shared draw: Out(x, 1)
        # worlds cascade to Boom per item, grouped (not split).
        compiled = repro.compile("""
            Out(x, Flip<0.9>) :- Item(x).
            Boom(x) :- Out(x, 1).
        """, semantics="barany")
        instance = Instance.of(Fact("Item", ("a",)),
                               Fact("Item", ("b",)))
        result = compiled.on(instance, seed=2).sample(
            300, backend="batched")
        assert result.backend == "batched"
        assert result.diagnostics["n_split"] == 0
        assert result.diagnostics["n_groups"] == 2
        for world in result.pdb.worlds:
            hit = Fact("Out", ("a", 1)) in world.facts
            assert (Fact("Boom", ("a",)) in world.facts) == hit
            assert (Fact("Boom", ("b",)) in world.facts) == hit

    def test_barany_columnar_marginals_match_materialized(self):
        compiled = repro.compile(FANOUT_BARANY, semantics="barany")
        instance = Instance.of(Fact("Item", ("a",)),
                               Fact("Item", ("b",)))
        result = compiled.on(instance, seed=9).sample(
            500, backend="batched")
        assert result.backend == "batched"
        columnar = result.fact_marginals()
        counts: dict = {}
        for world in result.pdb.worlds:
            for fact in world.facts:
                counts[fact] = counts.get(fact, 0) + 1
        assert columnar == {fact: count / 500
                            for fact, count in counts.items()}
        probe = Fact("Out", ("a", 1))
        assert result.marginal(probe) == columnar[probe]


class TestPooledDraws:
    """Cross-round draw pooling: one sample_batch per key per round."""

    def _run_batch(self, chase, n, seed, pool):
        cfg = ChaseConfig(seed=seed)
        return chase.run_batch(n, cfg.base_rng(),
                               lambda: cfg.spawn_rngs(n),
                               DEFAULT_POLICY, 10_000, 2, pool=pool)

    def test_same_key_groups_share_one_call(self):
        session = repro.compile(STAGED_SLOTS).on(
            _staged_instance(), seed=0)
        result = session.sample(400, backend="batched")
        assert result.backend == "batched"
        diag = result.diagnostics
        assert diag["n_rounds"] == 2
        assert diag["n_split"] == 0
        # Round 1: one DiscreteUniform call.  Round 2: the four stage
        # groups' Flip<0.5> firings (3 each) pool into a single call.
        assert diag["n_draw_calls"] == 2
        assert diag["n_pooled_draws"] > 0

    def test_pool_off_issues_per_group_calls(self):
        compiled = repro.compile(STAGED_SLOTS)
        chase = BatchedChase(compiled.translated, _staged_instance())
        pooled = self._run_batch(chase, 400, 7, pool=True)
        unpooled = self._run_batch(chase, 400, 7, pool=False)
        # 1 round-1 call either way; round 2 is 1 pooled call vs one
        # per surviving stage group.
        assert pooled.diagnostics["n_draw_calls"] == 2
        assert unpooled.diagnostics["n_draw_calls"] > 2
        assert pooled.diagnostics["n_pooled_draws"] \
            > unpooled.diagnostics["n_pooled_draws"]

    def test_pooled_law_matches_exact(self):
        from repro.testing.oracles import (marginals_agree,
                                           worlds_agree_chi_squared)
        session = repro.compile(STAGED_SLOTS).on(
            _staged_instance(), seed=5)
        exact = session.exact().pdb
        result = session.sample(2000, backend="batched")
        assert result.diagnostics["n_pooled_draws"] > 0
        assert marginals_agree(exact, result.pdb) is None
        assert worlds_agree_chi_squared(exact, result.pdb) is None

    def test_single_group_rounds_identical_pooled_or_not(self):
        # Mandated draw identity: with no cross-group pooling possible
        # (every wave has one task), the two schedules are the same
        # schedule - outcomes must match bit-for-bit, scalar fallback
        # runs included (split worlds draw from their own streams).
        compiled = repro.compile(CONTINUOUS_CASCADE)
        chase = BatchedChase(compiled.translated, Instance.empty())
        first = self._run_batch(chase, 10, 13, pool=True)
        second = self._run_batch(chase, 10, 13, pool=False)
        # Single-group waves throughout - the structural condition
        # under which the two schedules provably coincide.
        assert first.diagnostics["n_group_rounds"] == \
            first.diagnostics["n_rounds"]
        assert first.diagnostics["n_draw_calls"] == \
            second.diagnostics["n_draw_calls"]
        runs_a = {world: run.instance for world, run in
                  first.scalar_runs}
        runs_b = {world: run.instance for world, run in
                  second.scalar_runs}
        assert runs_a == runs_b and len(runs_a) == 10


class TestExactBudgetBoundary:
    """Fallback runs ending precisely at the remaining step budget."""

    def test_fallback_terminating_exactly_at_budget(self):
        # The cascade needs exactly 4 steps per world (Level aux +
        # head, Next aux + head).  Every world splits in round 1; the
        # fallback's remaining budget is exactly 2 - just enough - so
        # every run must terminate, same as the scalar backend.
        session = repro.compile(CONTINUOUS_CASCADE).on(
            seed=3, max_steps=4)
        batched = session.sample(12, backend="batched")
        scalar = session.sample(12, backend="scalar")
        assert batched.backend == "batched"
        assert batched.diagnostics["n_split"] == 12
        assert batched.pdb.truncated == 0 == scalar.pdb.truncated
        assert len(batched.pdb.worlds) == 12

    def test_fallback_one_step_short_truncates_like_scalar(self):
        session = repro.compile(CONTINUOUS_CASCADE).on(
            seed=3, max_steps=3)
        batched = session.sample(12, backend="batched")
        scalar = session.sample(12, backend="scalar")
        assert batched.backend == "batched"
        assert batched.pdb.truncated == 12 == scalar.pdb.truncated

    def test_fallback_steps_accounting_is_exact(self):
        # The reconstructed prefix counts facts-added; a fallback run
        # finishing at the budget must report steps == max_steps and
        # terminated == True (the off-by-one this guards: treating
        # "budget exhausted" and "finished on the last step" alike).
        compiled = repro.compile(CONTINUOUS_CASCADE)
        chase = BatchedChase(compiled.translated, Instance.empty())
        cfg = ChaseConfig(seed=13)
        outcome = chase.run_batch(4, cfg.base_rng(),
                                  lambda: cfg.spawn_rngs(4),
                                  DEFAULT_POLICY, 4, 2)
        assert outcome is not None
        assert len(outcome.scalar_runs) == 4
        for _world, run in outcome.scalar_runs:
            assert run.terminated
            assert run.steps == 4


class TestColumnarReads:
    """Marginal/aggregate queries straight off the sample columns."""

    def test_marginal_reads_do_not_materialize(self):
        session = repro.compile(example_3_4_program()).on(
            example_3_4_instance(), seed=9)
        result = session.sample(500, backend="batched")
        result.marginal(Fact("Alarm", ("house-1",)))
        result.fact_marginals()
        assert result.pdb.materialized is False
        result.pdb.worlds  # noqa: B018 - forcing materialization
        assert result.pdb.materialized is True

    def test_fact_marginals_match_materialized_counts(self):
        session = repro.compile(example_3_4_program()).on(
            example_3_4_instance(), seed=21)
        result = session.sample(600, backend="batched")
        columnar = result.fact_marginals()
        counts: dict = {}
        for world in result.pdb.worlds:
            for fact in world.facts:
                counts[fact] = counts.get(fact, 0) + 1
        materialized = {fact: count / 600
                        for fact, count in counts.items()}
        assert columnar == materialized

    def test_single_fact_marginal_matches_materialized(self):
        session = repro.compile(example_3_4_program()).on(
            example_3_4_instance(), seed=2)
        result = session.sample(400, backend="batched")
        probes = [Fact("Alarm", ("house-1",)),
                  Fact("Earthquake", ("Napa", 1)),
                  Fact("Trig", ("house-1", 1)),
                  Fact("Trig", ("house-1", 0)),
                  Fact("City", ("Napa", 0.03)),
                  Fact("Nowhere", (0,))]
        columnar = [result.marginal(fact) for fact in probes]
        worlds = result.pdb.worlds
        for fact, estimate in zip(probes, columnar):
            manual = sum(1 for world in worlds if fact in world) \
                / len(worlds)
            assert estimate == manual, fact

    def test_collision_of_two_rules_into_one_head(self):
        # Both rules emit Trig(u, v): per-world dedup must keep the
        # columnar counts identical to counting materialized sets.
        compiled = repro.compile("""
            Trig(x, Flip<0.6>) :- Unit(x).
            Trig(x, Flip<0.9>) :- Unit(x).
        """)
        instance = Instance.of(Fact("Unit", ("u",)))
        result = compiled.on(instance, seed=4).sample(
            500, backend="batched")
        columnar = result.fact_marginals()
        counts: dict = {}
        for world in result.pdb.worlds:
            for fact in world.facts:
                counts[fact] = counts.get(fact, 0) + 1
        assert columnar == {fact: count / 500
                            for fact, count in counts.items()}
        probe = Fact("Trig", ("u", 1))
        assert result.marginal(probe) == columnar[probe]

    def test_keep_aux_columnar_marginals(self):
        session = repro.compile("R(Flip<0.5>) :- true.").on(
            seed=0, keep_aux=True)
        result = session.sample(200, backend="batched")
        columnar = result.fact_marginals()
        aux_facts = [fact for fact in columnar
                     if "#" in fact.relation]
        assert aux_facts, "keep_aux marginals must include auxiliaries"
        counts: dict = {}
        for world in result.pdb.worlds:
            for fact in world.facts:
                counts[fact] = counts.get(fact, 0) + 1
        assert columnar == {fact: count / 200
                            for fact, count in counts.items()}

    def test_truncated_runs_excluded_from_columnar_reads(self):
        compiled = repro.compile(HIT_BOOM)
        instance = Instance.of(Fact("Seed", ("s",)))
        result = compiled.on(instance, seed=5, max_steps=2).sample(
            60, backend="batched")
        assert result.pdb.truncated > 0
        assert result.pdb.total_mass() == \
            (60 - result.pdb.truncated) / 60
        # Truncated (Hit=1) worlds carry no mass: marginal of Hit(1)
        # counts only the terminated ensemble.
        assert result.marginal(Fact("Hit", (1,))) == 0.0
