"""Tests for the vectorized batch-chase backend (repro.engine.batched).

Four concerns:

* **registry tripwire** - every registered distribution implements
  ``sample_batch`` consistently with ``sample`` (same support, same
  value kind, matching moments); registering a family without batch
  coverage fails here;
* **scalar bit-identity** - ``backend="scalar"`` reproduces the
  pre-backend draw-for-draw behaviour under both stream schemes (the
  refactor must not move a single draw);
* **law agreement** - batched vs scalar on the paper's Examples 3.4
  (discrete, cascading triggers) and 3.5 (continuous, single layer):
  same output distribution, checked against closed forms and by KS;
* **mechanics** - backend resolution (auto/scalar/batched), per-world
  splitting, fallbacks outside the supported class, budget semantics.
"""

import math
import warnings

import numpy as np
import pytest

import repro
from repro.api.config import ChaseConfig
from repro.core.chase import run_chase_prepared, make_engine
from repro.core.policies import DEFAULT_POLICY, LastPolicy
from repro.distributions.mixture import FiniteMixture
from repro.distributions.continuous import Normal
from repro.distributions.registry import DEFAULT_REGISTRY
from repro.engine.batched import BatchedChase, BatchUnsupported
from repro.errors import ValidationError
from repro.measures.empirical import ks_critical_value, ks_two_sample
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads.paper import (alarm_probability_closed_form,
                                   continuous_feedback_program,
                                   example_3_4_instance,
                                   example_3_4_program,
                                   example_3_5_instance,
                                   example_3_5_program)

#: One valid parameter point per registered family - the tripwire
#: below asserts this table covers the registry exactly, so a new
#: family cannot land without batch-sampler coverage.
BATCH_PARAMS = {
    "Flip": (0.35,),
    "Bernoulli": (0.6,),
    "FlipPrime": (0.8,),
    "Binomial": (6, 0.45),
    "Poisson": (2.5,),
    "Geometric": (0.4,),
    "DiscreteUniform": (-2, 5),
    "Categorical": (0.1, 0.6, 0.3),
    "Normal": (1.0, 4.0),
    "LogNormal": (0.2, 0.5),
    "Exponential": (1.7,),
    "Uniform": (-1.0, 2.0),
    "Gamma": (2.0, 1.5),
    "Beta": (2.5, 1.5),
    "Laplace": (0.5, 1.2),
}

BATCH_N = 2000


class TestSampleBatchRegistry:
    def test_parameter_table_covers_registry_exactly(self):
        assert set(BATCH_PARAMS) == set(DEFAULT_REGISTRY.names())

    @pytest.mark.parametrize("name", sorted(BATCH_PARAMS))
    def test_batch_matches_scalar_support_and_kind(self, name):
        distribution = DEFAULT_REGISTRY[name]
        params = BATCH_PARAMS[name]
        rng = np.random.default_rng(7)
        batch = distribution.sample_batch(params, BATCH_N, rng)
        assert isinstance(batch, np.ndarray)
        assert batch.shape == (BATCH_N,)
        scalar_value = distribution.sample(params,
                                           np.random.default_rng(7))
        if distribution.is_discrete:
            assert isinstance(scalar_value, int)
            assert np.issubdtype(batch.dtype, np.integer)
        else:
            assert isinstance(scalar_value, float)
            assert np.issubdtype(batch.dtype, np.floating)
        # Every drawn value lies in the support of the scalar law.
        for value in batch[:200].tolist():
            assert distribution.density(params, value) > 0.0, \
                f"{name}: {value!r} outside the support"

    @pytest.mark.parametrize("name", sorted(BATCH_PARAMS))
    def test_batch_moments_match_declared(self, name):
        distribution = DEFAULT_REGISTRY[name]
        params = BATCH_PARAMS[name]
        batch = distribution.sample_batch(
            params, BATCH_N, np.random.default_rng(11))
        expected = distribution.mean(params)
        sigma = math.sqrt(distribution.variance(params) / BATCH_N)
        assert abs(float(batch.mean()) - expected) <= \
            6.0 * sigma + 1e-9, name

    @pytest.mark.parametrize("name", sorted(BATCH_PARAMS))
    def test_batch_ks_consistent_with_scalar(self, name):
        assert repro.distributions.verify_batch_consistency(
            DEFAULT_REGISTRY[name], BATCH_PARAMS[name], n=1500,
            seed=5), name

    def test_base_class_fallback_loops_scalar_sampler(self):
        class Odd(Normal):
            name = "OddNormal"
            # No sample_batch override: inherit the base-class loop...
            sample_batch = \
                repro.distributions.base.ParameterizedDistribution \
                .sample_batch

        batch = Odd().sample_batch((0.0, 1.0), 64,
                                   np.random.default_rng(0))
        assert batch.shape == (64,)

    def test_mixture_sample_batch_matches_law(self):
        mixture = FiniteMixture("Bimodal", [
            (0.5, Normal(), (-3.0, 0.25)),
            (0.5, Normal(), (3.0, 0.25)),
        ])
        rng = np.random.default_rng(3)
        batch = mixture.sample_batch((), 4000, rng)
        scalar = [mixture.sample((), rng) for _ in range(4000)]
        statistic = ks_two_sample(batch.tolist(), scalar)
        assert statistic <= 1.3 * ks_critical_value(4000, 4000, 1e-4)


class TestScalarBitIdentity:
    """``backend="scalar"`` must not move a single seeded draw."""

    def test_shared_streams_match_legacy_sampler(self):
        program = example_3_4_program()
        instance = example_3_4_instance()
        facade = repro.compile(program).on(
            instance, seed=23, streams="shared",
            backend="scalar").sample(80).pdb
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = repro.sample_spdb(program, instance, n=80, rng=23)
        assert facade.worlds == legacy.worlds
        assert facade.truncated == legacy.truncated

    def test_spawn_streams_match_prepared_loop(self):
        program = example_3_4_program()
        instance = example_3_4_instance()
        compiled = repro.compile(program)
        facade = compiled.on(instance, seed=9,
                             backend="scalar").sample(40).pdb
        translated = compiled.translated
        visible = compiled.visible_relations
        base = make_engine(translated, instance)
        expected = []
        for rng in ChaseConfig(seed=9).spawn_rngs(40):
            run = run_chase_prepared(translated, base.fork(), instance,
                                     DEFAULT_POLICY, rng)
            expected.append(run.instance.restrict(visible))
        assert facade.worlds == expected


class TestBatchedLawAgreement:
    def test_example_3_4_marginals_match_closed_form(self):
        session = repro.compile(example_3_4_program()).on(
            example_3_4_instance(), seed=5)
        result = session.sample(4000, backend="batched")
        assert result.backend == "batched"
        assert result.diagnostics["n_split"] > 0       # quakes happen
        assert result.diagnostics["n_batched"] > 0     # most stay flat
        for unit, rate in (("house-1", 0.03), ("biz-1", 0.01)):
            expected = alarm_probability_closed_form(rate)
            estimate = result.marginal(Fact("Alarm", (unit,)))
            sigma = math.sqrt(expected * (1 - expected) / 4000)
            assert abs(estimate - expected) <= 6 * sigma + 0.01, unit

    def test_example_3_4_batched_vs_scalar_marginals(self):
        session = repro.compile(example_3_4_program()).on(
            example_3_4_instance())
        batched = session.sample(3000, backend="batched", seed=1)
        scalar = session.sample(3000, backend="scalar", seed=2)
        marginals = scalar.fact_marginals()
        for fact, probability in batched.fact_marginals().items():
            sigma = math.sqrt(
                max(probability * (1 - probability) / 3000, 1e-12))
            assert abs(probability - marginals.get(fact, 0.0)) <= \
                6 * sigma + 0.02, fact

    def test_example_3_5_heights_ks_agreement(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0)

        def heights(backend, seed):
            pdb = session.sample(500, backend=backend, seed=seed).pdb
            return [float(fact.args[1]) for world in pdb.worlds
                    for fact in world.facts_of("PHeight")]

        batched = heights("batched", 3)
        scalar = heights("scalar", 4)
        assert len(batched) == len(scalar) == 500 * 6
        statistic = ks_two_sample(batched, scalar)
        assert statistic <= 1.3 * ks_critical_value(
            len(batched), len(scalar), 1e-4)

    def test_exact_matches_batched_flip(self):
        compiled = repro.compile("R(Flip<0.3>) :- true.")
        exact = compiled.on().exact()
        batched = compiled.on(seed=8).sample(5000, backend="batched")
        fact = Fact("R", (1,))
        assert abs(batched.marginal(fact) - exact.marginal(fact)) \
            <= 0.03


class TestBackendResolution:
    def test_auto_picks_batched_for_eligible_program(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0)
        assert session.sample(20).backend == "batched"

    def test_auto_stays_scalar_under_shared_streams(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0, streams="shared")
        assert session.sample(20).backend == "scalar"

    def test_auto_stays_scalar_with_workers(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0)
        assert session.sample(20, workers=2).backend == "scalar"

    def test_auto_respects_batch_unsafe_policy(self):
        class Skittish(LastPolicy):
            batch_safe = False

        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0, policy=Skittish())
        assert session.sample(20).backend == "scalar"
        # An honest policy stays batched (Theorem 6.1 covers it).
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0, policy=LastPolicy())
        assert session.sample(20).backend == "batched"

    def test_explicit_batched_falls_back_outside_class(self):
        # Non-weakly-acyclic: the batched backend must decline and the
        # fallback must be draw-for-draw the scalar loop.
        compiled = repro.compile(continuous_feedback_program())
        instance = Instance.of(Fact("Seed", (0,)))
        batched = compiled.on(instance, seed=3, max_steps=40).sample(
            6, backend="batched")
        scalar = compiled.on(instance, seed=3, max_steps=40).sample(
            6, backend="scalar")
        assert batched.backend == "scalar"
        assert batched.pdb.worlds == scalar.pdb.worlds
        assert batched.pdb.truncated == scalar.pdb.truncated

    def test_barany_semantics_falls_back_identically(self):
        text = "R(Flip<0.5>) :- true.\nS(Flip<0.5>) :- true."
        compiled = repro.compile(text, semantics="barany")
        batched = compiled.on(seed=2).sample(30, backend="batched")
        scalar = compiled.on(seed=2).sample(30, backend="scalar")
        assert batched.backend == "scalar"
        assert batched.pdb.worlds == scalar.pdb.worlds

    def test_explicit_batched_never_threads_even_on_decline(self):
        # workers is a scalar-path knob: explicit backend="batched"
        # must ignore it both when the batch runs and when it
        # declines, so parallelism never depends on program structure.
        compiled = repro.compile(continuous_feedback_program())
        instance = Instance.of(Fact("Seed", (0,)))
        threaded = compiled.on(instance, seed=3, max_steps=40).sample(
            6, workers=4, backend="batched")
        plain = compiled.on(instance, seed=3, max_steps=40).sample(
            6, backend="batched")
        assert threaded.pdb.worlds == plain.pdb.worlds

    def test_record_trace_and_parallel_fall_back(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0)
        assert session.sample(
            10, record_trace=True).backend == "scalar"
        assert session.sample(10, parallel=True).backend == "scalar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            ChaseConfig(backend="quantum")

    def test_tight_budget_declines_to_scalar_semantics(self):
        # The batched prefix needs det fixpoint + 2 facts per firing;
        # a tighter budget must fall back to exact scalar truncation.
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0, max_steps=3)
        batched = session.sample(10, backend="batched")
        scalar = session.sample(10, backend="scalar")
        assert batched.backend == "scalar"
        assert batched.pdb.truncated == scalar.pdb.truncated


class TestBatchedMechanics:
    def test_single_layer_program_never_splits(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0)
        result = session.sample(200, backend="batched")
        assert result.diagnostics["n_split"] == 0
        assert result.diagnostics["n_layer_firings"] == 6
        assert result.n_truncated == 0

    def test_no_random_rules_yields_shared_fixpoint(self):
        compiled = repro.compile("""
            Path(x, y) :- Edge(x, y).
            Path(x, z) :- Path(x, y), Edge(y, z).
        """)
        instance = Instance.of(Fact("Edge", (1, 2)),
                               Fact("Edge", (2, 3)))
        result = compiled.on(instance, seed=0).sample(
            25, backend="batched")
        assert result.backend == "batched"
        assert result.diagnostics["n_layer_firings"] == 0
        world = result.pdb.worlds[0]
        assert Fact("Path", (1, 3)) in world.facts
        assert all(w == world for w in result.pdb.worlds)

    def test_keep_aux_exposes_auxiliary_facts(self):
        session = repro.compile("R(Flip<0.5>) :- true.").on(seed=0)
        bare = session.sample(10, backend="batched")
        kept = session.sample(10, backend="batched", keep_aux=True)
        assert all(not any("#" in f.relation for f in w.facts)
                   for w in bare.pdb.worlds)
        assert all(any("#" in f.relation for f in w.facts)
                   for w in kept.pdb.worlds)

    def test_split_worlds_reach_terminal_instances(self):
        # Force heavy splitting: every Flip=1 triggers a cascade.
        compiled = repro.compile("""
            Hit(Flip<0.9>) :- true.
            Boom(x) :- Hit(1), Seed(x).
        """)
        instance = Instance.of(Fact("Seed", ("s",)))
        result = compiled.on(instance, seed=0).sample(
            300, backend="batched")
        assert result.diagnostics["n_split"] > 200
        hit = Fact("Hit", (1,))
        boom = Fact("Boom", ("s",))
        for world in result.pdb.worlds:
            assert (hit in world.facts) == (boom in world.facts)

    def test_batched_chase_rejects_barany_translation(self):
        program = repro.Program.parse("R(Flip<0.5>) :- true.")
        with pytest.raises(BatchUnsupported):
            BatchedChase(program.translate_barany(), Instance.empty())

    def test_deterministic_given_seed(self):
        session = repro.compile(example_3_4_program()).on(
            example_3_4_instance())
        a = session.sample(100, backend="batched", seed=13).pdb
        b = session.sample(100, backend="batched", seed=13).pdb
        assert a.worlds == b.worlds

    def test_batched_sampler_is_cached_on_the_session(self):
        session = repro.compile(example_3_5_program()).on(
            example_3_5_instance(), seed=0)
        session.sample(5, backend="batched")
        first = session._engines["batched"]
        session.sample(5, backend="batched")
        assert session._engines["batched"] is first
        assert isinstance(first, BatchedChase)
