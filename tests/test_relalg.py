"""Tests for the relational algebra (repro.query.relalg)."""

import pytest

from repro.errors import SchemaError
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.query.relalg import Extend, Relation, scan


@pytest.fixture
def db():
    return Instance.from_dict({
        "City": [("napa", 0.03), ("davis", 0.01)],
        "Unit": [("h1", "napa"), ("h2", "napa"), ("b1", "davis")],
    })


class TestRelation:
    def test_row_arity_checked(self):
        with pytest.raises(SchemaError):
            Relation(["a", "b"], [(1,)])

    def test_set_semantics(self):
        r = Relation(["a"], [(1,), (1,), (2,)])
        assert len(r) == 2

    def test_column_index(self):
        r = Relation(["a", "b"], [(1, 2)])
        assert r.column_index("b") == 1
        with pytest.raises(SchemaError):
            r.column_index("missing")

    def test_to_instance_roundtrip(self, db):
        r = scan("City", "name", "rate").evaluate(db)
        back = r.to_instance("City")
        assert back == db.restrict(["City"])

    def test_canonical_hashable(self):
        r = Relation(["a"], [(2,), (1,)])
        s = Relation(["a"], [(1,), (2,)])
        assert r.canonical() == s.canonical()
        assert hash(r) == hash(s)


class TestOperators:
    def test_scan_default_columns(self, db):
        r = scan("City").evaluate(db)
        assert r.columns == ("c0", "c1")

    def test_scan_missing_relation_empty(self, db):
        assert len(scan("Nope").evaluate(db)) == 0

    def test_select(self, db):
        q = scan("City", "name", "rate").select(
            lambda row: row["rate"] > 0.02)
        r = q.evaluate(db)
        assert r.rows == {("napa", 0.03)}

    def test_where_equalities(self, db):
        q = scan("Unit", "uid", "city").where(city="napa")
        assert len(q.evaluate(db)) == 2

    def test_project_dedupes(self, db):
        q = scan("Unit", "uid", "city").project("city")
        assert q.evaluate(db).rows == {("napa",), ("davis",)}

    def test_project_reorders(self, db):
        q = scan("City", "name", "rate").project("rate", "name")
        assert ("rate", "name") == q.evaluate(db).columns

    def test_rename(self, db):
        q = scan("City", "name", "rate").rename(name="city")
        assert q.evaluate(db).columns == ("city", "rate")

    def test_natural_join(self, db):
        q = scan("Unit", "uid", "city").join(
            scan("City", "city", "rate"))
        r = q.evaluate(db)
        assert ("h1", "napa", 0.03) in r.rows
        assert len(r) == 3

    def test_join_no_shared_columns_is_product(self, db):
        q = scan("City", "name", "rate").join(scan("Unit", "uid", "c"))
        assert len(q.evaluate(db)) == 6

    def test_product_requires_disjoint(self, db):
        with pytest.raises(SchemaError):
            scan("City", "a", "b").product(
                scan("Unit", "a", "c")).evaluate(db)

    def test_union_difference_intersect(self, db):
        napa = scan("Unit", "uid", "city").where(city="napa")
        davis = scan("Unit", "uid", "city").where(city="davis")
        all_units = napa.union(davis)
        assert len(all_units.evaluate(db)) == 3
        assert len(napa.difference(davis).evaluate(db)) == 2
        assert len(napa.intersect(davis).evaluate(db)) == 0

    def test_set_ops_require_same_columns(self, db):
        with pytest.raises(SchemaError):
            scan("City", "a", "b").union(
                scan("Unit", "x", "y")).evaluate(db)

    def test_extend(self, db):
        q = Extend(scan("City", "name", "rate"), "double",
                   lambda row: row["rate"] * 2)
        r = q.evaluate(db)
        assert ("napa", 0.03, 0.06) in r.rows

    def test_extend_duplicate_column_rejected(self, db):
        with pytest.raises(SchemaError):
            Extend(scan("City", "name", "rate"), "rate",
                   lambda row: 0).evaluate(db)


class TestAlgebraicIdentities:
    def test_selection_commutes_with_union(self, db):
        base = scan("Unit", "uid", "city")
        predicate = lambda row: row["city"] == "napa"
        left = base.union(base).select(predicate).evaluate(db)
        right = base.select(predicate).union(
            base.select(predicate)).evaluate(db)
        assert left == right

    def test_projection_after_join_on_keys(self, db):
        joined = scan("Unit", "uid", "city").join(
            scan("City", "city", "rate"))
        assert joined.project("uid").evaluate(db).rows == \
            scan("Unit", "uid", "city").project("uid").evaluate(db).rows

    def test_double_rename_identity(self, db):
        q = scan("City", "name", "rate").rename(name="n") \
            .rename(n="name")
        assert q.evaluate(db) == scan("City", "name", "rate").evaluate(db)
