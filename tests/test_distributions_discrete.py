"""Tests for discrete parameterized distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.discrete import (Bernoulli, Binomial, Categorical,
                                          DiscreteUniform, Flip, Geometric,
                                          Poisson)
from repro.errors import DistributionError
from repro.measures.empirical import frequencies_close


class TestFlip:
    def test_density(self):
        flip = Flip()
        assert flip.density((0.3,), 1) == pytest.approx(0.3)
        assert flip.density((0.3,), 0) == pytest.approx(0.7)
        assert flip.density((0.3,), 2) == 0.0
        assert flip.density((0.3,), "x") == 0.0

    def test_bool_value_normalized(self):
        assert Flip().density((0.3,), True) == pytest.approx(0.3)

    def test_parameter_space(self):
        flip = Flip()
        flip.validate_params((0.0,))
        flip.validate_params((1.0,))
        with pytest.raises(DistributionError):
            flip.validate_params((1.5,))
        with pytest.raises(DistributionError):
            flip.validate_params(("x",))
        with pytest.raises(DistributionError):
            flip.validate_params((0.2, 0.3))

    def test_support(self):
        assert list(Flip().support((0.5,))) == [0, 1]
        assert Flip().support_is_finite((0.5,))

    def test_truncated_support_exact(self):
        pairs, residue = Flip().truncated_support((0.25,))
        assert dict(pairs) == {0: 0.75, 1: 0.25}
        assert residue == pytest.approx(0.0)

    def test_sampling_frequencies(self):
        rng = np.random.default_rng(0)
        samples = Flip().sample_many((0.3,), rng, 5000)
        assert frequencies_close(samples, {1: 0.3, 0: 0.7})

    def test_moments(self):
        assert Flip().mean((0.3,)) == pytest.approx(0.3)
        assert Flip().variance((0.3,)) == pytest.approx(0.21)

    def test_measure(self):
        m = Flip().measure((0.5,))
        assert m.is_probability()

    def test_bernoulli_alias_same_law(self):
        assert Bernoulli().density((0.4,), 1) == \
            Flip().density((0.4,), 1)
        assert Bernoulli().name != Flip().name


class TestBinomial:
    def test_density_sums_to_one(self):
        binomial = Binomial()
        total = sum(binomial.density((5, 0.3), k) for k in range(6))
        assert total == pytest.approx(1.0)

    def test_density_values(self):
        assert Binomial().density((2, 0.5), 1) == pytest.approx(0.5)
        assert Binomial().density((2, 0.5), 3) == 0.0
        assert Binomial().density((2, 0.5), -1) == 0.0
        assert Binomial().density((2, 0.5), 1.5) == 0.0

    def test_parameter_validation(self):
        with pytest.raises(DistributionError):
            Binomial().validate_params((-1, 0.5))
        with pytest.raises(DistributionError):
            Binomial().validate_params((3, 1.5))
        with pytest.raises(DistributionError):
            Binomial().validate_params((2.5, 0.5))

    def test_moments(self):
        assert Binomial().mean((10, 0.3)) == pytest.approx(3.0)
        assert Binomial().variance((10, 0.3)) == pytest.approx(2.1)

    def test_sampling_mean(self):
        rng = np.random.default_rng(1)
        samples = Binomial().sample_many((20, 0.4), rng, 3000)
        assert abs(np.mean(samples) - 8.0) < 0.3


class TestPoisson:
    def test_density_formula(self):
        poisson = Poisson()
        lam = 2.5
        for k in range(6):
            expected = lam ** k * math.exp(-lam) / math.factorial(k)
            assert poisson.density((lam,), k) == pytest.approx(expected)

    def test_infinite_support_flag(self):
        assert not Poisson().support_is_finite((1.0,))

    def test_truncated_support_covers_tolerance(self):
        pairs, residue = Poisson().truncated_support((3.0,), 1e-10)
        assert residue <= 1e-10
        assert sum(mass for _, mass in pairs) >= 1.0 - 1e-9

    def test_parameter_validation(self):
        with pytest.raises(DistributionError):
            Poisson().validate_params((0.0,))
        with pytest.raises(DistributionError):
            Poisson().validate_params((-1.0,))

    def test_sampling_mean(self):
        rng = np.random.default_rng(2)
        samples = Poisson().sample_many((4.0,), rng, 3000)
        assert abs(np.mean(samples) - 4.0) < 0.2

    def test_large_rate_stable(self):
        # log-space density computation avoids overflow.
        value = Poisson().density((500.0,), 500)
        assert 0.0 < value < 1.0


class TestGeometric:
    def test_density(self):
        geometric = Geometric()
        assert geometric.density((0.5,), 0) == pytest.approx(0.5)
        assert geometric.density((0.5,), 2) == pytest.approx(0.125)
        assert geometric.density((0.5,), -1) == 0.0

    def test_support_starts_at_zero(self):
        rng = np.random.default_rng(3)
        samples = Geometric().sample_many((0.9,), rng, 500)
        assert min(samples) == 0

    def test_sampling_matches_pmf(self):
        rng = np.random.default_rng(4)
        samples = Geometric().sample_many((0.4,), rng, 5000)
        expected = {k: 0.6 ** k * 0.4 for k in range(4)}
        assert frequencies_close(samples, expected)

    def test_mean(self):
        assert Geometric().mean((0.25,)) == pytest.approx(3.0)


class TestDiscreteUniform:
    def test_density(self):
        du = DiscreteUniform()
        assert du.density((1, 4), 2) == pytest.approx(0.25)
        assert du.density((1, 4), 5) == 0.0

    def test_support(self):
        assert list(DiscreteUniform().support((2, 5))) == [2, 3, 4, 5]

    def test_invalid_range(self):
        with pytest.raises(DistributionError):
            DiscreteUniform().validate_params((5, 2))

    def test_sampling_range(self):
        rng = np.random.default_rng(5)
        samples = DiscreteUniform().sample_many((3, 7), rng, 500)
        assert min(samples) >= 3 and max(samples) <= 7

    def test_mean_variance(self):
        assert DiscreteUniform().mean((1, 5)) == pytest.approx(3.0)
        assert DiscreteUniform().variance((1, 5)) == pytest.approx(2.0)


class TestCategorical:
    def test_variadic_parameters(self):
        categorical = Categorical()
        assert categorical.density((0.2, 0.3, 0.5), 2) == \
            pytest.approx(0.5)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(DistributionError):
            Categorical().validate_params((0.5, 0.6))
        with pytest.raises(DistributionError):
            Categorical().validate_params((-0.5, 1.5))

    def test_sampling(self):
        rng = np.random.default_rng(6)
        samples = Categorical().sample_many((0.1, 0.9), rng, 3000)
        assert frequencies_close(samples, {0: 0.1, 1: 0.9})

    def test_moments(self):
        assert Categorical().mean((0.5, 0.5)) == pytest.approx(0.5)


class TestPmfProperties:
    @given(st.floats(0.01, 0.99))
    def test_flip_pmf_normalized(self, p):
        flip = Flip()
        assert flip.density((p,), 0) + flip.density((p,), 1) == \
            pytest.approx(1.0)

    @given(st.integers(0, 12), st.floats(0.05, 0.95))
    @settings(max_examples=30)
    def test_binomial_pmf_normalized(self, n, p):
        binomial = Binomial()
        total = sum(binomial.density((n, p), k) for k in range(n + 1))
        assert total == pytest.approx(1.0)

    @given(st.floats(0.1, 8.0))
    @settings(max_examples=20)
    def test_poisson_truncation_accounting(self, lam):
        pairs, residue = Poisson().truncated_support((lam,), 1e-9)
        assert sum(m for _, m in pairs) + residue == \
            pytest.approx(1.0, abs=1e-6)

    @given(st.floats(0.2, 1.0))
    @settings(max_examples=20)
    def test_geometric_truncation_accounting(self, p):
        pairs, residue = Geometric().truncated_support((p,), 1e-9)
        assert sum(m for _, m in pairs) + residue == \
            pytest.approx(1.0, abs=1e-6)
