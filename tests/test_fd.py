"""Tests for induced functional dependencies (Section 3.5)."""

import pytest

from repro.core.chase import run_chase
from repro.core.fd import (FunctionalDependency, check_all_fds,
                           fd_violation_report, induced_fds)
from repro.core.program import Program
from repro.core.translate import translate, translate_barany
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


class TestFunctionalDependency:
    def test_holds_trivially_on_empty(self):
        fd = FunctionalDependency("R", (0,), 1)
        assert fd.holds_in(Instance.empty())

    def test_detects_violation(self):
        fd = FunctionalDependency("R", (0,), 1)
        good = Instance.of(Fact("R", (1, "a")), Fact("R", (2, "b")))
        bad = good.add(Fact("R", (1, "c")))
        assert fd.holds_in(good)
        assert not fd.holds_in(bad)
        violations = fd.violations(bad)
        assert violations == [((1,), {"a", "c"})]

    def test_multi_column_determinant(self):
        fd = FunctionalDependency("R", (0, 1), 2)
        D = Instance.of(Fact("R", (1, 1, "a")), Fact("R", (1, 2, "b")))
        assert fd.holds_in(D)
        assert not fd.holds_in(D.add(Fact("R", (1, 1, "z"))))

    def test_repr(self):
        fd = FunctionalDependency("R", (0, 1), 2)
        assert "R" in repr(fd) and "→" in repr(fd)


class TestInducedFds:
    def test_one_fd_per_aux_relation(self, g0):
        translated = translate(g0)
        fds = induced_fds(translated)
        assert len(fds) == 2
        for fd in fds:
            assert fd.relation.startswith("Result#")
            assert fd.dependent == max(fd.determinants) + 1

    def test_barany_fds(self, g0):
        translated = translate_barany(g0)
        fds = induced_fds(translated)
        assert len(fds) == 1  # shared auxiliary

    def test_lemma_3_10_along_chases(self):
        program = Program.parse("""
            Quake(c, Flip<r>) :- City(c, r).
            Hit(x, Flip<0.5>) :- Unit(x, c), Quake(c, 1).
        """)
        translated = translate(program)
        D = Instance.of(Fact("City", ("n", 0.5)),
                        Fact("City", ("d", 0.25)),
                        Fact("Unit", ("u1", "n")),
                        Fact("Unit", ("u2", "d")))
        for seed in range(15):
            run = run_chase(translated, D, rng=seed,
                            record_trace=True)
            assert run.terminated
            # FD holds at EVERY prefix of the chase, not just the end.
            current = D
            assert check_all_fds(translated, current)
            for step in run.trace:
                current = current.add(step.fact)
                assert check_all_fds(translated, current)

    def test_violation_report_empty_for_chase_outputs(self, g0):
        translated = translate(g0)
        runs = [run_chase(translated, rng=seed).instance
                for seed in range(5)]
        assert fd_violation_report(translated, runs) == []

    def test_violation_report_format(self):
        translated = translate(Program.parse("R(Flip<0.5>) :- true."))
        aux = translated.existential_rules()[0].aux_relation
        bad = Instance.of(Fact(aux, (0.5, 0)), Fact(aux, (0.5, 1)))
        report = fd_violation_report(translated, [bad])
        assert len(report) == 1
        assert "violated" in report[0]
