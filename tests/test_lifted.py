"""Tests for query lifting to PDBs (repro.query.lifted, Fact 2.6)."""

import pytest

from repro.core.semantics import exact_spdb, sample_spdb
from repro.core.program import Program
from repro.measures.discrete import DiscreteMeasure
from repro.pdb.database import DiscretePDB, MonteCarloPDB
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.query.aggregates import Aggregate, agg_count
from repro.query.lifted import (aggregate_distribution,
                                answer_probabilities,
                                boolean_probability, expected_aggregate,
                                query_distribution,
                                statistic_distribution)
from repro.query.relalg import scan


@pytest.fixture
def flip_pdb(g0):
    return exact_spdb(g0)


def r_count_query():
    return Aggregate(scan("R", "v"), (), {"n": agg_count()})


class TestExactLifting:
    def test_aggregate_distribution(self, flip_pdb):
        counts = aggregate_distribution(flip_pdb, r_count_query())
        assert counts.mass(1) == pytest.approx(0.5)
        assert counts.mass(2) == pytest.approx(0.5)

    def test_expected_aggregate(self, flip_pdb):
        assert expected_aggregate(flip_pdb, r_count_query()) == \
            pytest.approx(1.5)

    def test_boolean_probability(self, flip_pdb):
        ones = scan("R", "v").where(v=1)
        assert boolean_probability(flip_pdb, ones) == pytest.approx(0.75)

    def test_query_distribution_full_answers(self, flip_pdb):
        answers = query_distribution(flip_pdb, scan("R", "v"))
        assert answers.total_mass() == pytest.approx(1.0)
        assert len(answers) == 3  # {0}, {1}, {0,1} as answer relations

    def test_statistic_distribution(self, flip_pdb):
        sizes = statistic_distribution(flip_pdb, len)
        assert sizes.mass(1) == pytest.approx(0.5)

    def test_answer_probabilities(self, flip_pdb):
        marginals = answer_probabilities(flip_pdb, scan("R", "v"), "v")
        assert marginals[0] == pytest.approx(0.75)
        assert marginals[1] == pytest.approx(0.75)

    def test_subprobability_passes_through(self):
        world = Instance.of(Fact("R", (1,)))
        spdb = DiscretePDB(DiscreteMeasure({world: 0.5}), err=0.5)
        counts = aggregate_distribution(spdb, r_count_query())
        assert counts.total_mass() == pytest.approx(0.5)


class TestMonteCarloLifting:
    def test_estimates_match_exact(self, g0, flip_pdb):
        sampled = sample_spdb(g0, n=4000, rng=0)
        exact_counts = aggregate_distribution(flip_pdb, r_count_query())
        sampled_counts = aggregate_distribution(sampled,
                                                r_count_query())
        assert exact_counts.tv_distance(sampled_counts) < 0.03

    def test_boolean_probability_estimate(self, g0):
        sampled = sample_spdb(g0, n=3000, rng=1)
        ones = scan("R", "v").where(v=1)
        assert abs(boolean_probability(sampled, ones) - 0.75) < 0.04

    def test_truncated_mass_excluded(self):
        pdb = MonteCarloPDB([Instance.of(Fact("R", (1,)))] * 5,
                            truncated=5)
        counts = aggregate_distribution(pdb, r_count_query())
        assert counts.total_mass() == pytest.approx(0.5)

    def test_continuous_aggregates(self, heights_program,
                                   heights_instance):
        from repro.query.aggregates import agg_avg
        sampled = sample_spdb(heights_program, heights_instance,
                              n=400, rng=2)
        mean_height = Aggregate(
            scan("PHeight", "person", "cm"), (), {"m": agg_avg("cm")})
        expectation = expected_aggregate(sampled, mean_height)
        # Default instance: NL(183.8) and PE(165.2), two persons each.
        assert abs(expectation - (183.8 + 165.2) / 2) < 2.0


class TestRemark49:
    """Projecting out auxiliary relations is a measurable query."""

    def test_keep_aux_then_project_equals_direct(self, g0):
        with_aux = exact_spdb(g0, keep_aux=True)
        direct = exact_spdb(g0)
        assert with_aux.project(["R"]).allclose(direct)
