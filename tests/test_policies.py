"""Tests for chase policies (measurable selections, Lemma 3.6)."""

import pytest

from repro.core.applicability import Firing
from repro.core.policies import (DEFAULT_POLICY, FirstPolicy, LastPolicy,
                                 PriorityPolicy, RandomTiePolicy,
                                 RoundRobinPolicy, standard_policies)
from repro.errors import ChaseError
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


@pytest.fixture
def firings():
    return [Firing(0, "R", (1,), False),
            Firing(1, "S", (2,), True),
            Firing(2, "T", (3,), True)]


@pytest.fixture
def instance():
    return Instance.of(Fact("B", (1,)), Fact("B", (2,)))


class TestBasicPolicies:
    def test_first(self, instance, firings):
        assert FirstPolicy().select(instance, firings) == firings[0]

    def test_last(self, instance, firings):
        assert LastPolicy().select(instance, firings) == firings[-1]

    def test_default_is_first(self, instance, firings):
        assert DEFAULT_POLICY.select(instance, firings) == firings[0]

    def test_empty_applicable_rejected(self, instance):
        with pytest.raises(ChaseError):
            FirstPolicy().select(instance, [])


class TestPriorityPolicy:
    def test_priority_order(self, instance, firings):
        policy = PriorityPolicy([2, 0, 1])
        assert policy.select(instance, firings).rule_index == 2

    def test_unlisted_rules_last(self, instance, firings):
        policy = PriorityPolicy([1])
        assert policy.select(instance, firings).rule_index == 1
        policy = PriorityPolicy([99])
        # nothing listed applies: canonical order among the rest
        assert policy.select(instance, firings) == firings[0]


class TestRandomTiePolicy:
    def test_deterministic_per_instance(self, instance, firings):
        policy = RandomTiePolicy(7)
        assert policy.select(instance, firings) == \
            policy.select(instance, firings)

    def test_function_of_instance_content(self, firings):
        # Equal instances (set semantics) must give equal choices.
        a = Instance.of(Fact("B", (1,)), Fact("B", (2,)))
        b = Instance.of(Fact("B", (2,)), Fact("B", (1,)))
        policy = RandomTiePolicy(3)
        assert policy.select(a, firings) == policy.select(b, firings)

    def test_salts_vary_choices(self, firings):
        # Across many instances, two salts should differ somewhere.
        instances = [Instance.of(Fact("B", (i,))) for i in range(30)]
        a = RandomTiePolicy(1)
        b = RandomTiePolicy(2)
        assert any(a.select(D, firings) != b.select(D, firings)
                   for D in instances)

    def test_spreads_over_choices(self, firings):
        policy = RandomTiePolicy(0)
        chosen = {policy.select(Instance.of(Fact("B", (i,))), firings)
                  for i in range(50)}
        assert len(chosen) == len(firings)


class TestRoundRobinPolicy:
    def test_rotation_by_size(self, firings):
        policy = RoundRobinPolicy()
        d0 = Instance.empty()
        d1 = Instance.of(Fact("B", (1,)))
        d2 = Instance.of(Fact("B", (1,)), Fact("B", (2,)))
        assert policy.select(d0, firings) == firings[0]
        assert policy.select(d1, firings) == firings[1]
        assert policy.select(d2, firings) == firings[2]


class TestStandardPolicies:
    def test_battery_composition(self):
        battery = standard_policies()
        assert len(battery) >= 5
        names = {p.name for p in battery}
        assert "first" in names and "last" in names

    def test_all_select_from_applicable(self, instance, firings):
        for policy in standard_policies():
            assert policy.select(instance, firings) in firings
