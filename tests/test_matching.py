"""Tests for conjunctive matching (repro.engine.matching)."""

import pytest

from repro.core.atoms import atom
from repro.core.terms import Var
from repro.engine.matching import (IndexedSource, ScanSource,
                                   atom_pattern, body_holds, match_atoms,
                                   match_atoms_with_pinned)
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


@pytest.fixture
def graph():
    return Instance.of(Fact("E", (1, 2)), Fact("E", (2, 3)),
                       Fact("E", (3, 4)), Fact("E", (1, 3)))


def solutions(atoms, source, binding=None):
    return list(match_atoms(atoms, source, binding))


class TestScanSource:
    def test_candidates_filtering(self, graph):
        source = ScanSource(graph)
        hits = list(source.candidates("E", (1, None)))
        assert {f.args for f in hits} == {(1, 2), (1, 3)}

    def test_relation_size(self, graph):
        assert ScanSource(graph).relation_size("E") == 4
        assert ScanSource(graph).relation_size("missing") == 0


class TestIndexedSource:
    def test_candidates_match_scan(self, graph):
        indexed = IndexedSource(graph.facts)
        scan = ScanSource(graph)
        for pattern in [(None, None), (1, None), (None, 3), (2, 3)]:
            a = {f.args for f in indexed.candidates("E", pattern)}
            b = {f.args for f in scan.candidates("E", pattern)}
            assert a == b

    def test_incremental_add_updates_indexes(self, graph):
        indexed = IndexedSource(graph.facts)
        # Materialize an index, then insert a fact hitting it.
        assert {f.args for f in indexed.candidates("E", (9, None))} \
            == set()
        assert indexed.add_fact(Fact("E", (9, 1)))
        assert {f.args for f in indexed.candidates("E", (9, None))} \
            == {(9, 1)}

    def test_duplicate_add_returns_false(self, graph):
        indexed = IndexedSource(graph.facts)
        assert not indexed.add_fact(Fact("E", (1, 2)))

    def test_contains_and_len(self, graph):
        indexed = IndexedSource(graph.facts)
        assert Fact("E", (1, 2)) in indexed
        assert len(indexed) == 4


class TestMatchAtoms:
    def test_single_atom(self, graph):
        bindings = solutions([atom("E", "x", "y")], ScanSource(graph))
        assert len(bindings) == 4

    def test_join(self, graph):
        body = [atom("E", "x", "y"), atom("E", "y", "z")]
        found = {(b[Var("x")], b[Var("y")], b[Var("z")])
                 for b in solutions(body, IndexedSource(graph.facts))}
        assert found == {(1, 2, 3), (2, 3, 4), (1, 3, 4)}

    def test_repeated_variable(self):
        D = Instance.of(Fact("R", (1, 1)), Fact("R", (1, 2)))
        bindings = solutions([atom("R", "x", "x")], ScanSource(D))
        assert len(bindings) == 1 and bindings[0][Var("x")] == 1

    def test_constants_in_atoms(self, graph):
        bindings = solutions([atom("E", 1, "y")], ScanSource(graph))
        assert {b[Var("y")] for b in bindings} == {2, 3}

    def test_empty_body_yields_empty_binding(self, graph):
        assert solutions([], ScanSource(graph)) == [{}]

    def test_initial_binding_restricts(self, graph):
        bindings = solutions([atom("E", "x", "y")], ScanSource(graph),
                             {Var("x"): 2})
        assert len(bindings) == 1 and bindings[0][Var("y")] == 3

    def test_no_solutions(self, graph):
        assert solutions([atom("E", 4, "y")], ScanSource(graph)) == []

    def test_cross_product_body(self):
        D = Instance.of(Fact("A", (1,)), Fact("A", (2,)),
                        Fact("B", ("x",)))
        body = [atom("A", "a"), atom("B", "b")]
        assert len(solutions(body, ScanSource(D))) == 2

    def test_indexed_and_scan_agree(self, graph):
        body = [atom("E", "x", "y"), atom("E", "y", "z"),
                atom("E", "x", "z")]
        a = solutions(body, ScanSource(graph))
        b = solutions(body, IndexedSource(graph.facts))
        canon = lambda bs: sorted(
            tuple(sorted((v.name, val) for v, val in b.items()))
            for b in bs)
        assert canon(a) == canon(b)


class TestPinnedMatching:
    def test_pinned_uses_fact(self, graph):
        body = [atom("E", "x", "y"), atom("E", "y", "z")]
        source = IndexedSource(graph.facts)
        pinned = list(match_atoms_with_pinned(
            body, source, 0, Fact("E", (2, 3))))
        assert all(b[Var("x")] == 2 and b[Var("y")] == 3
                   for b in pinned)
        assert len(pinned) == 1

    def test_pinned_mismatch_yields_nothing(self, graph):
        body = [atom("E", 1, "y")]
        source = IndexedSource(graph.facts)
        assert list(match_atoms_with_pinned(
            body, source, 0, Fact("E", (2, 3)))) == []

    def test_pinned_covers_all_new_solutions(self, graph):
        body = [atom("E", "x", "y"), atom("E", "y", "z")]
        source = IndexedSource(graph.facts)
        before = {tuple(sorted((v.name, val) for v, val in b.items()))
                  for b in match_atoms(body, source)}
        new_fact = Fact("E", (4, 5))
        source.add_fact(new_fact)
        after = {tuple(sorted((v.name, val) for v, val in b.items()))
                 for b in match_atoms(body, source)}
        via_pinned = set()
        for position in range(len(body)):
            for b in match_atoms_with_pinned(body, source, position,
                                             new_fact):
                via_pinned.add(tuple(sorted(
                    (v.name, val) for v, val in b.items())))
        assert after - before <= via_pinned
        assert via_pinned <= after


class TestHelpers:
    def test_atom_pattern(self):
        pattern = atom_pattern(atom("E", "x", 3),
                               {Var("x"): 1})
        assert pattern == (1, 3)
        pattern = atom_pattern(atom("E", "x", "y"), {})
        assert pattern == (None, None)

    def test_body_holds(self, graph):
        source = ScanSource(graph)
        assert body_holds([atom("E", "x", "y")], source, {Var("x"): 1})
        assert not body_holds([atom("E", "x", "y")], source,
                              {Var("x"): 4})


class TestIndexedSourceIncrementalMaintenance:
    """Regression tests: indexes built lazily, then kept current.

    The chase builds an IndexedSource once and adds facts as it fires
    rules; a fact added *after* an index was materialized must be
    visible to every subsequent ``candidates()`` call, for existing
    and for newly-requested signatures alike.
    """

    def test_index_is_built_lazily(self, graph):
        source = IndexedSource(graph.facts)
        assert source._indexes == {}
        list(source.candidates("E", (1, None)))
        assert ("E", (0,)) in source._indexes
        # A wildcard lookup never materializes an index.
        list(source.candidates("E", (None, None)))
        assert set(source._indexes) == {("E", (0,))}

    def test_fact_added_mid_chase_visible_to_existing_index(self,
                                                            graph):
        source = IndexedSource(graph.facts)
        before = {f.args for f in source.candidates("E", (1, None))}
        assert before == {(1, 2), (1, 3)}
        assert source.add_fact(Fact("E", (1, 9)))
        after = {f.args for f in source.candidates("E", (1, None))}
        assert after == before | {(1, 9)}

    def test_fact_added_before_first_lookup_is_indexed(self, graph):
        source = IndexedSource(graph.facts)
        source.add_fact(Fact("E", (5, 6)))
        # Index materializes only now - must include the late fact.
        hits = {f.args for f in source.candidates("E", (5, None))}
        assert hits == {(5, 6)}

    def test_new_signature_after_adds_sees_everything(self, graph):
        source = IndexedSource(graph.facts)
        list(source.candidates("E", (1, None)))  # signature (0,)
        source.add_fact(Fact("E", (7, 3)))
        # A different signature built after the add.
        hits = {f.args for f in source.candidates("E", (None, 3))}
        assert hits == {(2, 3), (1, 3), (7, 3)}

    def test_fully_bound_signature_maintained(self, graph):
        source = IndexedSource(graph.facts)
        assert list(source.candidates("E", (9, 9))) == []
        source.add_fact(Fact("E", (9, 9)))
        hits = [f.args for f in source.candidates("E", (9, 9))]
        assert hits == [(9, 9)]

    def test_new_relation_added_mid_chase(self, graph):
        source = IndexedSource(graph.facts)
        source.add_fact(Fact("F", ("a",)))
        assert source.relation_size("F") == 1
        assert [f.args for f in source.candidates("F", ("a",))] == \
            [("a",)]
        assert list(source.candidates("F", ("b",))) == []

    def test_duplicate_add_is_rejected_and_not_double_indexed(self,
                                                              graph):
        source = IndexedSource(graph.facts)
        list(source.candidates("E", (1, None)))
        assert not source.add_fact(Fact("E", (1, 2)))
        hits = [f.args for f in source.candidates("E", (1, None))]
        assert sorted(hits) == [(1, 2), (1, 3)]
        assert len(source) == 4

    def test_membership_and_len_track_adds(self, graph):
        source = IndexedSource(graph.facts)
        new_fact = Fact("E", (8, 8))
        assert new_fact not in source
        source.add_fact(new_fact)
        assert new_fact in source
        assert len(source) == 5

    def test_match_atoms_sees_incrementally_added_joins(self, graph):
        source = IndexedSource(graph.facts)
        body = [atom("E", "x", "y"), atom("E", "y", "z")]
        baseline = len(solutions(body, source))
        # Warm both join-order indexes, then extend the graph.
        source.add_fact(Fact("E", (4, 5)))
        grown = len(solutions(body, source))
        assert grown > baseline
