"""Tests for the canonical value order (repro.ordering)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ordering import canonical_repr, tuple_sort_key, value_sort_key


class TestValueSortKey:
    def test_none_sorts_first(self):
        values = [3, "x", None, 1.5]
        assert sorted(values, key=value_sort_key)[0] is None

    def test_numbers_before_strings(self):
        assert sorted(["a", 2], key=value_sort_key) == [2, "a"]

    def test_numeric_order(self):
        assert sorted([3, 1.5, 2], key=value_sort_key) == [1.5, 2, 3]

    def test_bool_compares_as_number(self):
        # True == 1, so the order must place them adjacently/equal.
        assert value_sort_key(True) == value_sort_key(1)
        assert value_sort_key(False) == value_sort_key(0)

    def test_string_order(self):
        assert sorted(["b", "a", "c"],
                      key=value_sort_key) == ["a", "b", "c"]

    def test_tuples_after_strings(self):
        values = [("x",), "z"]
        assert sorted(values, key=value_sort_key) == ["z", ("x",)]

    def test_nested_tuples(self):
        values = [(2, 1), (1, 9), (1, 2)]
        assert sorted(values, key=value_sort_key) == \
            [(1, 2), (1, 9), (2, 1)]

    def test_mixed_total_order_is_stable(self):
        values = [None, "b", 0, 3.5, "a", (1,), True]
        once = sorted(values, key=value_sort_key)
        twice = sorted(once, key=value_sort_key)
        assert once == twice


class TestTupleSortKey:
    def test_lexicographic(self):
        rows = [(2, "a"), (1, "z"), (1, "a")]
        assert sorted(rows, key=tuple_sort_key) == \
            [(1, "a"), (1, "z"), (2, "a")]

    def test_heterogeneous_rows(self):
        rows = [("a", 1), (1, "a")]
        ordered = sorted(rows, key=tuple_sort_key)
        assert ordered == [(1, "a"), ("a", 1)]


class TestCanonicalRepr:
    def test_equal_numbers_equal_repr(self):
        assert canonical_repr(1) == canonical_repr(1.0)
        assert canonical_repr(True) == canonical_repr(1)

    def test_string_vs_number_distinct(self):
        assert canonical_repr("1") != canonical_repr(1)

    def test_tuple_repr_contains_parts(self):
        text = canonical_repr((1, "x"))
        assert "n:1.0" in text and "s:x" in text

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_repr_roundtrip(self, x):
        assert canonical_repr(x) == canonical_repr(float(repr(x)))


class TestTotalOrderProperties:
    scalar = st.one_of(
        st.none(), st.booleans(), st.integers(-100, 100),
        st.floats(-1e6, 1e6, allow_nan=False), st.text(max_size=5))

    @given(st.lists(scalar, max_size=10))
    def test_sorting_never_raises(self, values):
        sorted(values, key=value_sort_key)

    @given(scalar, scalar)
    def test_keys_comparable_both_ways(self, a, b):
        ka, kb = value_sort_key(a), value_sort_key(b)
        assert (ka <= kb) or (kb <= ka)

    @given(scalar, scalar, scalar)
    def test_transitivity(self, a, b, c):
        ka, kb, kc = (value_sort_key(v) for v in (a, b, c))
        if ka <= kb and kb <= kc:
            assert ka <= kc
