"""Tests for instances (repro.pdb.instances)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.pdb.schema import Schema


def facts_strategy(max_size=8):
    return st.lists(
        st.tuples(st.sampled_from("RST"), st.integers(0, 4)),
        max_size=max_size).map(
            lambda spec: [Fact(rel, (arg,)) for rel, arg in spec])


class TestConstruction:
    def test_empty(self):
        assert len(Instance.empty()) == 0

    def test_of(self):
        D = Instance.of(Fact("R", (1,)), Fact("S", (2,)))
        assert len(D) == 2

    def test_duplicates_collapse(self):
        D = Instance([Fact("R", (1,)), Fact("R", (1,))])
        assert len(D) == 1

    def test_from_dict(self):
        D = Instance.from_dict({"R": [(1,), (2,)], "S": [(1, 2)]})
        assert len(D) == 3
        assert Fact("S", (1, 2)) in D


class TestAccess:
    def test_contains(self, small_instance):
        assert Fact("R", (1, "a")) in small_instance
        assert Fact("R", (9, "z")) not in small_instance

    def test_relations_sorted(self, small_instance):
        assert small_instance.relations() == ("R", "S")

    def test_facts_of(self, small_instance):
        assert len(small_instance.facts_of("R")) == 2
        assert small_instance.facts_of("missing") == frozenset()

    def test_tuples_of(self, small_instance):
        assert small_instance.tuples_of("S") == frozenset({(1,)})

    def test_count(self, small_instance):
        assert small_instance.count(lambda f: f.relation == "R") == 2


class TestAlgebra:
    def test_add_returns_new_instance(self):
        D = Instance.empty()
        D2 = D.add(Fact("R", (1,)))
        assert len(D) == 0 and len(D2) == 1

    def test_add_existing_returns_self(self):
        D = Instance.of(Fact("R", (1,)))
        assert D.add(Fact("R", (1,))) is D

    def test_add_all(self):
        D = Instance.empty().add_all([Fact("R", (i,)) for i in range(3)])
        assert len(D) == 3

    def test_union_difference_intersection(self):
        a = Instance.of(Fact("R", (1,)), Fact("R", (2,)))
        b = Instance.of(Fact("R", (2,)), Fact("R", (3,)))
        assert len(a.union(b)) == 3
        assert a.difference(b) == Instance.of(Fact("R", (1,)))
        assert a.intersection(b) == Instance.of(Fact("R", (2,)))

    def test_restrict(self, small_instance):
        restricted = small_instance.restrict(["R"])
        assert restricted.relations() == ("R",)
        assert len(restricted) == 2

    def test_without_relations(self, small_instance):
        assert small_instance.without_relations(["R"]).relations() == \
            ("S",)

    def test_issubset(self):
        a = Instance.of(Fact("R", (1,)))
        b = a.add(Fact("R", (2,)))
        assert a.issubset(b) and not b.issubset(a)


class TestIdentity:
    def test_equality_is_set_equality(self):
        a = Instance([Fact("R", (1,)), Fact("S", (2,))])
        b = Instance([Fact("S", (2,)), Fact("R", (1,))])
        assert a == b and hash(a) == hash(b)

    def test_canonical_text_stable(self):
        a = Instance([Fact("R", (1,)), Fact("S", (2,))])
        b = Instance([Fact("S", (2,)), Fact("R", (1,))])
        assert a.canonical_text() == b.canonical_text()

    def test_immutability(self, small_instance):
        with pytest.raises(AttributeError):
            small_instance._facts = frozenset()

    def test_usable_as_dict_key(self):
        d = {Instance.of(Fact("R", (1,))): 0.5}
        assert d[Instance.of(Fact("R", (1,)))] == 0.5


class TestValidation:
    def test_validate_against_schema(self, small_instance):
        schema = Schema.from_arities({"R": 2, "S": 1})
        small_instance.validate(schema)  # should not raise

    def test_validate_rejects_wrong_arity(self):
        from repro.errors import SchemaError
        schema = Schema.from_arities({"R": 1})
        with pytest.raises(SchemaError):
            Instance.of(Fact("R", (1, 2))).validate(schema)


class TestInstanceProperties:
    @given(facts_strategy(), facts_strategy())
    def test_union_commutes(self, fa, fb):
        a, b = Instance(fa), Instance(fb)
        assert a.union(b) == b.union(a)

    @given(facts_strategy())
    def test_add_all_idempotent(self, facts):
        D = Instance(facts)
        assert D.add_all(facts) == D

    @given(facts_strategy())
    def test_restrict_partition(self, facts):
        D = Instance(facts)
        kept = D.restrict(["R"])
        dropped = D.without_relations(["R"])
        assert kept.union(dropped) == D
        assert len(kept) + len(dropped) == len(D)

    @given(facts_strategy())
    def test_canonical_text_injective_on_support(self, facts):
        D = Instance(facts)
        E = Instance(facts[:-1]) if facts else Instance.empty()
        if D != E:
            assert D.canonical_text() != E.canonical_text()
