"""Unit tests for the differential oracles (repro.testing.oracles)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.program import Program
from repro.pdb.database import DiscretePDB, MonteCarloPDB
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.testing import (ChaseOrderOracle, ExactVsSampleOracle,
                           FacadeVsLegacyOracle, FixpointOracle,
                           FuzzCase, InducedFDOracle,
                           TerminationOracle, default_oracles,
                           evaluate, generate_case, oracles_by_name)
from repro.testing.oracles import (compare_discrete_pdbs,
                                   compare_monte_carlo_pdbs,
                                   ks_agreement, marginals_agree,
                                   sampled_values,
                                   worlds_agree_chi_squared)


def _case(text: str, kind: str = "sampling",
          facts: tuple = ()) -> FuzzCase:
    return FuzzCase(0, kind, Program.parse(text), Instance(facts))


class TestOracleBattery:
    def test_names_are_unique_and_stable(self):
        names = [oracle.name for oracle in default_oracles()]
        assert len(names) == len(set(names))
        assert set(oracles_by_name()) == {
            "fixpoint", "chase-order", "exact-vs-sample",
            "facade-legacy", "batched-scalar", "barany-agreement",
            "sharded-single", "induced-fds", "termination",
            "streaming-batch", "columnar-query", "conditioning",
            "static-dynamic"}


class TestSkipPreconditions:
    def test_fixpoint_skips_pure_random_programs(self):
        outcome = FixpointOracle().check(
            _case("R0(Flip<0.5>) :- true."))
        assert outcome.status == "skip"

    def test_chase_order_skips_non_weakly_acyclic(self):
        outcome = ChaseOrderOracle().check(
            _case("Q(0.5) :- true.\nQ(Normal<x, 1.0>) :- Q(x).",
                  kind="cyclic"))
        assert outcome.status == "skip"

    def test_exact_vs_sample_skips_continuous(self):
        outcome = ExactVsSampleOracle().check(
            _case("R0(Normal<0.0, 1.0>) :- true."))
        assert outcome.status == "skip"

    def test_induced_fds_skips_deterministic(self):
        outcome = InducedFDOracle().check(
            _case("D0(x) :- E0(x).", kind="deterministic"))
        assert outcome.status == "skip"

    def test_termination_skips_may_terminate_cycles(self):
        outcome = TerminationOracle().check(
            _case("Q(2) :- true.\nQ(DiscreteUniform<0, x>) :- Q(x).",
                  kind="cyclic"))
        assert outcome.status == "skip"


class TestOkOnKnownWorkloads:
    @pytest.mark.parametrize("kind", ["deterministic", "exact",
                                      "sampling", "cyclic"])
    def test_every_oracle_accepts_generated_cases(self, kind):
        case = generate_case(17, kind=kind)
        for oracle in default_oracles():
            outcome = evaluate(oracle, case)
            assert outcome.status in ("ok", "skip"), (
                f"{oracle.name} on {kind}: {outcome.detail}")

    def test_g0_example_passes_chase_order(self):
        case = _case("R(Flip<0.5>) :- true.\nR(Flip<0.5>) :- true.",
                     kind="exact")
        assert ChaseOrderOracle().check(case).status == "ok"
        assert ExactVsSampleOracle().check(case).status == "ok"
        assert FacadeVsLegacyOracle().check(case).status == "ok"


class TestComparisonHelpers:
    def test_compare_discrete_pdbs_detects_disagreement(self):
        world = Instance.of(Fact("R", (1,)))
        first = DiscretePDB.from_worlds([(world, 0.5),
                                         (Instance.empty(), 0.5)])
        second = DiscretePDB.from_worlds([(world, 0.7),
                                          (Instance.empty(), 0.3)])
        assert compare_discrete_pdbs(first, first) is None
        assert "disagree" in compare_discrete_pdbs(first, second)

    def test_compare_monte_carlo_pdbs(self):
        worlds = [Instance.of(Fact("R", (i,))) for i in range(3)]
        first = MonteCarloPDB(worlds, truncated=1)
        assert compare_monte_carlo_pdbs(first, first) is None
        other = MonteCarloPDB(list(reversed(worlds)), truncated=1)
        assert "worlds differ" in compare_monte_carlo_pdbs(first,
                                                           other)
        short = MonteCarloPDB(worlds, truncated=2)
        assert "truncation" in compare_monte_carlo_pdbs(first, short)

    def test_marginals_agree_flags_gross_bias(self):
        world = Instance.of(Fact("R", (1,)))
        exact = DiscretePDB.from_worlds([(world, 0.9),
                                         (Instance.empty(), 0.1)])
        # 1000 samples that almost never contain the fact.
        sampled = MonteCarloPDB([Instance.empty()] * 990
                                + [world] * 10)
        assert marginals_agree(exact, sampled) is not None
        fair = MonteCarloPDB([world] * 900
                             + [Instance.empty()] * 100)
        assert marginals_agree(exact, fair) is None

    def test_chi_squared_flags_world_outside_support(self):
        inside = Instance.of(Fact("R", (1,)))
        outside = Instance.of(Fact("R", (99,)))
        exact = DiscretePDB.from_worlds([(inside, 1.0)])
        sampled = MonteCarloPDB([inside] * 99 + [outside])
        detail = worlds_agree_chi_squared(exact, sampled)
        assert detail is not None and "outside exact support" in detail

    def test_chi_squared_accepts_faithful_samples(self):
        inside = Instance.of(Fact("R", (1,)))
        exact = DiscretePDB.from_worlds([(inside, 0.5),
                                         (Instance.empty(), 0.5)])
        sampled = MonteCarloPDB([inside] * 52
                                + [Instance.empty()] * 48)
        assert worlds_agree_chi_squared(exact, sampled) is None

    def test_ks_agreement_separates_shifted_samples(self):
        rng = np.random.default_rng(0)
        first = list(rng.normal(0.0, 1.0, size=400))
        second = list(rng.normal(0.0, 1.0, size=400))
        shifted = list(rng.normal(3.0, 1.0, size=400))
        assert ks_agreement(first, second) is None
        assert ks_agreement(first, shifted) is not None

    def test_ks_agreement_skips_tiny_samples(self):
        assert ks_agreement([0.0], [100.0]) is None

    def test_sampled_values_extracts_random_positions(self):
        worlds = [Instance.of(Fact("R0", ("key", 0.25)),
                              Fact("E0", (7,)))]
        pdb = MonteCarloPDB(worlds)
        values = sampled_values(pdb, {"R0": 1})
        assert values == [0.25]


class TestCrashConversion:
    def test_evaluate_turns_exceptions_into_failures(self):
        class ExplodingOracle(FixpointOracle):
            name = "exploding"

            def check(self, case):
                raise RuntimeError("boom")

        case = generate_case(0)
        outcome = evaluate(ExplodingOracle(), case)
        assert outcome.status == "fail"
        assert "boom" in outcome.detail


class TestFacadeVsLegacy:
    def test_no_deprecation_warnings_leak(self):
        import warnings
        case = generate_case(5, kind="exact")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            outcome = FacadeVsLegacyOracle().check(case)
        assert outcome.status == "ok"


class TestBaranyAgreementOracle:
    """The Grohe-vs-Bárány semantics oracle and its agreement class."""

    def _oracle(self):
        from repro.testing import BaranyAgreementOracle
        return BaranyAgreementOracle()

    def test_repeated_family_outside_class(self):
        # Example 1.1's G0: the semantics genuinely disagree here.
        case = _case("R(Flip<0.5>) :- true.\nR(Flip<0.5>) :- true.")
        oracle = self._oracle()
        assert not oracle.agreement_class(case.program)
        assert oracle.check(case).status == "skip"

    def test_carried_head_variable_outside_class(self):
        # One rule fans a constant parameter tuple over carried values:
        # Bárány shares one draw across x, Grohe draws per x.
        case = _case("R0(x, Flip<0.5>) :- E0(x).",
                     facts=(Fact("E0", (1,)), Fact("E0", (2,))))
        assert not self._oracle().agreement_class(case.program)

    def test_discrete_agreement_class_passes_exactly(self):
        case = _case("""
            R0(0, Flip<0.4>) :- true.
            R1(Bernoulli<0.7>) :- E0(x).
        """, kind="exact", facts=(Fact("E0", (1,)), Fact("E0", (2,))))
        oracle = self._oracle()
        assert oracle.agreement_class(case.program)
        assert oracle.check(case).status == "ok"

    def test_continuous_agreement_class_passes_statistically(self):
        case = _case("""
            S0(Normal<0.0, 1.0>) :- E0(x).
            S1(Exponential<1.5>) :- true.
        """, facts=(Fact("E0", (1,)),))
        outcome = self._oracle().check(case)
        assert outcome.status == "ok", outcome.detail

    def test_comparison_detects_genuine_disagreement(self):
        # Force G0 through the comparison: the exact SPDBs differ
        # (shared draw vs two independent draws), so the oracle's
        # comparison machinery must flag it.
        from repro.testing import BaranyAgreementOracle

        class Unfenced(BaranyAgreementOracle):
            @staticmethod
            def agreement_class(program):
                return True

        case = _case("R(Flip<0.5>) :- true.\nR(Flip<0.5>) :- true.",
                     kind="exact")
        outcome = Unfenced().check(case)
        assert outcome.status == "fail"
        assert "disagree" in outcome.detail


class TestColumnarConsistency:
    def test_batched_result_columnar_equals_materialized(self):
        import repro
        from repro.testing import BatchedVsScalarOracle
        from repro.workloads.paper import (example_3_4_instance,
                                           example_3_4_program)
        result = repro.compile(example_3_4_program()).on(
            example_3_4_instance(), seed=3).sample(
                300, backend="batched")
        assert result.backend == "batched"
        assert BatchedVsScalarOracle._columnar_consistency(result) \
            is None

    def test_batched_scalar_oracle_covers_cascades(self):
        # A cascading discrete case runs the multi-round path end to
        # end through the oracle (exact SPDB + columnar identity).
        from repro.testing import BatchedVsScalarOracle
        case = _case("""
            A0(Flip<0.5>) :- true.
            B0(Flip<0.5>) :- A0(1).
            C0(1) :- B0(1).
        """, kind="exact")
        outcome = BatchedVsScalarOracle().check(case)
        assert outcome.status == "ok", outcome.detail


class TestStreamingBatchOracle:
    def _oracle(self):
        from repro.testing.oracles import StreamingBatchOracle
        return StreamingBatchOracle(n_runs=300)

    def test_agrees_on_a_leaf_observation(self):
        # Flip<0.5> leaves have no downstream triggers, so the stream
        # accepts the observation and must match the one-shot answer.
        outcome = self._oracle().check(_case(
            "Out(x, Flip<0.5>) :- In(x).",
            facts=(Fact("In", (1,)), Fact("In", (2,)))))
        assert outcome.status == "ok", outcome.detail

    def test_skips_without_random_heads(self):
        outcome = self._oracle().check(_case(
            "B(x) :- A(x).", facts=(Fact("A", (1,)),)))
        assert outcome.status == "skip"
