"""Tests for PDB representations (repro.pdb.database)."""

import pytest

from repro.errors import MeasureError
from repro.measures.discrete import DiscreteMeasure
from repro.pdb.database import (DiscretePDB, MonteCarloPDB, mixture_pdb)
from repro.pdb.events import ContainsFactEvent, CountingEvent, FactSet
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


def world(*values):
    return Instance(Fact("R", (v,)) for v in values)


@pytest.fixture
def pdb():
    return DiscretePDB(DiscreteMeasure({
        world(1): 0.25, world(0): 0.25, world(0, 1): 0.5}))


class TestDiscretePDB:
    def test_prob_event_object(self, pdb):
        event = ContainsFactEvent(Fact("R", (1,)))
        assert pdb.prob(event) == pytest.approx(0.75)

    def test_prob_callable(self, pdb):
        assert pdb.prob(lambda D: len(D) == 2) == pytest.approx(0.5)

    def test_marginal(self, pdb):
        assert pdb.marginal(Fact("R", (0,))) == pytest.approx(0.75)

    def test_counting_event(self, pdb):
        both = CountingEvent(FactSet("R", None), 2)
        assert pdb.prob(both) == pytest.approx(0.5)

    def test_err_mass_accounting(self):
        spdb = DiscretePDB(DiscreteMeasure({world(1): 0.6}), err=0.4)
        assert spdb.err_mass() == pytest.approx(0.4)
        assert spdb.total_mass() == pytest.approx(0.6)

    def test_super_probability_rejected(self):
        with pytest.raises(MeasureError):
            DiscretePDB(DiscreteMeasure({world(1): 0.8}), err=0.4)

    def test_non_instance_worlds_rejected(self):
        with pytest.raises(MeasureError):
            DiscretePDB(DiscreteMeasure({"not an instance": 1.0}))

    def test_map_worlds(self, pdb):
        mapped = pdb.map_worlds(lambda D: D.restrict(["R"]))
        assert mapped.total_mass() == pytest.approx(1.0)

    def test_project_merges_worlds(self):
        a = Instance.of(Fact("R", (1,)), Fact("Aux", (1,)))
        b = Instance.of(Fact("R", (1,)), Fact("Aux", (2,)))
        pdb = DiscretePDB(DiscreteMeasure({a: 0.5, b: 0.5}))
        projected = pdb.project(["R"])
        assert projected.support_size() == 1
        assert projected.prob_of_instance(world(1)) == pytest.approx(1.0)

    def test_without_relations(self):
        a = Instance.of(Fact("R", (1,)), Fact("Aux", (1,)))
        pdb = DiscretePDB(DiscreteMeasure({a: 1.0}))
        cleaned = pdb.without_relations(["Aux"])
        assert cleaned.prob_of_instance(world(1)) == pytest.approx(1.0)

    def test_expectation(self, pdb):
        assert pdb.expectation(len) == pytest.approx(
            0.25 * 1 + 0.25 * 1 + 0.5 * 2)

    def test_worlds_deterministic_order(self, pdb):
        assert pdb.worlds() == pdb.worlds()

    def test_tv_distance(self, pdb):
        assert pdb.tv_distance(pdb) == 0.0
        other = DiscretePDB(DiscreteMeasure({world(1): 1.0}))
        assert pdb.tv_distance(other) == pytest.approx(0.75)

    def test_tv_distance_includes_err(self):
        a = DiscretePDB(DiscreteMeasure({world(1): 1.0}))
        b = DiscretePDB(DiscreteMeasure({world(1): 0.5}), err=0.5)
        assert a.tv_distance(b) == pytest.approx(0.5)

    def test_allclose(self, pdb):
        assert pdb.allclose(pdb)
        assert not pdb.allclose(
            DiscretePDB(DiscreteMeasure({world(1): 1.0})))

    def test_condition(self, pdb):
        conditioned = pdb.condition(lambda D: Fact("R", (1,)) in D)
        assert conditioned.total_mass() == pytest.approx(1.0)
        assert conditioned.prob_of_instance(world(0, 1)) == \
            pytest.approx(0.5 / 0.75)

    def test_condition_null_event(self, pdb):
        with pytest.raises(MeasureError):
            pdb.condition(lambda D: False)

    def test_push_distribution(self, pdb):
        sizes = pdb.push_distribution(len)
        assert sizes.mass(1) == pytest.approx(0.5)
        assert sizes.mass(2) == pytest.approx(0.5)

    def test_deterministic_constructor(self):
        pdb = DiscretePDB.deterministic(world(3))
        assert pdb.prob_of_instance(world(3)) == 1.0


class TestMonteCarloPDB:
    def test_estimates(self):
        worlds = [world(1)] * 30 + [world(0)] * 70
        pdb = MonteCarloPDB(worlds)
        assert pdb.prob(ContainsFactEvent(Fact("R", (1,)))) == \
            pytest.approx(0.3)
        assert pdb.marginal(Fact("R", (0,))) == pytest.approx(0.7)

    def test_truncated_runs_are_err(self):
        pdb = MonteCarloPDB([world(1)] * 8, truncated=2)
        assert pdb.err_mass() == pytest.approx(0.2)
        assert pdb.total_mass() == pytest.approx(0.8)
        assert pdb.prob(lambda D: True) == pytest.approx(0.8)

    def test_needs_at_least_one_run(self):
        with pytest.raises(MeasureError):
            MonteCarloPDB([], truncated=0)

    def test_map_worlds(self):
        pdb = MonteCarloPDB([Instance.of(Fact("R", (1,)),
                                         Fact("Aux", (1,)))] * 5)
        projected = pdb.project(["R"])
        assert all(D.relations() == ("R",) for D in projected.worlds)

    def test_expectation(self):
        pdb = MonteCarloPDB([world(1), world(0, 1)])
        assert pdb.expectation(len) == pytest.approx(1.5)

    def test_standard_error(self):
        pdb = MonteCarloPDB([world(1)] * 50 + [world(0)] * 50)
        se = pdb.prob_standard_error(
            ContainsFactEvent(Fact("R", (1,))))
        assert se == pytest.approx(0.05, abs=0.01)

    def test_values_of(self):
        pdb = MonteCarloPDB([world(1, 2), world(3)])
        values = pdb.values_of(
            lambda D: [f.args[0] for f in D.facts_of("R")])
        assert sorted(values) == [1, 2, 3]

    def test_to_discrete(self):
        pdb = MonteCarloPDB([world(1)] * 75 + [world(0)] * 25)
        exact = pdb.to_discrete()
        assert exact.prob_of_instance(world(1)) == pytest.approx(0.75)
        assert exact.total_mass() == pytest.approx(1.0)

    def test_to_discrete_with_truncation(self):
        pdb = MonteCarloPDB([world(1)] * 50, truncated=50)
        exact = pdb.to_discrete()
        assert exact.err_mass() == pytest.approx(0.5)
        assert exact.total_mass() == pytest.approx(0.5)


class TestMixture:
    def test_mixture_of_pdbs(self):
        a = DiscretePDB.deterministic(world(1))
        b = DiscretePDB.deterministic(world(0))
        mixed = mixture_pdb([(0.3, a), (0.7, b)])
        assert mixed.prob_of_instance(world(1)) == pytest.approx(0.3)

    def test_component_err_scales(self):
        a = DiscretePDB(DiscreteMeasure({world(1): 0.5}), err=0.5)
        mixed = mixture_pdb([(0.5, a),
                             (0.5, DiscretePDB.deterministic(world(0)))])
        assert mixed.err_mass() == pytest.approx(0.25)

    def test_overweight_rejected(self):
        a = DiscretePDB.deterministic(world(1))
        with pytest.raises(MeasureError):
            mixture_pdb([(0.7, a), (0.7, a)])
