"""Smoke tests: the fast example scripts run cleanly end to end.

The slower examples (`earthquake_alarm.py` scaling section,
`bayesian_inference.py` with its 20k-run posteriors) are exercised
manually / by the benchmark suite; here we pin the quick ones so a
regression in the public API surfaces immediately.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300)


@pytest.mark.parametrize("script,expected_fragments", [
    ("quickstart.py",
     ["Chase independence verified", "P(Incident(rack1)) = 0.020000"]),
    ("semantics_comparison.py",
     ["H' under ours simulates H under Barany et al. exactly",
      "ours-in-barany OK"]),
    ("termination_analysis.py",
     ["continuous cycle", "instances 1.0000"]),
])
def test_example_runs(script, expected_fragments):
    result = run_example(script)
    assert result.returncode == 0, result.stderr
    for fragment in expected_fragments:
        assert fragment in result.stdout, \
            f"{fragment!r} missing from {script} output"


def test_examples_directory_complete():
    """All advertised example scripts exist and are non-trivial."""
    advertised = ["quickstart.py", "earthquake_alarm.py",
                  "sensor_heights.py", "semantics_comparison.py",
                  "termination_analysis.py", "bayesian_inference.py"]
    for name in advertised:
        path = EXAMPLES / name
        assert path.exists(), name
        text = path.read_text()
        assert '"""' in text and "def main" in text, name
