"""Tests for continuous parameterized distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.continuous import (Beta, Exponential, Gamma,
                                            Laplace, LogNormal, Normal,
                                            Uniform)
from repro.errors import DistributionError
from repro.measures.empirical import ks_critical_value, ks_statistic


def integrate(f, low, high, n=4000):
    """Simple trapezoidal quadrature for density normalization checks."""
    xs = np.linspace(low, high, n)
    ys = np.asarray([f(x) for x in xs])
    return float(np.trapezoid(ys, xs))


class TestNormal:
    def test_density_peak(self):
        normal = Normal()
        peak = normal.density((0.0, 1.0), 0.0)
        assert peak == pytest.approx(1.0 / math.sqrt(2 * math.pi))

    def test_density_correct_exponent(self):
        # Regression against the paper's typo: at one standard deviation
        # the density must be peak * exp(-1/2), not peak * exp(-1).
        normal = Normal()
        peak = normal.density((0.0, 1.0), 0.0)
        assert normal.density((0.0, 1.0), 1.0) == \
            pytest.approx(peak * math.exp(-0.5))

    def test_density_integrates_to_one(self):
        normal = Normal()
        total = integrate(lambda x: normal.density((1.0, 4.0), x),
                          -14, 16)
        assert total == pytest.approx(1.0, abs=1e-4)

    def test_variance_parameterization(self):
        # Second parameter is the variance σ², per the paper's notation.
        rng = np.random.default_rng(0)
        samples = Normal().sample_many((0.0, 9.0), rng, 8000)
        assert abs(np.std(samples) - 3.0) < 0.15

    def test_parameter_validation(self):
        with pytest.raises(DistributionError):
            Normal().validate_params((0.0, 0.0))
        with pytest.raises(DistributionError):
            Normal().validate_params((0.0, -1.0))

    def test_cdf(self):
        normal = Normal()
        assert normal.cdf((0.0, 1.0), 0.0) == pytest.approx(0.5)
        assert normal.cdf((0.0, 1.0), 1.96) == pytest.approx(0.975,
                                                             abs=1e-3)

    def test_sampling_ks(self):
        rng = np.random.default_rng(1)
        samples = Normal().sample_many((2.0, 4.0), rng, 3000)
        stat = ks_statistic(samples,
                            lambda x: Normal().cdf((2.0, 4.0), x))
        assert stat < ks_critical_value(3000, alpha=0.001)

    def test_non_numeric_density_zero(self):
        assert Normal().density((0.0, 1.0), "x") == 0.0


class TestLogNormal:
    def test_support_positive(self):
        assert LogNormal().density((0.0, 1.0), -1.0) == 0.0
        assert LogNormal().density((0.0, 1.0), 0.0) == 0.0
        assert LogNormal().density((0.0, 1.0), 1.0) > 0.0

    def test_density_integrates_to_one(self):
        total = integrate(
            lambda x: LogNormal().density((0.0, 0.25), x), 1e-6, 12)
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_mean_formula(self):
        rng = np.random.default_rng(2)
        samples = LogNormal().sample_many((0.5, 0.09), rng, 20000)
        assert abs(np.mean(samples) - LogNormal().mean((0.5, 0.09))) \
            < 0.05

    def test_cdf_monotone(self):
        cdf = LogNormal().cdf
        values = [cdf((0.0, 1.0), x) for x in (0.5, 1.0, 2.0, 4.0)]
        assert values == sorted(values)


class TestExponential:
    def test_density(self):
        assert Exponential().density((2.0,), 0.0) == pytest.approx(2.0)
        assert Exponential().density((2.0,), -0.5) == 0.0

    def test_rate_parameterization(self):
        rng = np.random.default_rng(3)
        samples = Exponential().sample_many((4.0,), rng, 8000)
        assert abs(np.mean(samples) - 0.25) < 0.02

    def test_cdf(self):
        assert Exponential().cdf((1.0,), math.log(2)) == \
            pytest.approx(0.5)

    def test_sampling_ks(self):
        rng = np.random.default_rng(4)
        samples = Exponential().sample_many((1.5,), rng, 3000)
        stat = ks_statistic(samples,
                            lambda x: Exponential().cdf((1.5,), x))
        assert stat < ks_critical_value(3000, alpha=0.001)


class TestUniform:
    def test_density(self):
        uniform = Uniform()
        assert uniform.density((0.0, 4.0), 2.0) == pytest.approx(0.25)
        assert uniform.density((0.0, 4.0), 5.0) == 0.0

    def test_invalid_interval(self):
        with pytest.raises(DistributionError):
            Uniform().validate_params((1.0, 1.0))

    def test_sampling_range(self):
        rng = np.random.default_rng(5)
        samples = Uniform().sample_many((-1.0, 1.0), rng, 1000)
        assert min(samples) >= -1.0 and max(samples) <= 1.0

    def test_moments(self):
        assert Uniform().mean((0.0, 6.0)) == pytest.approx(3.0)
        assert Uniform().variance((0.0, 6.0)) == pytest.approx(3.0)


class TestGamma:
    def test_density_integrates_to_one(self):
        total = integrate(lambda x: Gamma().density((2.0, 1.0), x),
                          1e-6, 30)
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_exponential_special_case(self):
        # Gamma(1, λ) = Exponential(λ).
        for x in (0.1, 0.5, 2.0):
            assert Gamma().density((1.0, 2.0), x) == \
                pytest.approx(Exponential().density((2.0,), x))

    def test_sampling_mean(self):
        rng = np.random.default_rng(6)
        samples = Gamma().sample_many((3.0, 2.0), rng, 8000)
        assert abs(np.mean(samples) - 1.5) < 0.05


class TestBeta:
    def test_support(self):
        assert Beta().density((2.0, 2.0), -0.1) == 0.0
        assert Beta().density((2.0, 2.0), 1.1) == 0.0

    def test_uniform_special_case(self):
        for x in (0.2, 0.5, 0.8):
            assert Beta().density((1.0, 1.0), x) == pytest.approx(1.0)

    def test_density_integrates_to_one(self):
        total = integrate(lambda x: Beta().density((2.0, 5.0), x),
                          1e-9, 1 - 1e-9)
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_sampling_mean(self):
        rng = np.random.default_rng(7)
        samples = Beta().sample_many((2.0, 6.0), rng, 8000)
        assert abs(np.mean(samples) - 0.25) < 0.02


class TestLaplace:
    def test_density_symmetric(self):
        laplace = Laplace()
        assert laplace.density((1.0, 2.0), 0.0) == \
            pytest.approx(laplace.density((1.0, 2.0), 2.0))

    def test_cdf_median(self):
        assert Laplace().cdf((3.0, 1.0), 3.0) == pytest.approx(0.5)

    def test_density_integrates_to_one(self):
        total = integrate(lambda x: Laplace().density((0.0, 1.0), x),
                          -15, 15)
        assert total == pytest.approx(1.0, abs=1e-4)

    def test_variance(self):
        rng = np.random.default_rng(8)
        samples = Laplace().sample_many((0.0, 2.0), rng, 12000)
        assert abs(np.var(samples) - 8.0) < 0.6


class TestContinuousProperties:
    @given(st.floats(-5, 5), st.floats(0.1, 9.0))
    @settings(max_examples=25)
    def test_normal_density_positive(self, mu, var):
        assert Normal().density((mu, var), mu + 0.1) > 0

    @given(st.floats(-3, 3), st.floats(0.2, 4.0), st.floats(-8, 8))
    @settings(max_examples=40)
    def test_normal_cdf_in_unit_interval(self, mu, var, x):
        value = Normal().cdf((mu, var), x)
        assert 0.0 <= value <= 1.0

    @given(st.floats(0.1, 5.0), st.floats(0.01, 8.0))
    @settings(max_examples=40)
    def test_exponential_cdf_density_consistency(self, rate, x):
        # d/dx CDF = density on the smooth region x > 0
        # (finite-difference check; the CDF has a kink at 0).
        h = 1e-6
        cdf = Exponential().cdf
        derivative = (cdf((rate,), x + h) - cdf((rate,), x - h)) / (2 * h)
        assert derivative == pytest.approx(
            Exponential().density((rate,), x), abs=1e-3, rel=1e-3)
