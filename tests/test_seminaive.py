"""Tests for the deterministic Datalog engines (naive / semi-naive)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.program import Program
from repro.engine.seminaive import (evaluate_datalog, naive_fixpoint,
                                    seminaive_fixpoint)
from repro.errors import UnsupportedProgramError
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads.generators import (random_graph_instance,
                                        transitive_closure_program)


@pytest.fixture
def tc_program():
    return transitive_closure_program()


def edges(*pairs):
    return Instance(Fact("Edge", p) for p in pairs)


class TestFixpoints:
    def test_transitive_closure(self, tc_program):
        D = edges((1, 2), (2, 3), (3, 4))
        result = seminaive_fixpoint(tc_program, D)
        paths = result.tuples_of("Path")
        assert (1, 4) in paths and (1, 2) in paths
        assert len(paths) == 6

    def test_cycle_terminates(self, tc_program):
        D = edges((1, 2), (2, 1))
        result = seminaive_fixpoint(tc_program, D)
        assert result.tuples_of("Path") == \
            {(1, 2), (2, 1), (1, 1), (2, 2)}

    def test_naive_equals_seminaive(self, tc_program):
        D = random_graph_instance(12, 25, seed=3)
        assert naive_fixpoint(tc_program, D) == \
            seminaive_fixpoint(tc_program, D)

    def test_bodiless_rules_fire_once(self):
        program = Program.parse("A(1) :- true. B(x) :- A(x).")
        result = seminaive_fixpoint(program, Instance.empty())
        assert Fact("A", (1,)) in result and Fact("B", (1,)) in result

    def test_input_preserved(self, tc_program):
        D = edges((1, 2))
        result = seminaive_fixpoint(tc_program, D)
        assert D.issubset(result)

    def test_no_rules_applicable(self, tc_program):
        D = Instance.of(Fact("Other", (1,)))
        assert seminaive_fixpoint(tc_program, D) == D

    def test_random_program_rejected(self):
        program = Program.parse("R(Flip<0.5>) :- true.")
        with pytest.raises(UnsupportedProgramError):
            seminaive_fixpoint(program, Instance.empty())
        with pytest.raises(UnsupportedProgramError):
            naive_fixpoint(program, Instance.empty())

    def test_max_iterations_bounds_work(self, tc_program):
        D = edges(*((i, i + 1) for i in range(10)))
        partial = seminaive_fixpoint(tc_program, D, max_iterations=1)
        full = seminaive_fixpoint(tc_program, D)
        assert partial.issubset(full)
        assert len(partial) < len(full)

    def test_evaluate_datalog_engine_switch(self, tc_program):
        D = edges((1, 2), (2, 3))
        assert evaluate_datalog(tc_program, D, engine="naive") == \
            evaluate_datalog(tc_program, D, engine="seminaive")
        with pytest.raises(ValueError):
            evaluate_datalog(tc_program, D, engine="quantum")


class TestMultiRuleDatalog:
    def test_mutual_recursion(self):
        program = Program.parse("""
            Even(x) :- Zero(x).
            Odd(y) :- Even(x), Succ(x, y).
            Even(y) :- Odd(x), Succ(x, y).
        """)
        D = Instance([Fact("Zero", (0,))]
                     + [Fact("Succ", (i, i + 1)) for i in range(6)])
        result = seminaive_fixpoint(program, D)
        assert result.tuples_of("Even") == {(0,), (2,), (4,), (6,)}
        assert result.tuples_of("Odd") == {(1,), (3,), (5,)}

    def test_same_head_different_bodies(self):
        program = Program.parse("""
            Unit(h) :- House(h).
            Unit(b) :- Business(b).
        """)
        D = Instance.of(Fact("House", ("h1",)), Fact("Business", ("b1",)))
        result = seminaive_fixpoint(program, D)
        assert result.tuples_of("Unit") == {("h1",), ("b1",)}


class TestEngineEquivalenceProperty:
    @given(st.integers(4, 10), st.integers(5, 20), st.integers(0, 99))
    @settings(max_examples=15, deadline=None)
    def test_naive_seminaive_agree_on_random_graphs(self, n, m, seed):
        program = transitive_closure_program()
        D = random_graph_instance(n, m, seed=seed)
        assert naive_fixpoint(program, D) == \
            seminaive_fixpoint(program, D)


def _both(program, instance):
    naive = naive_fixpoint(program, instance)
    seminaive = seminaive_fixpoint(program, instance)
    assert naive == seminaive
    assert evaluate_datalog(program, instance, "naive") == \
        evaluate_datalog(program, instance, "seminaive")
    return naive


class TestEquivalenceEdgeCases:
    """Naive vs semi-naive on the degenerate shapes the fuzzer spans."""

    def test_empty_instance(self, tc_program):
        result = _both(tc_program, Instance.empty())
        assert result == Instance.empty()

    def test_empty_relations_referenced_in_bodies(self):
        program = Program.parse("""
            D0(x) :- Missing(x).
            D1(x, y) :- D0(x), AlsoMissing(x, y).
        """)
        instance = Instance.of(Fact("Unrelated", (1,)))
        result = _both(program, instance)
        assert result == instance  # nothing derivable, input preserved

    def test_constant_only_rules(self):
        program = Program.parse("""
            A(1) :- true.
            A(2) :- true.
            B("x", 3) :- true.
            C(y) :- A(y).
        """)
        result = _both(program, Instance.empty())
        assert result.tuples_of("A") == {(1,), (2,)}
        assert result.tuples_of("B") == {("x", 3)}
        assert result.tuples_of("C") == {(1,), (2,)}

    def test_constant_only_rule_gated_on_empty_body(self):
        program = Program.parse("D0(7) :- Missing(x).")
        result = _both(program, Instance.empty())
        assert result.tuples_of("D0") == set()

    def test_body_never_matches_due_to_constants(self):
        program = Program.parse('D0(x) :- E0(x, "nope").')
        instance = Instance.of(Fact("E0", (1, "a")),
                               Fact("E0", (2, "b")))
        result = _both(program, instance)
        assert result.tuples_of("D0") == set()

    def test_body_never_matches_due_to_repeated_variable(self):
        program = Program.parse("D0(x) :- E0(x, x).")
        instance = Instance.of(Fact("E0", (1, 2)), Fact("E0", (2, 3)))
        result = _both(program, instance)
        assert result.tuples_of("D0") == set()

    def test_duplicate_rules_change_nothing(self, tc_program):
        doubled = Program(tuple(tc_program.rules)
                          + tuple(tc_program.rules))
        D = edges((1, 2), (2, 3))
        assert _both(doubled, D) == _both(tc_program, D)

    def test_duplicate_bodies_different_heads(self):
        program = Program.parse("""
            D0(x) :- E0(x, y).
            D1(x) :- E0(x, y).
            D2(y) :- E0(x, y).
        """)
        instance = Instance.of(Fact("E0", (1, 2)))
        result = _both(program, instance)
        assert result.tuples_of("D0") == {(1,)}
        assert result.tuples_of("D1") == {(1,)}
        assert result.tuples_of("D2") == {(2,)}

    def test_derived_fact_already_in_input(self):
        program = Program.parse("D0(x) :- E0(x).")
        instance = Instance.of(Fact("E0", (1,)), Fact("D0", (1,)))
        result = _both(program, instance)
        assert result.tuples_of("D0") == {(1,)}

    def test_recursion_with_empty_seed_relation(self):
        program = Program.parse("""
            Even(x) :- Zero(x).
            Even(y) :- Even(x), Succ(x, y).
        """)
        instance = Instance(Fact("Succ", (i, i + 1)) for i in range(4))
        result = _both(program, instance)
        assert result.tuples_of("Even") == set()
