"""Tests for the compile-once / infer-many facade (repro.api).

Covers the satellite checklist of the facade PR:

* :class:`ChaseConfig` validation and immutability;
* compile-once caching - a translation-count regression test proving
  that ``Session.sample(n)`` performs exactly one translation;
* :class:`DeprecationWarning` emission from every legacy shim;
* behavioural equivalence of the facade with the legacy entry points.
"""

import dataclasses
import importlib
import warnings

import numpy as np
import pytest

import repro

# ``repro.core.translate`` the *module* (the package __init__ rebinds
# the attribute of the same name to the translate() function).
translate_module = importlib.import_module("repro.core.translate")
from repro.api import (DEFAULT_CONFIG, ChaseConfig, CompiledProgram,
                       InferenceResult, Session)
from repro.core.observe import observe
from repro.errors import MeasureError, ValidationError
from repro.pdb.events import ContainsFactEvent


@pytest.fixture
def g0():
    return repro.Program.parse("""
        R(Flip<0.5>) :- true.
        R(Flip<0.5>) :- true.
    """)


@pytest.fixture
def earthquake():
    program = repro.Program.parse("""
        Earthquake(c, Flip<0.1>)    :- City(c, r).
        Unit(h, c)                  :- House(h, c).
        Burglary(x, c, Flip<r>)     :- Unit(x, c), City(c, r).
        Trig(x, Flip<0.6>)          :- Unit(x, c), Earthquake(c, 1).
        Trig(x, Flip<0.9>)          :- Burglary(x, c, 1).
        Alarm(x)                    :- Trig(x, 1).
    """)
    instance = repro.Instance.from_dict({
        "City":  [("Napa", 0.03)],
        "House": [("h1", "Napa")],
    })
    return program, instance


# ---------------------------------------------------------------------------
# ChaseConfig
# ---------------------------------------------------------------------------

class TestChaseConfig:
    def test_defaults(self):
        config = ChaseConfig()
        assert config.engine == "incremental"
        assert config.streams == "spawn"
        assert not config.parallel
        assert config.policy is None
        assert config == DEFAULT_CONFIG

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ChaseConfig().engine = "naive"

    @pytest.mark.parametrize("overrides", [
        {"engine": "turbo"},
        {"streams": "vectorized"},
        {"max_steps": 0},
        {"max_steps": -5},
        {"max_steps": 1.5},
        {"max_depth": 0},
        {"tolerance": -1e-9},
        {"policy": "first"},
        {"seed": "seven"},
    ])
    def test_validation_rejects(self, overrides):
        with pytest.raises(ValidationError):
            ChaseConfig(**overrides)

    def test_replace_produces_new_validated_config(self):
        config = ChaseConfig()
        other = config.replace(max_steps=5, engine="naive")
        assert other is not config
        assert other.max_steps == 5 and other.engine == "naive"
        assert config.max_steps != 5  # original untouched
        with pytest.raises(ValidationError):
            config.replace(max_steps=-1)

    def test_replace_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown ChaseConfig"):
            ChaseConfig().replace(max_stepz=10)

    def test_replace_noop_returns_self(self):
        config = ChaseConfig()
        assert config.replace() is config

    def test_spawn_rngs_are_independent_and_reproducible(self):
        config = ChaseConfig(seed=13)
        a = [rng.random() for rng in config.spawn_rngs(4)]
        b = [rng.random() for rng in config.spawn_rngs(4)]
        assert a == b                      # reproducible
        assert len(set(a)) == 4            # independent streams

    def test_shared_stream_is_one_generator(self):
        config = ChaseConfig(seed=13, streams="shared")
        rngs = config.spawn_rngs(5)
        assert all(rng is rngs[0] for rng in rngs)

    def test_generator_seed_passthrough(self):
        rng = np.random.default_rng(0)
        config = ChaseConfig(seed=rng, streams="shared")
        assert config.base_rng() is rng


# ---------------------------------------------------------------------------
# compile() / CompiledProgram
# ---------------------------------------------------------------------------

class TestCompile:
    def test_compile_text(self):
        compiled = repro.compile("R(Flip<0.5>) :- true.")
        assert isinstance(compiled, CompiledProgram)
        assert compiled.is_discrete()
        assert compiled.visible_relations == ("R",)

    def test_compile_program_object(self, g0):
        compiled = repro.compile(g0, semantics="barany")
        assert compiled.semantics == "barany"
        assert compiled.on().exact().pdb.support_size() == 2

    def test_compile_translated_program(self, g0):
        translated = g0.translate_barany()
        compiled = repro.compile(translated)
        assert compiled.semantics == "barany"
        assert compiled.translated is translated

    def test_compile_translated_semantics_clash(self, g0):
        with pytest.raises(ValidationError):
            repro.compile(g0.translate(), semantics="barany")
        # ... in either direction: an explicit 'grohe' request cannot
        # silently reuse a barany translation.
        with pytest.raises(ValidationError):
            repro.compile(g0.translate_barany(), semantics="grohe")

    def test_parse_options_rejected_for_program_objects(self, g0):
        with pytest.raises(ValidationError):
            repro.compile(g0, registry=repro.DEFAULT_REGISTRY)
        with pytest.raises(ValidationError):
            repro.compile(g0.translate(),
                          registry=repro.DEFAULT_REGISTRY)

    def test_bad_input_type(self):
        with pytest.raises(ValidationError):
            repro.compile(42)

    def test_bad_semantics(self, g0):
        with pytest.raises(ValidationError):
            repro.compile(g0, semantics="exotic")

    def test_analyze_cached(self, g0):
        compiled = repro.compile(g0)
        assert compiled.analyze() is compiled.analyze()
        assert compiled.analyze().weakly_acyclic


class TestCompileOnceRegression:
    """``Session.sample(n)`` must translate the program exactly once."""

    def _counting(self, monkeypatch):
        calls = {"n": 0}
        original = translate_module.translate

        def counted(program):
            calls["n"] += 1
            return original(program)

        monkeypatch.setattr(translate_module, "translate", counted)
        return calls

    def test_sample_translates_exactly_once(self, monkeypatch, g0):
        calls = self._counting(monkeypatch)
        session = repro.compile(g0).on(seed=0)
        result = session.sample(40)
        assert result.n_runs == 40
        assert calls["n"] == 1

    def test_whole_session_lifecycle_translates_once(self, monkeypatch,
                                                     g0):
        calls = self._counting(monkeypatch)
        compiled = repro.compile(g0)
        session = compiled.on(seed=1)
        session.sample(25)
        session.sample(25)
        session.exact()
        session.marginal(repro.Fact("R", (1,)))
        compiled.analyze()
        compiled.on(seed=2).sample(10)     # second session, same cache
        assert calls["n"] == 1

    def test_legacy_path_translates_per_call(self, monkeypatch, g0):
        calls = self._counting(monkeypatch)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            repro.sample_spdb(g0, n=5, rng=0)
            repro.sample_spdb(g0, n=5, rng=0)
        assert calls["n"] == 2

    def test_exact_result_cached_per_config(self, g0):
        session = repro.compile(g0).on()
        assert session.exact() is session.exact()
        deeper = session.exact(max_depth=300)
        assert deeper is not session.exact()
        assert deeper.pdb.allclose(session.exact().pdb)


# ---------------------------------------------------------------------------
# Session verbs
# ---------------------------------------------------------------------------

class TestSessionSample:
    def test_matches_legacy_sample_spdb_bit_for_bit(self, earthquake):
        program, instance = earthquake
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = repro.sample_spdb(program, instance, n=200, rng=7)
        facade = repro.compile(program).on(
            instance, seed=7, streams="shared").sample(200).pdb
        assert [w.canonical_text() for w in legacy.worlds] == \
            [w.canonical_text() for w in facade.worlds]

    def test_spawn_streams_deterministic(self, earthquake):
        program, instance = earthquake
        compiled = repro.compile(program)
        a = compiled.on(instance, seed=3).sample(100).pdb
        b = compiled.on(instance, seed=3).sample(100).pdb
        assert [w.canonical_text() for w in a.worlds] == \
            [w.canonical_text() for w in b.worlds]

    def test_workers_match_sequential(self, earthquake):
        # Worker threads are a scalar-path feature (the batched
        # backend is already vectorized, and "auto" routes workers > 1
        # to the scalar loop), so pin the backend for the comparison.
        program, instance = earthquake
        compiled = repro.compile(program)
        sequential = compiled.on(instance, seed=5).sample(
            60, backend="scalar").pdb
        threaded_result = compiled.on(instance, seed=5).sample(
            60, workers=4)
        assert threaded_result.backend == "scalar"
        threaded = threaded_result.pdb
        assert [w.canonical_text() for w in sequential.worlds] == \
            [w.canonical_text() for w in threaded.worlds]

    def test_workers_require_spawn_streams(self, g0):
        session = repro.compile(g0).on(seed=0, streams="shared")
        with pytest.raises(ValidationError):
            session.sample(10, workers=2)

    def test_sample_rejects_nonpositive_n(self, g0):
        with pytest.raises(ValidationError):
            repro.compile(g0).on().sample(0)

    def test_sample_converges_to_exact(self, g0):
        session = repro.compile(g0).on(seed=0)
        exact = session.exact()
        sampled = session.sample(4000)
        fact = repro.Fact("R", (1,))
        assert abs(sampled.marginal(fact)
                   - exact.marginal(fact)) < 0.05

    def test_parallel_chase_config(self, g0):
        result = repro.compile(g0).on(seed=0,
                                      parallel=True).sample(100)
        assert result.err_mass() == 0.0
        assert result.n_runs == 100

    def test_outputs_stream(self, g0):
        outputs = list(repro.compile(g0).on(seed=0).outputs(5))
        assert len(outputs) == 5
        assert all(out is not None for out in outputs)


class TestSessionExact:
    def test_matches_legacy_exact_spdb(self, earthquake):
        program, instance = earthquake
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = repro.exact_spdb(program, instance)
        facade = repro.compile(program).on(instance).exact().pdb
        assert facade.allclose(legacy)
        assert facade.marginal(repro.Fact("Alarm", ("h1",))) == \
            pytest.approx(0.08538)

    def test_result_type_and_diagnostics(self, g0):
        result = repro.compile(g0).on().exact()
        assert isinstance(result, InferenceResult)
        assert result.kind == "exact"
        assert result.elapsed >= 0.0
        assert result.total_mass() == pytest.approx(1.0)
        payload = result.to_dict()
        assert payload["kind"] == "exact"
        assert payload["err_mass"] == pytest.approx(0.0)

    def test_barany_semantics(self, g0):
        ours = repro.compile(g0).on().exact().pdb
        barany = repro.compile(g0,
                               semantics="barany").on().exact().pdb
        assert ours.support_size() == 3
        assert barany.support_size() == 2


class TestSessionPosterior:
    def test_exact_conditioning_matches_legacy(self, earthquake):
        program, instance = earthquake
        alarm = ContainsFactEvent(repro.Fact("Alarm", ("h1",)))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = repro.condition_exact(program, instance, [alarm])
        facade = repro.compile(program).on(instance).observe(
            alarm).posterior(method="exact").pdb
        assert facade.allclose(legacy)

    def test_rejection_posterior(self, earthquake):
        program, instance = earthquake
        alarm = ContainsFactEvent(repro.Fact("Alarm", ("h1",)))
        result = repro.compile(program).on(instance, seed=0).observe(
            alarm).posterior(method="rejection", n=4000)
        assert result.kind == "rejection"
        assert result.diagnostics["n_accepted"] > 0
        assert 0.0 < result.diagnostics["acceptance_rate"] < 1.0
        exact = repro.compile(program).on(instance).observe(
            alarm).posterior(method="exact")
        quake = repro.Fact("Earthquake", ("Napa", 1))
        assert abs(result.marginal(quake)
                   - exact.marginal(quake)) < 0.05

    def test_rejection_zero_acceptance_raises(self, g0):
        impossible = ContainsFactEvent(repro.Fact("R", (7,)))
        with pytest.raises(MeasureError, match="measure-zero"):
            repro.compile(g0).on(seed=0).observe(
                impossible).posterior(method="rejection", n=50)

    def test_likelihood_posterior(self):
        compiled = repro.compile("""
            Mu(Normal<0, 1>) :- true.
            X(Normal<m, 1>)  :- Mu(m).
        """)
        result = compiled.on(seed=2).observe(
            observe("X", 2.0)).posterior(method="likelihood", n=4000)
        assert result.kind == "likelihood"
        assert result.diagnostics["effective_sample_size"] > 100
        mean = result.pdb.weighted_mean(
            lambda D: [f.args[0] for f in D.facts_of("Mu")])
        assert abs(mean - 1.0) < 0.1

    def test_method_evidence_mismatch(self, g0):
        session = repro.compile(g0).on(seed=0)
        with pytest.raises(ValidationError):
            session.observe(observe("R", 1)).posterior(
                method="rejection")
        with pytest.raises(ValidationError):
            session.observe(lambda D: True).posterior(
                method="likelihood")

    def test_posterior_needs_evidence(self, g0):
        with pytest.raises(ValidationError, match="observe"):
            repro.compile(g0).on().posterior()

    def test_unknown_method(self, g0):
        session = repro.compile(g0).on().observe(lambda D: True)
        with pytest.raises(ValidationError, match="unknown posterior"):
            session.posterior(method="variational")

    def test_observe_validates_evidence(self, g0):
        session = repro.compile(g0).on()
        with pytest.raises(ValidationError):
            session.observe()
        with pytest.raises(ValidationError):
            session.observe("not evidence")

    def test_marginal_with_evidence_uses_posterior(self, earthquake):
        program, instance = earthquake
        alarm = ContainsFactEvent(repro.Fact("Alarm", ("h1",)))
        session = repro.compile(program).on(instance).observe(alarm)
        quake = repro.Fact("Earthquake", ("Napa", 1))
        posterior = session.marginal(quake)
        prior = repro.compile(program).on(instance).marginal(quake)
        assert posterior > prior


class TestSessionMisc:
    def test_run_single_chase(self, g0):
        run = repro.compile(g0).on(seed=0).run()
        assert run.terminated
        assert run.steps > 0

    def test_record_trace(self, g0):
        run = repro.compile(g0).on(seed=0, record_trace=True).run()
        assert run.trace is not None and len(run.trace) == run.steps

    def test_mass_report(self, g0):
        reports = repro.compile(g0).on().mass_report(budgets=(1, 8))
        assert [r.budget for r in reports] == [1, 8]
        assert reports[1].instance_mass == pytest.approx(1.0)

    def test_apply_to_pdb_matches_legacy(self, g0):
        input_pdb = repro.compile(g0).on().exact().pdb
        follow = repro.Program.parse("S(x) :- R(x).",
                                     extensional=("R",))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = repro.apply_to_pdb(follow, input_pdb)
        facade = repro.compile(follow).apply_to_pdb(input_pdb).pdb
        assert facade.allclose(legacy)

    def test_configure_returns_new_session(self, g0):
        session = repro.compile(g0).on()
        other = session.configure(max_steps=17)
        assert other is not session
        assert other.config.max_steps == 17
        assert session.config.max_steps != 17

    def test_derived_sessions_share_caches(self, earthquake):
        program, instance = earthquake
        session = repro.compile(program).on(instance)
        prior = session.exact()
        alarm = ContainsFactEvent(repro.Fact("Alarm", ("h1",)))
        observed = session.observe(alarm)
        # The observed session conditions the already-enumerated
        # prior instead of re-running the chase-tree enumeration.
        assert observed._exact_cache is session._exact_cache
        assert observed.exact() is prior
        assert session.configure(seed=9)._engines is session._engines

    def test_session_repr(self, g0):
        session = repro.compile(g0).on().observe(lambda D: True)
        assert "Session" in repr(session)
        assert "1 evidence" in repr(session)


# ---------------------------------------------------------------------------
# Deprecation shims
# ---------------------------------------------------------------------------

class TestDeprecationShims:
    """Every legacy entry point warns exactly and keeps working."""

    def test_exact_spdb_warns(self, g0):
        with pytest.warns(DeprecationWarning, match="exact_spdb"):
            pdb = repro.exact_spdb(g0)
        assert pdb.support_size() == 3

    def test_sample_spdb_warns(self, g0):
        with pytest.warns(DeprecationWarning, match="sample_spdb"):
            pdb = repro.sample_spdb(g0, n=20, rng=0)
        assert pdb.n_runs == 20

    def test_run_chase_warns(self, g0):
        with pytest.warns(DeprecationWarning, match="run_chase"):
            run = repro.run_chase(g0, rng=0)
        assert run.terminated

    def test_chase_outputs_warns(self, g0):
        with pytest.warns(DeprecationWarning, match="chase_outputs"):
            outputs = list(repro.chase_outputs(g0, None, 3, rng=0))
        assert len(outputs) == 3

    def test_apply_to_pdb_warns(self, g0):
        prior = repro.compile(g0).on().exact().pdb
        follow = repro.Program.parse("S(x) :- R(x).",
                                     extensional=("R",))
        with pytest.warns(DeprecationWarning, match="apply_to_pdb"):
            repro.apply_to_pdb(follow, prior)

    def test_spdb_mass_report_warns(self, g0):
        with pytest.warns(DeprecationWarning,
                          match="spdb_mass_report"):
            reports = repro.spdb_mass_report(g0, budgets=(4,))
        assert reports[0].instance_mass == pytest.approx(1.0)

    def test_condition_exact_warns(self, g0):
        event = ContainsFactEvent(repro.Fact("R", (1,)))
        with pytest.warns(DeprecationWarning, match="condition_exact"):
            posterior = repro.condition_exact(g0, None, [event])
        assert posterior.total_mass() == pytest.approx(1.0)

    def test_condition_by_rejection_warns(self, g0):
        event = ContainsFactEvent(repro.Fact("R", (1,)))
        with pytest.warns(DeprecationWarning,
                          match="condition_by_rejection"):
            result = repro.condition_by_rejection(g0, None, [event],
                                                  n=100, rng=0)
        assert result.n_accepted > 0

    def test_likelihood_weighting_warns(self):
        program = repro.Program.parse("A(Flip<0.4>) :- true.")
        with pytest.warns(DeprecationWarning,
                          match="likelihood_weighting"):
            result = repro.likelihood_weighting(
                program, None, [observe("A", 1)], n=50, rng=0)
        assert result.posterior.n_worlds == 50

    def test_facade_emits_no_deprecation_warnings(self, earthquake):
        program, instance = earthquake
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            compiled = repro.compile(program)
            session = compiled.on(instance, seed=0)
            session.sample(20)
            session.exact()
            session.observe(
                ContainsFactEvent(repro.Fact("Alarm", ("h1",)))
            ).posterior(method="exact")
            compiled.analyze()
