"""Tests for aggregate queries (repro.query.aggregates)."""

import pytest

from repro.errors import SchemaError
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.query.aggregates import (Aggregate, agg_avg, agg_count,
                                    agg_max, agg_min, agg_sum, agg_var,
                                    aggregate_value)
from repro.query.relalg import scan


@pytest.fixture
def heights():
    return Instance.from_dict({
        "Height": [("a", "NL", 180.0), ("b", "NL", 190.0),
                   ("c", "PE", 160.0), ("d", "PE", 170.0),
                   ("e", "PE", 165.0)],
    })


def height_scan():
    return scan("Height", "person", "country", "cm")


class TestUngroupedAggregates:
    def test_count(self, heights):
        q = Aggregate(height_scan(), (), {"n": agg_count()})
        assert aggregate_value(q, heights) == 5

    def test_sum_and_avg(self, heights):
        q = Aggregate(height_scan(), (),
                      {"total": agg_sum("cm"), "mean": agg_avg("cm")})
        relation = q.evaluate(heights)
        row = next(iter(relation.rows))
        assert row[relation.column_index("total")] == \
            pytest.approx(865.0)
        assert row[relation.column_index("mean")] == pytest.approx(173.0)

    def test_min_max(self, heights):
        q = Aggregate(height_scan(), (),
                      {"lo": agg_min("cm"), "hi": agg_max("cm")})
        relation = q.evaluate(heights)
        row = next(iter(relation.rows))
        assert row[relation.column_index("lo")] == 160.0
        assert row[relation.column_index("hi")] == 190.0

    def test_var(self, heights):
        q = Aggregate(height_scan().where(country="NL"), (),
                      {"v": agg_var("cm")})
        assert aggregate_value(q, heights) == pytest.approx(25.0)

    def test_empty_input_count_zero(self):
        q = Aggregate(height_scan(), (), {"n": agg_count()})
        assert aggregate_value(q, Instance.empty()) == 0

    def test_empty_input_avg_errors(self):
        q = Aggregate(height_scan(), (), {"m": agg_avg("cm")})
        with pytest.raises(SchemaError):
            aggregate_value(q, Instance.empty())


class TestGroupedAggregates:
    def test_group_by_country(self, heights):
        q = Aggregate(height_scan(), ("country",),
                      {"mean": agg_avg("cm")})
        relation = q.evaluate(heights)
        values = dict(relation.rows)
        assert values["NL"] == pytest.approx(185.0)
        assert values["PE"] == pytest.approx(165.0)

    def test_group_count(self, heights):
        q = Aggregate(height_scan(), ("country",), {"n": agg_count()})
        assert dict(q.evaluate(heights).rows) == {"NL": 2, "PE": 3}

    def test_group_columns_first(self, heights):
        q = Aggregate(height_scan(), ("country",),
                      {"n": agg_count(), "m": agg_avg("cm")})
        assert q.evaluate(heights).columns == ("country", "n", "m")


class TestAggregateValue:
    def test_requires_single_row(self, heights):
        q = Aggregate(height_scan(), ("country",), {"n": agg_count()})
        with pytest.raises(SchemaError):
            aggregate_value(q, heights)

    def test_ambiguous_column(self, heights):
        q = Aggregate(height_scan(), (),
                      {"a": agg_count(), "b": agg_count()})
        with pytest.raises(SchemaError):
            aggregate_value(q, heights)
        assert aggregate_value(q, heights, column="a") == 5

    def test_no_aggregates_rejected(self, heights):
        with pytest.raises(SchemaError):
            Aggregate(height_scan(), (), {})
