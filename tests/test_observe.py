"""Tests for likelihood weighting (repro.core.observe)."""

import math

import numpy as np
import pytest

from repro.core.constraints import condition_exact
from repro.core.observe import (Observation, likelihood_weighting,
                                observe)
from repro.core.program import Program
from repro.errors import MeasureError, ValidationError
from repro.measures.empirical import summarize
from repro.pdb.events import ContainsFactEvent
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.pdb.weighted import WeightedPDB


class TestObservationConstruction:
    def test_observe_helper(self):
        observation = observe("PHeight", "ada", 172.5)
        assert observation.relation == "PHeight"
        assert observation.carried == ("ada",)
        assert observation.value == 172.5

    def test_value_normalization(self):
        assert observe("R", True).value == 1

    def test_needs_value(self):
        with pytest.raises(ValidationError):
            observe("R")

    def test_unknown_relation_rejected(self):
        program = Program.parse("A(Flip<0.5>) :- true.")
        with pytest.raises(ValidationError, match="no random rule"):
            likelihood_weighting(program, None,
                                 [observe("Nope", 1)], n=10, rng=0)


class TestDiscreteAgreesWithExactConditioning:
    def test_two_coin_posterior(self):
        program = Program.parse("""
            A(Flip<0.3>) :- true.
            B(Flip<0.5>) :- A(1).
        """)
        # Observe A's sample = 1.
        result = likelihood_weighting(program, None,
                                      [observe("A", 1)], n=3000, rng=0)
        exact = condition_exact(program, None,
                                [ContainsFactEvent(Fact("A", (1,)))])
        estimate = result.posterior.prob(
            lambda D: Fact("B", (1,)) in D)
        assert abs(estimate - exact.marginal(Fact("B", (1,)))) < 0.04
        # Weights are the evidence likelihood: mean weight ≈ P(A=1).
        assert abs(result.mean_weight - 0.3) < 1e-9

    def test_observation_weight_is_constant_for_root_samples(self):
        program = Program.parse("A(Flip<0.25>) :- true.")
        result = likelihood_weighting(program, None,
                                      [observe("A", 1)], n=50, rng=1)
        assert all(w == pytest.approx(0.25)
                   for w in result.posterior.weights)
        assert all(Fact("A", (1,)) in world
                   for world in result.posterior.worlds)

    def test_carried_values_select_the_sample(self):
        program = Program.parse("Quake(c, Flip<r>) :- City(c, r).")
        data = Instance.of(Fact("City", ("n", 0.5)),
                           Fact("City", ("d", 0.5)))
        result = likelihood_weighting(
            program, data, [observe("Quake", "n", 1)], n=500, rng=2)
        # Observed city pinned; the other stays random.
        assert result.posterior.prob(
            lambda D: Fact("Quake", ("n", 1)) in D) == 1.0
        other = result.posterior.prob(
            lambda D: Fact("Quake", ("d", 1)) in D)
        assert abs(other - 0.5) < 0.1

    def test_impossible_discrete_evidence(self):
        program = Program.parse("A(Flip<1.0>) :- true.")
        with pytest.raises(MeasureError, match="zero"):
            likelihood_weighting(program, None, [observe("A", 0)],
                                 n=20, rng=3)


class TestContinuousPosterior:
    def test_normal_normal_update(self):
        # Mu ~ N(0,1); X ~ N(Mu, 1); observe X = 2.
        # Posterior: Mu | X=2 ~ N(1, 1/2)  (textbook conjugate update).
        program = Program.parse("""
            Mu(Normal<0, 1>) :- true.
            X(Normal<m, 1>) :- Mu(m).
        """)
        result = likelihood_weighting(program, None,
                                      [observe("X", 2.0)],
                                      n=20_000, rng=4)
        assert result.effective_sample_size > 2000
        mean = result.posterior.weighted_mean(
            lambda D: [f.args[0] for f in D.facts_of("Mu")])
        assert abs(mean - 1.0) < 0.05
        second_moment = result.posterior.expectation(
            lambda D: next(iter(D.facts_of("Mu"))).args[0] ** 2)
        variance = second_moment - mean ** 2
        assert abs(variance - 0.5) < 0.05

    def test_evidence_density_in_weights(self):
        program = Program.parse("X(Normal<0, 1>) :- true.")
        result = likelihood_weighting(program, None,
                                      [observe("X", 0.0)], n=30, rng=5)
        peak = 1.0 / math.sqrt(2 * math.pi)
        assert all(w == pytest.approx(peak)
                   for w in result.posterior.weights)


class TestWeightedPDB:
    def test_self_normalization(self):
        worlds = [Instance.of(Fact("R", (1,))),
                  Instance.of(Fact("R", (0,)))]
        pdb = WeightedPDB(worlds, [3.0, 1.0])
        assert pdb.prob(lambda D: Fact("R", (1,)) in D) == \
            pytest.approx(0.75)
        assert pdb.total_mass() == 1.0

    def test_zero_weights_rejected_if_all_zero(self):
        worlds = [Instance.of(Fact("R", (1,)))]
        with pytest.raises(MeasureError):
            WeightedPDB(worlds, [0.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(MeasureError):
            WeightedPDB([Instance.empty()], [-1.0])

    def test_effective_sample_size(self):
        pdb = WeightedPDB([Instance.empty()] * 4, [1.0] * 4)
        assert pdb.effective_sample_size() == pytest.approx(4.0)
        skewed = WeightedPDB([Instance.empty()] * 4,
                             [1.0, 0.0, 0.0, 0.0])
        assert skewed.effective_sample_size() == pytest.approx(1.0)

    def test_to_discrete_merges(self):
        a = Instance.of(Fact("R", (1,)))
        pdb = WeightedPDB([a, a], [1.0, 3.0])
        exact = pdb.to_discrete()
        assert exact.prob_of_instance(a) == pytest.approx(1.0)

    def test_map_worlds(self):
        a = Instance.of(Fact("R", (1,)), Fact("Aux", (0,)))
        pdb = WeightedPDB([a], [2.0]).map_worlds(
            lambda D: D.restrict(["R"]))
        assert pdb.worlds[0].relations() == ("R",)

    def test_expectation(self):
        worlds = [Instance.of(Fact("R", (1,))),
                  Instance.of(Fact("R", (0,)), Fact("S", (0,)))]
        pdb = WeightedPDB(worlds, [1.0, 1.0])
        assert pdb.expectation(len) == pytest.approx(1.5)
