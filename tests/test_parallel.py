"""Tests for the parallel chase (Section 5)."""

import numpy as np
import pytest

from repro.core.fd import check_all_fds
from repro.core.parallel import (firing_configuration,
                                 parallel_markov_process,
                                 parallel_step_kernel,
                                 run_parallel_chase)
from repro.core.program import Program
from repro.core.translate import translate, translate_barany
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads import paper
from repro.workloads.generators import (bernoulli_grid_program,
                                        items_instance)


class TestRunParallelChase:
    def test_wide_fanout_single_step(self):
        # All n flips fire in one parallel step; then n companions.
        program = bernoulli_grid_program()
        D = items_instance(10)
        run = run_parallel_chase(program, D, rng=0, record_trace=True)
        assert run.terminated
        assert run.steps == 2
        assert len(run.instance.facts_of("Out")) == 10

    def test_sequential_equivalent_instance_support(self, g0):
        # Parallel and sequential runs both produce R-worlds from the
        # same support {R(0)},{R(1)},{R(0),R(1)}.
        seen = set()
        for seed in range(40):
            run = run_parallel_chase(g0, rng=seed)
            assert run.terminated
            values = frozenset(
                f.args[0] for f in run.instance.facts_of("R"))
            seen.add(values)
        assert seen == {frozenset({0}), frozenset({1}),
                        frozenset({0, 1})}

    def test_fd_never_violated(self):
        # Projected body variables must not cause double-sampling.
        program = Program.parse("R(x, Flip<0.5>) :- S(x, z).")
        translated = translate(program)
        D = Instance.of(Fact("S", (1, "a")), Fact("S", (1, "b")),
                        Fact("S", (2, "a")))
        for seed in range(20):
            run = run_parallel_chase(translated, D, rng=seed)
            assert run.terminated
            assert check_all_fds(translated, run.instance)
            assert len(run.instance.facts_of("R")) == 2

    def test_barany_shared_sample_fd(self, g0):
        # Under the Bárány translation both rules share one auxiliary;
        # the parallel chase must fire it exactly once.
        translated = translate_barany(g0)
        for seed in range(20):
            run = run_parallel_chase(translated, rng=seed)
            assert run.terminated
            assert check_all_fds(translated, run.instance)
            assert len(run.instance.facts_of("R")) == 1

    def test_truncation(self):
        program = paper.continuous_feedback_program()
        D = Instance.of(Fact("Seed", (0,)))
        run = run_parallel_chase(program, D, rng=1, max_steps=10)
        assert not run.terminated

    def test_earthquake_terminates(self, earthquake_program,
                                   earthquake_instance):
        run = run_parallel_chase(earthquake_program,
                                 earthquake_instance, rng=3)
        assert run.terminated
        assert run.instance.facts_of("Unit")


class TestFiringConfiguration:
    def test_configuration_counts(self):
        program = bernoulli_grid_program()
        translated = translate(program)
        D = items_instance(4)
        config = firing_configuration(translated, D)
        ext_index = translated.existential_rules()[0].index
        assert config[ext_index] == 4

    def test_empty_configuration_when_stable(self):
        program = Program.parse("A(x) :- B(x).")
        stable = Instance.of(Fact("B", (1,)), Fact("A", (1,)))
        assert firing_configuration(program, stable) == {}


class TestParallelKernel:
    def test_step_extends_all(self):
        program = bernoulli_grid_program()
        kernel = parallel_step_kernel(program)
        rng = np.random.default_rng(0)
        D1 = kernel.sample(items_instance(5), rng)
        # 5 aux facts in one step.
        assert len(D1) == 10

    def test_identity_on_stable(self):
        program = Program.parse("A(x) :- B(x).")
        kernel = parallel_step_kernel(program)
        stable = Instance.of(Fact("B", (1,)), Fact("A", (1,)))
        rng = np.random.default_rng(0)
        assert kernel.sample(stable, rng) == stable

    def test_markov_process_absorbs(self, g0):
        process = parallel_markov_process(g0)
        rng = np.random.default_rng(2)
        path = process.sample_path(Instance.empty(), rng, 10)
        assert path.absorbed
        # Parallel chase of G0 finishes in 2 levels.
        assert path.steps == 2
