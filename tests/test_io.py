"""Tests for program/instance file I/O (repro.io)."""

import pytest

from repro.errors import SchemaError
from repro.io import (load_instance_args, load_instance_csv,
                      load_instance_json, load_program,
                      load_relation_csv, parse_relation_spec,
                      parse_value, save_instance_csv,
                      save_instance_json, save_program)
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads import paper


@pytest.fixture
def instance():
    return Instance.from_dict({
        "City": [("Napa", 0.03), ("Davis", 0.01)],
        "Flag": [(1,), (0,)],
    })


class TestParseValue:
    def test_int(self):
        assert parse_value("42") == 42 and isinstance(
            parse_value("42"), int)

    def test_float(self):
        assert parse_value("0.5") == 0.5

    def test_scientific(self):
        assert parse_value("1e-3") == 0.001

    def test_string(self):
        assert parse_value("Napa") == "Napa"

    def test_booleans(self):
        assert parse_value("true") == 1
        assert parse_value("False") == 0

    def test_whitespace_stripped(self):
        assert parse_value("  7 ") == 7


class TestCsvRoundTrip:
    def test_save_and_load(self, tmp_path, instance):
        written = save_instance_csv(instance, tmp_path)
        assert set(written) == {"City", "Flag"}
        loaded = load_instance_csv(
            {rel: path for rel, path in written.items()})
        assert loaded == instance

    def test_load_relation_csv(self, tmp_path):
        path = tmp_path / "edge.csv"
        path.write_text("1,2\n2,3\n")
        facts = load_relation_csv(path, "Edge")
        assert Fact("Edge", (1, 2)) in facts and len(facts) == 2

    def test_skip_header(self, tmp_path):
        path = tmp_path / "city.csv"
        path.write_text("name,rate\nNapa,0.03\n")
        facts = load_relation_csv(path, "City", skip_header=True)
        assert facts == [Fact("City", ("Napa", 0.03))]

    def test_empty_lines_ignored(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("1\n\n2\n")
        assert len(load_relation_csv(path, "R")) == 2


class TestJsonRoundTrip:
    def test_save_and_load(self, tmp_path, instance):
        path = tmp_path / "db.json"
        save_instance_json(instance, path)
        assert load_instance_json(path) == instance

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(SchemaError):
            load_instance_json(path)


class TestProgramFiles:
    def test_save_and_load(self, tmp_path, g0):
        path = tmp_path / "g0.gdl"
        save_program(g0, path)
        assert load_program(path).rules == g0.rules

    def test_load_paper_program(self, tmp_path):
        path = tmp_path / "quake.gdl"
        path.write_text(paper.EARTHQUAKE_PROGRAM_TEXT)
        program = load_program(path)
        assert len(program) == 7


class TestCliSpecs:
    def test_parse_relation_spec(self):
        assert parse_relation_spec("City=data/city.csv") == \
            ("City", "data/city.csv")
        with pytest.raises(SchemaError):
            parse_relation_spec("no-equals")
        with pytest.raises(SchemaError):
            parse_relation_spec("=path")

    def test_load_instance_args_mixed(self, tmp_path, instance):
        json_path = tmp_path / "db.json"
        save_instance_json(instance.restrict(["Flag"]), json_path)
        csv_paths = save_instance_csv(instance.restrict(["City"]),
                                      tmp_path)
        loaded = load_instance_args(
            [str(json_path), f"City={csv_paths['City']}"])
        assert loaded == instance
