"""Tests for App and its engines (Section 3.3)."""

import numpy as np
import pytest

from repro.core.applicability import (IncrementalApplicability,
                                      NaiveApplicability,
                                      OverlayApplicability,
                                      applicable_pairs, overlay_fork)
from repro.core.chase import fire
from repro.core.program import Program
from repro.core.translate import translate, translate_barany
from repro.engine.matching import IndexedSource
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


@pytest.fixture
def simple_translated():
    return translate(Program.parse("R(x, Flip<0.5>) :- B(x)."))


class TestApplicablePairs:
    def test_body_must_hold(self, simple_translated):
        assert applicable_pairs(simple_translated, Instance.empty()) == []

    def test_existential_firing(self, simple_translated):
        D = Instance.of(Fact("B", (1,)))
        firings = applicable_pairs(simple_translated, D)
        assert len(firings) == 1
        assert firings[0].existential
        assert firings[0].values == (1, 0.5)

    def test_head_satisfaction_disables(self, simple_translated):
        aux = simple_translated.existential_rules()[0].aux_relation
        D = Instance.of(Fact("B", (1,)), Fact(aux, (1, 0.5, 0)))
        firings = applicable_pairs(simple_translated, D)
        # The existential for B(1) is settled; only the companion rule
        # (propagating the sample into R) remains applicable.
        assert len(firings) == 1
        assert not firings[0].existential
        assert firings[0].relation == "R"

    def test_det_head_satisfaction(self):
        translated = translate(Program.parse("A(x) :- B(x)."))
        D = Instance.of(Fact("B", (1,)), Fact("A", (1,)))
        assert applicable_pairs(translated, D) == []

    def test_projection_collapses_duplicates(self):
        # Body variable z is projected away; one firing per head key.
        translated = translate(Program.parse("R(x, Flip<0.5>) :- "
                                             "S(x, z)."))
        D = Instance.of(Fact("S", (1, "a")), Fact("S", (1, "b")))
        firings = applicable_pairs(translated, D)
        assert len([f for f in firings if f.existential]) == 1

    def test_barany_dedupes_across_rules(self, g0):
        translated = translate_barany(g0)
        firings = applicable_pairs(translated, Instance.empty())
        # Both rules share the same (distribution, params) key.
        assert len(firings) == 1

    def test_grohe_keeps_duplicate_rules_distinct(self, g0):
        translated = translate(g0)
        firings = applicable_pairs(translated, Instance.empty())
        assert len(firings) == 2

    def test_canonical_order(self, simple_translated):
        D = Instance.of(Fact("B", (3,)), Fact("B", (1,)), Fact("B", (2,)))
        firings = applicable_pairs(simple_translated, D)
        assert [f.values[0] for f in firings] == [1, 2, 3]


class TestIncrementalEngine:
    def agreement_program(self):
        return translate(Program.parse("""
            Earthquake(c, Flip<0.1>) :- City(c, r).
            Unit(h, c) :- House(h, c).
            Trig(x, Flip<0.6>) :- Unit(x, c), Earthquake(c, 1).
            Alarm(x) :- Trig(x, 1).
        """))

    def test_agrees_with_naive_along_chase(self):
        translated = self.agreement_program()
        D = Instance.of(Fact("City", ("n", 0.05)),
                        Fact("House", ("h1", "n")),
                        Fact("House", ("h2", "n")))
        incremental = IncrementalApplicability(translated, D)
        naive = NaiveApplicability(translated, D)
        rng = np.random.default_rng(0)
        for _ in range(30):
            a = incremental.applicable()
            b = naive.applicable()
            assert a == b
            if not a:
                break
            new_fact = fire(translated, a[0], rng)
            incremental.add_fact(new_fact)
            naive.add_fact(new_fact)
        else:
            pytest.fail("chase did not terminate in 30 steps")

    def test_fork_isolation(self, simple_translated):
        D = Instance.of(Fact("B", (1,)))
        engine = IncrementalApplicability(simple_translated, D)
        fork = engine.fork()
        aux = simple_translated.existential_rules()[0].aux_relation
        fork.add_fact(Fact(aux, (1, 0.5, 1)))
        assert len(engine.applicable()) == 1
        # fork's existential settled; companion now applicable there
        fork_firings = fork.applicable()
        assert all(not f.existential for f in fork_firings)

    def test_duplicate_fact_ignored(self, simple_translated):
        D = Instance.of(Fact("B", (1,)))
        engine = IncrementalApplicability(simple_translated, D)
        before = engine.applicable()
        engine.add_fact(Fact("B", (1,)))
        assert engine.applicable() == before

    def test_has_applicable(self, simple_translated):
        engine = IncrementalApplicability(simple_translated,
                                          Instance.empty())
        assert not engine.has_applicable()
        engine.add_fact(Fact("B", (7,)))
        assert engine.has_applicable()


def _make_engine(kind, translated, instance):
    if kind == "naive":
        return NaiveApplicability(translated, instance)
    if kind == "incremental":
        return IncrementalApplicability(translated, instance)
    assert kind == "overlay"
    return overlay_fork(IncrementalApplicability(translated, instance))


CASCADE_TEXT = """
    Earthquake(c, Flip<0.1>) :- City(c, r).
    Unit(h, c) :- House(h, c).
    Trig(x, Flip<0.6>) :- Unit(x, c), Earthquake(c, 1).
    Alarm(x) :- Trig(x, 1).
"""


class TestForkIsolation:
    """fork() is part of the engine API: forks never share mutations.

    The property is exercised across all three engines on a chase-like
    mutation sequence: mutating a child must never leak into the
    parent or a sibling, and mutating the parent (where the engine
    permits it - overlays freeze their base by contract) must never
    leak into a child.
    """

    ENGINES = ("naive", "incremental", "overlay")

    def _cascade(self):
        translated = translate(Program.parse(CASCADE_TEXT))
        instance = Instance.of(Fact("City", ("n", 0.05)),
                               Fact("House", ("h1", "n")),
                               Fact("House", ("h2", "n")))
        return translated, instance

    @pytest.mark.parametrize("kind", ENGINES)
    def test_child_mutations_never_leak(self, kind):
        translated, instance = self._cascade()
        parent = _make_engine(kind, translated, instance)
        before = parent.applicable()
        children = [parent.fork() for _ in range(3)]
        # Drive each child down a different chase path.
        for offset, child in enumerate(children):
            child_rng = np.random.default_rng(offset)
            for _ in range(4 + offset):
                applicable = child.applicable()
                if not applicable:
                    break
                child.add_fact(fire(translated, applicable[0],
                                    child_rng))
        # The parent saw none of it...
        assert parent.applicable() == before
        assert parent.instance() == instance
        # ...and the siblings diverged independently: replaying child
        # 0's mutations again from a fresh fork gives the same state,
        # proving no sibling contaminated it.
        replay = parent.fork()
        replay_rng = np.random.default_rng(0)
        for _ in range(4):
            applicable = replay.applicable()
            if not applicable:
                break
            replay.add_fact(fire(translated, applicable[0], replay_rng))
        assert replay.applicable() == children[0].applicable()
        assert replay.instance() == children[0].instance()

    @pytest.mark.parametrize("kind", ("naive", "incremental"))
    def test_parent_mutations_never_leak_into_child(self, kind):
        # Overlays are excluded by design: their base engine is frozen
        # by contract for as long as any overlay of it is alive.
        translated, instance = self._cascade()
        parent = _make_engine(kind, translated, instance)
        child = parent.fork()
        before = child.applicable()
        rng = np.random.default_rng(7)
        for _ in range(5):
            applicable = parent.applicable()
            if not applicable:
                break
            parent.add_fact(fire(translated, applicable[0], rng))
        assert child.applicable() == before
        assert child.instance() == instance

    @pytest.mark.parametrize("kind", ENGINES)
    def test_forks_agree_with_fresh_engines(self, kind):
        # A fork is semantically a fresh engine on the same instance.
        translated, instance = self._cascade()
        fork = _make_engine(kind, translated, instance).fork()
        fresh = NaiveApplicability(translated, instance)
        assert fork.applicable() == fresh.applicable()
        fact = Fact("House", ("h3", "n"))
        fork.add_fact(fact)
        fresh.add_fact(fact)
        assert fork.applicable() == fresh.applicable()

    def test_overlay_fork_is_delta_sized(self):
        # The overlay must not copy the base engine's index: its delta
        # starts empty no matter how large the closed instance is.
        translated, instance = self._cascade()
        base = IncrementalApplicability(translated, instance)
        overlay = overlay_fork(base)
        assert isinstance(overlay, OverlayApplicability)
        assert len(overlay._delta) == 0
        assert overlay._source.base is base.source
        overlay.add_fact(Fact("House", ("h9", "n")))
        assert len(overlay._delta) == 1
        # Forking the overlay flattens onto the same frozen base.
        grandchild = overlay.fork()
        assert grandchild._source.base is base.source
        assert len(grandchild._delta) == 1

    def test_overlay_agrees_with_incremental_along_chase(self):
        translated, instance = self._cascade()
        base = IncrementalApplicability(translated, instance)
        overlay = overlay_fork(base)
        reference = IncrementalApplicability(translated, instance)
        rng = np.random.default_rng(3)
        for _ in range(30):
            a = overlay.applicable()
            b = reference.applicable()
            assert a == b
            if not a:
                break
            new_fact = fire(translated, a[0], rng)
            overlay.add_fact(new_fact)
            reference.add_fact(new_fact)
        else:
            pytest.fail("chase did not terminate in 30 steps")
        assert overlay.instance() == reference.instance()


class TestPrebuiltSourceValidation:
    """The prebuilt-source path validates *content*, not just count."""

    def _translated(self):
        return translate(Program.parse("R(x, Flip<0.5>) :- B(x)."))

    def test_matching_source_accepted(self):
        translated = self._translated()
        instance = Instance.of(Fact("B", (1,)), Fact("B", (2,)))
        source = IndexedSource(instance.facts)
        engine = IncrementalApplicability(translated, instance,
                                          source=source)
        assert len(engine.applicable()) == 2

    def test_wrong_count_rejected(self):
        translated = self._translated()
        instance = Instance.of(Fact("B", (1,)))
        source = IndexedSource([Fact("B", (1,)), Fact("B", (2,))])
        with pytest.raises(ValueError):
            IncrementalApplicability(translated, instance,
                                     source=source)

    def test_same_count_content_mismatch_rejected(self):
        # The regression this pins: a same-size but content-mismatched
        # source used to pass the count-only check and silently corrupt
        # body matching.
        translated = self._translated()
        instance = Instance.of(Fact("B", (1,)), Fact("B", (2,)))
        source = IndexedSource([Fact("B", (1,)), Fact("B", (99,))])
        with pytest.raises(ValueError):
            IncrementalApplicability(translated, instance,
                                     source=source)


class TestFiringObject:
    def test_fact_construction(self, simple_translated):
        D = Instance.of(Fact("B", (1,)))
        firing = applicable_pairs(simple_translated, D)[0]
        f = firing.fact(sampled=1)
        assert f.args == (1, 0.5, 1)

    def test_sort_key_deterministic(self, simple_translated):
        D = Instance.of(Fact("B", (2,)), Fact("B", (1,)))
        once = applicable_pairs(simple_translated, D)
        again = applicable_pairs(simple_translated, D)
        assert once == again
