"""Tests for App and its engines (Section 3.3)."""

import numpy as np
import pytest

from repro.core.applicability import (IncrementalApplicability,
                                      NaiveApplicability,
                                      applicable_pairs)
from repro.core.chase import fire
from repro.core.program import Program
from repro.core.translate import translate, translate_barany
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


@pytest.fixture
def simple_translated():
    return translate(Program.parse("R(x, Flip<0.5>) :- B(x)."))


class TestApplicablePairs:
    def test_body_must_hold(self, simple_translated):
        assert applicable_pairs(simple_translated, Instance.empty()) == []

    def test_existential_firing(self, simple_translated):
        D = Instance.of(Fact("B", (1,)))
        firings = applicable_pairs(simple_translated, D)
        assert len(firings) == 1
        assert firings[0].existential
        assert firings[0].values == (1, 0.5)

    def test_head_satisfaction_disables(self, simple_translated):
        aux = simple_translated.existential_rules()[0].aux_relation
        D = Instance.of(Fact("B", (1,)), Fact(aux, (1, 0.5, 0)))
        firings = applicable_pairs(simple_translated, D)
        # The existential for B(1) is settled; only the companion rule
        # (propagating the sample into R) remains applicable.
        assert len(firings) == 1
        assert not firings[0].existential
        assert firings[0].relation == "R"

    def test_det_head_satisfaction(self):
        translated = translate(Program.parse("A(x) :- B(x)."))
        D = Instance.of(Fact("B", (1,)), Fact("A", (1,)))
        assert applicable_pairs(translated, D) == []

    def test_projection_collapses_duplicates(self):
        # Body variable z is projected away; one firing per head key.
        translated = translate(Program.parse("R(x, Flip<0.5>) :- "
                                             "S(x, z)."))
        D = Instance.of(Fact("S", (1, "a")), Fact("S", (1, "b")))
        firings = applicable_pairs(translated, D)
        assert len([f for f in firings if f.existential]) == 1

    def test_barany_dedupes_across_rules(self, g0):
        translated = translate_barany(g0)
        firings = applicable_pairs(translated, Instance.empty())
        # Both rules share the same (distribution, params) key.
        assert len(firings) == 1

    def test_grohe_keeps_duplicate_rules_distinct(self, g0):
        translated = translate(g0)
        firings = applicable_pairs(translated, Instance.empty())
        assert len(firings) == 2

    def test_canonical_order(self, simple_translated):
        D = Instance.of(Fact("B", (3,)), Fact("B", (1,)), Fact("B", (2,)))
        firings = applicable_pairs(simple_translated, D)
        assert [f.values[0] for f in firings] == [1, 2, 3]


class TestIncrementalEngine:
    def agreement_program(self):
        return translate(Program.parse("""
            Earthquake(c, Flip<0.1>) :- City(c, r).
            Unit(h, c) :- House(h, c).
            Trig(x, Flip<0.6>) :- Unit(x, c), Earthquake(c, 1).
            Alarm(x) :- Trig(x, 1).
        """))

    def test_agrees_with_naive_along_chase(self):
        translated = self.agreement_program()
        D = Instance.of(Fact("City", ("n", 0.05)),
                        Fact("House", ("h1", "n")),
                        Fact("House", ("h2", "n")))
        incremental = IncrementalApplicability(translated, D)
        naive = NaiveApplicability(translated, D)
        rng = np.random.default_rng(0)
        for _ in range(30):
            a = incremental.applicable()
            b = naive.applicable()
            assert a == b
            if not a:
                break
            new_fact = fire(translated, a[0], rng)
            incremental.add_fact(new_fact)
            naive.add_fact(new_fact)
        else:
            pytest.fail("chase did not terminate in 30 steps")

    def test_fork_isolation(self, simple_translated):
        D = Instance.of(Fact("B", (1,)))
        engine = IncrementalApplicability(simple_translated, D)
        fork = engine.fork()
        aux = simple_translated.existential_rules()[0].aux_relation
        fork.add_fact(Fact(aux, (1, 0.5, 1)))
        assert len(engine.applicable()) == 1
        # fork's existential settled; companion now applicable there
        fork_firings = fork.applicable()
        assert all(not f.existential for f in fork_firings)

    def test_duplicate_fact_ignored(self, simple_translated):
        D = Instance.of(Fact("B", (1,)))
        engine = IncrementalApplicability(simple_translated, D)
        before = engine.applicable()
        engine.add_fact(Fact("B", (1,)))
        assert engine.applicable() == before

    def test_has_applicable(self, simple_translated):
        engine = IncrementalApplicability(simple_translated,
                                          Instance.empty())
        assert not engine.has_applicable()
        engine.add_fact(Fact("B", (7,)))
        assert engine.has_applicable()


class TestFiringObject:
    def test_fact_construction(self, simple_translated):
        D = Instance.of(Fact("B", (1,)))
        firing = applicable_pairs(simple_translated, D)[0]
        f = firing.fact(sampled=1)
        assert f.args == (1, 0.5, 1)

    def test_sort_key_deterministic(self, simple_translated):
        D = Instance.of(Fact("B", (2,)), Fact("B", (1,)))
        once = applicable_pairs(simple_translated, D)
        again = applicable_pairs(simple_translated, D)
        assert once == again
