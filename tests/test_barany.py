"""Tests for the Section 6.2 inter-semantics simulations."""

import numpy as np
import pytest

from repro.core.barany import (TaggedDistribution,
                               simulation_helper_relations,
                               to_barany_simulation, to_grohe_simulation)
from repro.core.program import Program
from repro.core.semantics import exact_spdb
from repro.distributions.registry import DEFAULT_REGISTRY
from repro.workloads import paper
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


def assert_simulation_faithful(program, instance=None):
    """Core claim of §6.2 in both directions, on exact SPDBs."""
    visible = program.relations()

    target = exact_spdb(program, instance, semantics="barany") \
        .project(visible)
    simulated = exact_spdb(to_grohe_simulation(program), instance,
                           semantics="grohe").project(visible)
    assert simulated.allclose(target), "barany-in-grohe failed"

    target = exact_spdb(program, instance, semantics="grohe") \
        .project(visible)
    rewritten, _registry = to_barany_simulation(program)
    simulated = exact_spdb(rewritten, instance,
                           semantics="barany").project(visible)
    assert simulated.allclose(target), "grohe-in-barany failed"


class TestGroheSimulation:
    def test_h_becomes_h_prime_shape(self, program_h):
        simulated = to_grohe_simulation(program_h)
        helpers = simulation_helper_relations(simulated)
        assert any(name.startswith("BSample#") for name in helpers)
        # Exactly one relay rule for the shared Flip<0.5>.
        relay_rules = [r for r in simulated.rules
                       if r.head.relation.startswith("BSample#")]
        assert len(relay_rules) == 1

    def test_g0(self, g0):
        assert_simulation_faithful(g0)

    def test_g0_prime(self, g0_prime):
        assert_simulation_faithful(g0_prime)

    def test_h(self, program_h):
        assert_simulation_faithful(program_h)

    def test_g_eps(self):
        assert_simulation_faithful(paper.example_1_1_g_eps(0.25))

    def test_program_with_parameters_from_data(self):
        program = Program.parse("""
            Quake(c, Flip<r>) :- City(c, r).
            Shake(c, Flip<r>) :- City(c, r).
        """)
        D = Instance.of(Fact("City", ("n", 0.5)),
                        Fact("City", ("d", 0.25)))
        assert_simulation_faithful(program, D)

    def test_shared_sample_correlates_relations(self):
        # Under [3], Quake and Shake share Flip<r> per parameter r.
        program = Program.parse("""
            Quake(c, Flip<r>) :- City(c, r).
            Shake(c, Flip<r>) :- City(c, r).
        """)
        D = Instance.of(Fact("City", ("n", 0.5)))
        pdb = exact_spdb(program, D, semantics="barany")
        both = pdb.prob(lambda w: Fact("Quake", ("n", 1)) in w
                        and Fact("Shake", ("n", 1)) in w)
        assert both == pytest.approx(0.5)  # perfectly correlated
        pdb = exact_spdb(program, D, semantics="grohe")
        both = pdb.prob(lambda w: Fact("Quake", ("n", 1)) in w
                        and Fact("Shake", ("n", 1)) in w)
        assert both == pytest.approx(0.25)  # independent


class TestTaggedDistribution:
    def test_tag_ignored_by_law(self):
        tagged = TaggedDistribution(DEFAULT_REGISTRY["Flip"])
        assert tagged.density((7, 0.3), 1) == pytest.approx(0.3)
        assert tagged.density((99, 0.3), 1) == pytest.approx(0.3)

    def test_param_arity_extended(self):
        tagged = TaggedDistribution(DEFAULT_REGISTRY["Flip"])
        assert tagged.param_arity == 2
        tagged.validate_params(("tag", 0.5))

    def test_sampling(self):
        tagged = TaggedDistribution(DEFAULT_REGISTRY["Flip"])
        rng = np.random.default_rng(0)
        samples = [tagged.sample((0, 0.9), rng) for _ in range(200)]
        assert np.mean(samples) > 0.75

    def test_support_and_moments_delegate(self):
        tagged = TaggedDistribution(DEFAULT_REGISTRY["Flip"])
        assert list(tagged.support((0, 0.5))) == [0, 1]
        assert tagged.mean((0, 0.5)) == pytest.approx(0.5)
        assert tagged.support_is_finite((0, 0.5))


class TestBaranySimulation:
    def test_tags_separate_rules(self, g0):
        rewritten, registry = to_barany_simulation(g0)
        terms = [rule.single_random_term()[1]
                 for rule in rewritten.rules]
        assert terms[0].params[0] != terms[1].params[0]
        assert "FlipTagged" in registry

    def test_registry_reuse_single_wrapper(self, g0):
        rewritten, registry = to_barany_simulation(g0)
        distributions = {rule.single_random_term()[1].distribution
                         for rule in rewritten.rules}
        assert len(distributions) == 1

    def test_earthquake_simulation(self):
        program = paper.example_3_4_program()
        instance = paper.example_3_4_instance(
            cities={"n": 0.25}, houses={"h": "n"}, businesses={})
        assert_simulation_faithful(program, instance)
