"""Tests for the static analyzer (repro.analysis).

Three layers under test: the lint diagnostics, the engine-capability
predictions (differentially, against what the engines actually do on
the paper's example programs), and the surfaces - ``Session.analyze
(deep=True)``, the ``repro lint`` CLI subcommand and the server's
pre-flight hook.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis import (FATAL_CODES, DeepReport, capability_report,
                            deep_analyze, fatal_diagnostics,
                            lint_program)
from repro.api import compile as compile_program
from repro.cli import main
from repro.core.atoms import Atom
from repro.core.observe import observe
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.terms import Const, RandomTerm
from repro.core.termination import position_graph
from repro.distributions import DEFAULT_REGISTRY
from repro.errors import StreamingUnsupported
from repro.pdb.instances import Instance
from repro.serving import ProgramServer
from repro.testing import FuzzCase, StaticDynamicOracle, run_fuzz
from repro.testing import runner as runner_module
from repro.workloads import paper


def lint(text: str, instance: Instance | None = None, **kwargs):
    return lint_program(Program.parse(text), instance=instance,
                        **kwargs)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def invalid_flip_program() -> Program:
    """``R(Flip<1.5>) :- true.`` built past the constructor guard.

    The parser validates constant parameters against Θ eagerly, so a
    statically-invalid program can only reach the linter through a
    channel that skipped :class:`RandomTerm` construction (e.g. a
    hand-built AST); the lint check is the defense-in-depth layer.
    """
    term = RandomTerm.__new__(RandomTerm)
    term.distribution = DEFAULT_REGISTRY["Flip"]
    term.params = (Const(1.5),)
    return Program([Rule(Atom("R", (term,)), [])])


# ---------------------------------------------------------------------------
# Lint checks
# ---------------------------------------------------------------------------

class TestLintChecks:
    def test_clean_program_is_clean(self):
        report = lint("Out(x) :- In(x).")
        assert report.ok() and report.ok("warning")
        # The only acceptable finding is the output-relation notice.
        assert {d.code for d in report.diagnostics} \
            <= {"write-only-relation"}

    def test_unused_variable(self):
        report = lint("Out(x) :- In(x), Other(y).")
        codes = [d.code for d in report.diagnostics]
        assert "unused-variable" in codes
        finding = report.by_code("unused-variable")[0]
        assert finding.subject == "y"
        assert finding.rule_index == 0

    def test_invalid_distribution_params_is_fatal(self):
        program = invalid_flip_program()
        report = lint_program(program)
        errors = report.by_code("invalid-distribution-params")
        assert errors and errors[0].severity == "error"
        assert "invalid-distribution-params" in FATAL_CODES
        assert fatal_diagnostics(program)

    def test_valid_params_are_not_fatal(self):
        assert not fatal_diagnostics(
            Program.parse("R(Flip<0.5>) :- true."))

    def test_duplicate_rule_alpha_equivalence(self):
        report = lint("Out(x) :- In(x).\nOut(y) :- In(y).")
        assert report.by_code("duplicate-rule")

    def test_write_only_relation(self):
        report = lint("Dead(x) :- In(x).\nLive(x) :- In(x).\n"
                      "Out(x) :- Live(x).")
        subjects = {d.subject
                    for d in report.by_code("write-only-relation")}
        # Dead and Out are both never read; both are flagged (the
        # hint says outputs are fine).
        assert "Dead" in subjects

    def test_unreachable_rule_on_instance(self):
        report = lint("Out(x) :- In(x), Missing(x).",
                      instance=Instance.from_dict({"In": [(1,)]}))
        assert report.by_code("unreachable-rule") \
            or report.by_code("empty-relation")

    def test_constant_foldable_param(self):
        report = lint(
            "Quake(c, Flip<r>) :- City(c, r).",
            instance=Instance.from_dict(
                {"City": [("napa", 0.1), ("davis", 0.1)]}))
        assert report.by_code("constant-foldable-param")

    def test_non_foldable_param_not_flagged(self):
        report = lint(
            "Quake(c, Flip<r>) :- City(c, r).",
            instance=Instance.from_dict(
                {"City": [("napa", 0.1), ("davis", 0.3)]}))
        assert not report.by_code("constant-foldable-param")


class TestWitnessCycles:
    """Weak-acyclicity witnesses replay against the position graph."""

    def replay(self, program: Program, semantics: str = "grohe"):
        compiled = compile_program(program, semantics=semantics)
        report = lint_program(program, semantics=semantics,
                              translated=compiled.translated)
        findings = report.by_code("weak-acyclicity-violation")
        assert findings, "expected a weak-acyclicity violation"
        graph = position_graph(compiled.translated)
        for finding in findings:
            cycle = [tuple(node) for node in finding.witness_cycle]
            assert len(cycle) >= 3
            assert cycle[0] == cycle[-1], "witness must close"
            # First hop is the special (existential) edge ...
            first = graph.get_edge_data(cycle[0], cycle[1])
            assert first is not None
            assert any(data["special"] for data in first.values())
            # ... and every later hop is a plain dataflow edge.
            for source, target in zip(cycle[1:], cycle[2:]):
                edges = graph.get_edge_data(source, target)
                assert edges is not None
                assert any(not data["special"]
                           for data in edges.values())
        return findings

    def test_continuous_cycle_is_error(self):
        findings = self.replay(paper.continuous_feedback_program())
        assert all(f.severity == "error" for f in findings)

    def test_discrete_cycle_is_warning(self):
        findings = self.replay(paper.discrete_cycle_program())
        assert all(f.severity == "warning" for f in findings)


# ---------------------------------------------------------------------------
# Capability predictions vs the engines (the acceptance programs)
# ---------------------------------------------------------------------------

def deep(program: Program, instance: Instance | None = None,
         semantics: str = "grohe") -> DeepReport:
    compiled = compile_program(program, semantics=semantics)
    return deep_analyze(compiled.translated, instance=instance,
                        termination=compiled.analyze())


class TestCapabilitiesMatchRuntime:
    def test_example_3_4_batched_and_columnar(self):
        program = paper.example_3_4_program()
        instance = paper.example_3_4_instance()
        report = deep(program, instance)
        caps = report.capabilities
        assert caps.weakly_acyclic
        assert caps.batched.eligible
        assert caps.columnar_lift.eligible
        assert set(caps.stable_relations) >= {"City", "House",
                                              "Business", "Unit"}
        assert "Earthquake" in caps.growable_relations
        session = compile_program(program).on(instance, seed=3,
                                              backend="batched")
        result = session.sample(100)
        assert result.backend == "batched"
        # Runtime confirms the stability classification: stable
        # relations carry the same facts in every world.
        reference = None
        for world in result.pdb.worlds:
            stable_facts = frozenset(
                fact for fact in world.facts
                if fact.relation in set(caps.stable_relations))
            reference = stable_facts if reference is None \
                else reference
            assert stable_facts == reference

    def test_example_3_4_streaming_unsafe_is_real(self):
        program = paper.example_3_4_program()
        instance = paper.example_3_4_instance()
        caps = deep(program, instance).capabilities
        # Earthquake/Burglary feed the Trig rules: observing them
        # regroups the batch, so the analyzer predicts "no" ...
        assert not caps.streaming_observations.eligible
        assert caps.streaming_observations.reasons
        # ... and the engine indeed declines such an observation.
        stream = compile_program(program).on(instance,
                                             seed=11).stream(50)
        with pytest.raises(StreamingUnsupported):
            stream.observe(observe("Earthquake", "Napa", 1))

    def test_example_3_5_everything_eligible(self):
        program = paper.example_3_5_program()
        instance = paper.example_3_5_instance()
        caps = deep(program, instance).capabilities
        for capability in caps.capabilities():
            assert capability.eligible, capability.name
        session = compile_program(program).on(instance, seed=7)
        assert session.sample(
            50, backend="batched").backend == "batched"
        stream = session.stream(80)
        from repro.pdb.stats import fact_marginals
        prior = fact_marginals(stream.posterior().pdb)
        target = next(fact for fact in prior
                      if fact.relation == "PHeight")
        stream.observe(observe("PHeight", target.args[0],
                               float(target.args[1])))
        assert stream.n_evidence == 1

    @pytest.mark.parametrize("factory, severity", [
        (paper.continuous_feedback_program, "error"),
        (paper.discrete_cycle_program, "warning"),
    ])
    def test_cyclic_programs_fall_back(self, factory, severity):
        program = factory()
        report = deep(program)
        caps = report.capabilities
        assert not caps.weakly_acyclic
        assert not caps.batched.eligible
        assert not caps.streaming_observations.eligible
        findings = report.lint.by_code("weak-acyclicity-violation")
        assert findings and findings[0].severity == severity
        instance = paper.trigger_instance() \
            if factory is paper.discrete_cycle_program \
            else paper.seed_instance()
        session = compile_program(program).on(
            instance, seed=5, max_steps=50, backend="batched")
        assert session.sample(10).backend == "scalar"

    def test_guided_blocking_reasons_on_example_3_4(self):
        caps = deep(paper.example_3_4_program(),
                    paper.example_3_4_instance()).capabilities
        blocked = [rule for rule in caps.rules
                   if rule.random and rule.guided_reachable is False]
        # The Trig rules read the growable Earthquake/Burglary
        # relations, so backward evidence propagation stops there.
        assert blocked
        assert all(rule.guided_blocking for rule in blocked)


# ---------------------------------------------------------------------------
# Session / serving surfaces
# ---------------------------------------------------------------------------

class TestAnalyzeSurfaces:
    def test_session_deep_analyze_cached(self):
        session = compile_program(paper.example_3_4_program()).on(
            paper.example_3_4_instance())
        first = session.analyze(deep=True)
        assert isinstance(first, DeepReport)
        assert session.analyze(deep=True) is first
        # The shallow call still returns the termination report.
        assert session.analyze().weakly_acyclic

    def test_compiled_deep_analyze_cached(self):
        compiled = compile_program("Out(Flip<0.5>) :- true.")
        assert compiled.analyze(deep=True) \
            is compiled.analyze(deep=True)

    def test_server_preflight_caches_deep_analysis(self):
        server = ProgramServer()
        program = "Heads(x, Flip<0.5>) :- Coin(x)."
        reply = server.handle({"op": "analyze", "program": program,
                               "deep": True})
        assert reply["ok"] and reply["result"]["deep"] is True
        assert "lint" in reply["result"]
        assert "capabilities" in reply["result"]
        assert server.stats["analyses_precomputed"] == 1
        # Shallow analyze stays the historical document.
        shallow = server.handle({"op": "analyze", "program": program})
        assert shallow["ok"] and "lint" not in shallow["result"]
        # Cache eviction falls back to recomputation, not a crash.
        server._analyses.clear()
        again = server.handle({"op": "analyze", "program": program,
                               "deep": True})
        assert again["ok"] and "capabilities" in again["result"]
        assert server.stats["analyses_precomputed"] == 1


class TestLintCli:
    @pytest.fixture
    def quake_file(self, tmp_path):
        path = tmp_path / "quake.gdl"
        path.write_text(paper.EARTHQUAKE_PROGRAM_TEXT)
        return str(path)

    @pytest.fixture
    def sloppy_file(self, tmp_path):
        path = tmp_path / "sloppy.gdl"
        path.write_text("Out(x) :- In(x), Other(y).\n")
        return str(path)

    def test_json_key_contract(self, quake_file):
        code, output = run_cli(["lint", quake_file, "--json"])
        assert code == 0
        payload = json.loads(output)
        assert set(payload) == {"command", "ok", "fail_on",
                                "semantics", "n_rules", "counts",
                                "diagnostics", "capabilities"}
        assert payload["command"] == "lint"
        assert payload["ok"] is True
        assert payload["fail_on"] == "error"
        assert payload["n_rules"] == 7
        assert set(payload["counts"]) == {"error", "warning", "info"}
        caps = payload["capabilities"]["capabilities"]
        assert caps["batched"]["eligible"] is True
        assert caps["streaming_observations"]["eligible"] is False

    def test_fail_on_escalation(self, sloppy_file):
        code, _ = run_cli(["lint", sloppy_file])
        assert code == 0  # warnings only
        code, _ = run_cli(["lint", sloppy_file,
                           "--fail-on", "warning"])
        assert code == 1

    def test_diagnostics_have_stable_json_shape(self, sloppy_file):
        code, output = run_cli(["lint", sloppy_file, "--json",
                                "--fail-on", "warning"])
        assert code == 1
        payload = json.loads(output)
        assert payload["ok"] is False
        for diagnostic in payload["diagnostics"]:
            assert {"code", "severity", "message", "rule", "subject",
                    "fix_hint"} <= set(diagnostic)

    def test_analyze_deep_flag(self, quake_file):
        code, output = run_cli(["analyze", quake_file, "--deep",
                                "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["deep"] is True
        assert "lint" in payload and "capabilities" in payload


# ---------------------------------------------------------------------------
# The static-dynamic oracle and the lint gate of the fuzz loop
# ---------------------------------------------------------------------------

class TestStaticDynamicOracle:
    def test_passes_on_paper_example(self):
        case = FuzzCase(0, "sampling", paper.example_3_4_program(),
                        paper.example_3_4_instance())
        assert StaticDynamicOracle().check(case).status == "ok"

    def test_passes_on_cyclic_program(self):
        case = FuzzCase(1, "cyclic",
                        paper.discrete_cycle_program(),
                        paper.trigger_instance())
        outcome = StaticDynamicOracle().check(case)
        assert outcome.status in ("ok", "skip"), outcome.detail

    def test_fuzz_battery_holds(self):
        report = run_fuzz(budget=25, seed=123,
                          oracles=[StaticDynamicOracle()],
                          shrink=False)
        assert report.ok(), [d.detail for d in report.discrepancies]

    def test_lint_rejected_cases_are_counted(self, monkeypatch):
        bad = FuzzCase(0, "sampling", invalid_flip_program(),
                       Instance())
        monkeypatch.setattr(runner_module, "generate_case",
                            lambda seed, config=None: bad)
        report = run_fuzz(budget=3, seed=0,
                          oracles=[StaticDynamicOracle()],
                          shrink=False)
        assert report.lint_rejected == 3
        assert report.stats["static-dynamic"].checked == 0
        assert report.to_json()["lint_rejected"] == 3


# ---------------------------------------------------------------------------
# answer_probabilities vectorization: exact identity
# ---------------------------------------------------------------------------

class TestAnswerProbabilitiesIdentity:
    def test_one_pass_matches_per_value_scan(self):
        from repro.query import scan
        from repro.query.columnar import (_push_query,
                                          answer_probabilities)
        session = compile_program(
            "Heads(x, Flip<0.5>) :- Coin(x).").on(
            Instance.from_dict({"Coin": [("a",), ("b",), ("c",)]}),
            seed=13, backend="batched")
        pdb = session.sample(400).pdb
        query = scan("Heads", "coin", "side").where(side=1)

        def column_values(relation):
            index = relation.column_index("coin")
            return frozenset(row[index] for row in relation.rows)

        per_world = _push_query(pdb, query, column_values)
        values: set = set()
        for answer_set in per_world:
            values.update(answer_set)
        reference = {value: per_world.measure_of(
            lambda s, v=value: v in s)
            for value in sorted(values, key=repr)}
        assert answer_probabilities(pdb, query, "coin") == reference


# ---------------------------------------------------------------------------
# Deep report aggregation
# ---------------------------------------------------------------------------

class TestDeepReport:
    def test_to_json_shape(self):
        report = deep(paper.example_3_4_program(),
                      paper.example_3_4_instance())
        payload = report.to_json()
        assert {"weakly_acyclic", "continuous_cycle",
                "cyclic_distributions", "lint",
                "capabilities"} <= set(payload)
        assert payload["weakly_acyclic"] is True
        assert payload["lint"]["counts"]["error"] == 0

    def test_ok_threshold(self):
        report = deep(paper.continuous_feedback_program())
        assert not report.ok()          # error-severity cycle
        clean = deep(Program.parse(
            "Reach(x, y) :- Edge(x, y).\n"
            "Reach(x, z) :- Reach(x, y), Edge(y, z)."))
        assert clean.ok("info")

    def test_capability_report_standalone(self):
        compiled = compile_program(paper.example_3_5_program())
        caps = capability_report(compiled.translated)
        assert caps.batched.eligible
        assert caps.summary().startswith("capabilities[")
