"""Tests for exact chase-tree enumeration (repro.core.exact)."""

import pytest

from repro.core.exact import (enumerate_chase_tree, exact_parallel_spdb,
                              exact_sequential_spdb)
from repro.core.policies import LastPolicy, RandomTiePolicy
from repro.core.program import Program
from repro.core.translate import translate
from repro.errors import UnsupportedProgramError
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads import paper


class TestSequentialExact:
    def test_single_flip(self):
        pdb = exact_sequential_spdb(Program.parse("R(Flip<0.3>) :- true."))
        assert pdb.prob_of_instance(Instance.of(Fact("R", (1,)))) == \
            pytest.approx(0.3)
        assert pdb.prob_of_instance(Instance.of(Fact("R", (0,)))) == \
            pytest.approx(0.7)
        assert pdb.err_mass() == 0.0

    def test_g0_worlds(self, g0):
        pdb = exact_sequential_spdb(g0)
        expected = paper.G0_EXPECTED_GROHE
        for world, probability in expected.items():
            assert pdb.prob_of_instance(world) == \
                pytest.approx(probability)
        assert pdb.support_size() == len(expected)

    def test_deterministic_program_single_world(self):
        program = Program.parse("A(x) :- B(x).")
        D = Instance.of(Fact("B", (1,)))
        pdb = exact_sequential_spdb(program, D)
        assert pdb.support_size() == 1
        world, probability = pdb.worlds()[0]
        assert probability == pytest.approx(1.0)
        assert Fact("A", (1,)) in world

    def test_continuous_program_rejected(self, heights_program):
        with pytest.raises(UnsupportedProgramError):
            exact_sequential_spdb(heights_program)

    def test_mass_conservation(self, earthquake_program,
                               earthquake_instance):
        pdb = exact_sequential_spdb(earthquake_program,
                                    earthquake_instance)
        assert pdb.total_mass() + pdb.err_mass() == pytest.approx(1.0)
        assert pdb.err_mass() == 0.0

    def test_depth_budget_moves_mass_to_err(self, g0):
        pdb = exact_sequential_spdb(g0, max_depth=1)
        assert pdb.err_mass() == pytest.approx(1.0)
        pdb = exact_sequential_spdb(g0, max_depth=4)
        assert pdb.err_mass() == pytest.approx(0.0)

    def test_infinite_support_truncation_accounted(self):
        program = Program.parse("N(Poisson<2.0>) :- true.")
        pdb = exact_sequential_spdb(program, tolerance=1e-6,
                                    max_depth=10)
        assert pdb.total_mass() + pdb.err_mass() == \
            pytest.approx(1.0, abs=1e-9)
        assert 0.0 < pdb.err_mass() < 1e-5

    def test_keep_aux_exposes_result_relations(self, g0):
        pdb = exact_sequential_spdb(g0, keep_aux=True)
        world, _ = pdb.worlds()[0]
        assert any(r.startswith("Result#") for r in world.relations())

    def test_variable_parameters(self):
        program = Program.parse("Quake(c, Flip<r>) :- City(c, r).")
        D = Instance.of(Fact("City", ("n", 0.25)))
        pdb = exact_sequential_spdb(program, D)
        assert pdb.marginal(Fact("Quake", ("n", 1))) == \
            pytest.approx(0.25)


class TestParallelExact:
    def test_g0_equals_sequential(self, g0):
        sequential = exact_sequential_spdb(g0)
        parallel = exact_parallel_spdb(g0)
        assert sequential.allclose(parallel)

    def test_product_branching(self):
        program = Program.parse("""
            A(Flip<0.5>) :- true.
            B(Flip<0.25>) :- true.
        """)
        pdb = exact_parallel_spdb(program)
        world = Instance.of(Fact("A", (1,)), Fact("B", (1,)))
        assert pdb.prob_of_instance(world) == pytest.approx(0.125)

    def test_depth_counts_levels_not_facts(self):
        # Parallel chase of G0 takes 2 levels; depth 2 suffices.
        program = paper.example_1_1_g0()
        pdb = exact_parallel_spdb(program, max_depth=2)
        assert pdb.err_mass() == pytest.approx(0.0)

    def test_mass_conservation(self, earthquake_program,
                               earthquake_instance):
        pdb = exact_parallel_spdb(earthquake_program,
                                  earthquake_instance)
        assert pdb.total_mass() + pdb.err_mass() == pytest.approx(1.0)


class TestChaseTree:
    def test_tree_structure_flip(self):
        tree = enumerate_chase_tree(Program.parse("R(Flip<0.5>) :- true."))
        # Root branches over {0, 1}; each child fires the companion.
        assert len(tree.children) == 2
        leaves = list(tree.leaves())
        assert len(leaves) == 2
        assert sum(leaf.probability for leaf in leaves) == \
            pytest.approx(1.0)

    def test_lemma_c4_no_repeated_instances(self, g0):
        # Every instance labels at most one node of the chase tree.
        tree = enumerate_chase_tree(g0)
        seen = []
        for node in tree.iter_nodes():
            assert node.instance not in seen
            seen.append(node.instance)

    def test_leaf_mass_matches_spdb(self, g0):
        tree = enumerate_chase_tree(g0)
        pdb = exact_sequential_spdb(g0, keep_aux=True)
        leaf_mass = {}
        for leaf in tree.leaves():
            assert not leaf.truncated
            leaf_mass[leaf.instance] = \
                leaf_mass.get(leaf.instance, 0.0) + leaf.probability
        for world, probability in pdb.worlds():
            assert leaf_mass[world] == pytest.approx(probability)

    def test_truncated_nodes_marked(self):
        program = paper.discrete_cycle_program(1.0)
        tree = enumerate_chase_tree(program, paper.trigger_instance(),
                                    max_depth=3, tolerance=1e-3)
        assert any(node.truncated for node in tree.iter_nodes())

    def test_probabilities_decrease_along_paths(self, g0):
        tree = enumerate_chase_tree(g0)
        for node in tree.iter_nodes():
            for child in node.children:
                assert child.probability <= node.probability + 1e-12


class TestPolicyIndependenceSmall:
    """Theorem 6.1 on micro-programs (full battery in its own file)."""

    def test_policies_agree_on_g0(self, g0):
        reference = exact_sequential_spdb(g0)
        for policy in (LastPolicy(), RandomTiePolicy(5)):
            assert exact_sequential_spdb(g0, policy=policy) \
                .allclose(reference)
