"""Tests for surface-syntax serialization (repro.core.source)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import Atom, atom
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.source import (atom_to_source, constant_to_source,
                               program_to_source, rule_to_source,
                               term_to_source)
from repro.core.terms import Const, RandomTerm, Var
from repro.distributions.registry import DEFAULT_REGISTRY
from repro.errors import ValidationError
from repro.workloads import paper


class TestTermSerialization:
    def test_variable(self):
        assert term_to_source(Var("x")) == "x"

    def test_constants(self):
        assert term_to_source(Const(3)) == "3"
        assert term_to_source(Const(0.5)) == "0.5"
        assert term_to_source(Const("Napa")) == '"Napa"'

    def test_string_escaping(self):
        rendered = constant_to_source('say "hi" \\ bye')
        program = Program.parse(f"R({rendered}) :- true.")
        assert program.rules[0].head.terms[0].value == 'say "hi" \\ bye'

    def test_random_term(self):
        flip = DEFAULT_REGISTRY["Flip"]
        term = RandomTerm(flip, (Const(0.5),))
        assert term_to_source(term) == "Flip<0.5>"

    def test_internal_variable_rejected(self):
        with pytest.raises(ValidationError):
            term_to_source(Var("y#0"))

    def test_internal_relation_rejected(self):
        with pytest.raises(ValidationError):
            atom_to_source(Atom("Result#0", (Var("x"),)))


class TestRuleSerialization:
    def test_bodiless_rule(self):
        rule = Rule(atom("R", 1), ())
        assert rule_to_source(rule) == "R(1) :- true."

    def test_rule_with_body(self):
        rule = Rule(atom("H", "x"), (atom("B", "x", "y"),))
        assert rule_to_source(rule) == "H(x) :- B(x, y)."


class TestRoundTrip:
    @pytest.mark.parametrize("maker", [
        paper.example_1_1_g0, paper.example_1_1_g0_prime,
        paper.section_6_2_h, paper.section_6_2_h_prime,
        paper.example_3_4_program, paper.example_3_5_program,
        paper.continuous_feedback_program,
        paper.discrete_cycle_program,
    ])
    def test_paper_programs_roundtrip(self, maker):
        program = maker()
        reparsed = Program.parse(program_to_source(program))
        assert reparsed.rules == program.rules

    def test_roundtrip_preserves_semantics(self, g0):
        from repro.core.semantics import exact_spdb
        reparsed = Program.parse(program_to_source(g0))
        assert exact_spdb(reparsed).allclose(exact_spdb(g0))

    def test_translated_programs_not_serializable(self, g0):
        normalized = Program.parse("""
            R(Flip<0.5>) :- true.
        """)
        # Normalized Split# rules are internal-only.
        from repro.core.normalize import normalize_rule
        from repro.core.atoms import Atom as A
        flip = DEFAULT_REGISTRY["Flip"]
        rule = Rule(A("R", (RandomTerm(flip, (Const(0.5),)),
                            RandomTerm(flip, (Const(0.5),)))), ())
        split = normalize_rule(rule, "0")[0]
        with pytest.raises(ValidationError):
            rule_to_source(split)
        assert normalized  # silence unused warning


class TestFuzzRoundTrip:
    relation_names = st.sampled_from(["R", "S", "Tv", "Head1"])
    variables = st.sampled_from(["x", "y", "z"])
    constants = st.one_of(
        st.integers(-20, 20),
        st.floats(-5, 5, allow_nan=False).map(lambda f: round(f, 3)),
        st.sampled_from(["a b", 'q"t', "Plain", "under_score"]))

    @given(st.lists(
        st.tuples(relation_names,
                  st.lists(st.one_of(variables.map(Var),
                                     constants.map(Const)),
                           min_size=1, max_size=3)),
        min_size=1, max_size=4))
    @settings(max_examples=40)
    def test_deterministic_programs_roundtrip(self, heads):
        # Build fact-rules plus a copying rule per head relation; all
        # head variables must be body-bound, so ground the heads.
        rules = []
        for name, terms in heads:
            ground_terms = [t if isinstance(t, Const) else Const(0)
                            for t in terms]
            rules.append(Rule(Atom(name, ground_terms), ()))
        program = Program(rules)
        reparsed = Program.parse(program_to_source(program))
        assert reparsed.rules == program.rules
