"""Properties of the random-workload generator (repro.testing.fuzz)."""

from __future__ import annotations

import pytest

from repro.core.program import Program
from repro.core.source import program_to_source
from repro.core.termination import weakly_acyclic
from repro.distributions.registry import DEFAULT_REGISTRY
from repro.testing import (CONTINUOUS, FINITE_DISCRETE,
                           INFINITE_DISCRETE, KINDS, FuzzConfig,
                           case_seed, distribution_parameters,
                           generate_case, random_value_positions,
                           rebuild_case)

SEEDS = range(40)


class TestWellFormedness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_case_is_valid_and_round_trips(self, seed):
        case = generate_case(seed)
        assert case.kind in KINDS
        assert len(case.program) >= 1
        # Every case must survive corpus persistence: serialize to the
        # surface syntax and parse back to an equal program.
        reparsed = Program.parse(program_to_source(case.program))
        assert reparsed == case.program

    @pytest.mark.parametrize("seed", SEEDS)
    def test_instance_facts_are_extensional_only(self, seed):
        case = generate_case(seed)
        heads = case.program.head_relations()
        for fact in case.instance:
            assert fact.relation not in heads

    @pytest.mark.parametrize("seed", range(12))
    def test_determinism(self, seed):
        first = generate_case(seed)
        second = generate_case(seed)
        assert first.program == second.program
        assert first.instance == second.instance
        assert first.kind == second.kind


class TestKindGuarantees:
    @pytest.mark.parametrize("seed", range(15))
    def test_deterministic_kind(self, seed):
        case = generate_case(seed, kind="deterministic")
        assert case.program.is_deterministic()
        assert weakly_acyclic(case.program)

    @pytest.mark.parametrize("seed", range(15))
    def test_exact_kind_is_enumerable(self, seed):
        case = generate_case(seed, kind="exact")
        assert case.program.is_discrete()
        assert weakly_acyclic(case.program)
        for rule in case.program.random_rules():
            for term in rule.random_terms():
                assert term.distribution.name in FINITE_DISCRETE

    @pytest.mark.parametrize("seed", range(15))
    def test_sampling_kind_has_random_rules(self, seed):
        case = generate_case(seed, kind="sampling")
        assert case.program.random_rules()

    @pytest.mark.parametrize("seed", range(15))
    def test_cyclic_kind_breaks_weak_acyclicity(self, seed):
        case = generate_case(seed, kind="cyclic")
        assert not weakly_acyclic(case.program)


class TestCoverage:
    def test_all_kinds_appear_across_a_budget(self):
        kinds = {generate_case(case_seed(0, index)).kind
                 for index in range(60)}
        assert kinds == set(KINDS)

    def test_many_distributions_appear_across_a_budget(self):
        used: set[str] = set()
        for index in range(120):
            case = generate_case(case_seed(1, index))
            used.update(case.program.distributions_used())
        # The union of discrete, infinite-discrete and continuous
        # families must be broadly exercised (not a fixed subset).
        assert len(used) >= 10

    def test_parameter_samplers_cover_the_registry(self):
        import numpy as np
        rng = np.random.default_rng(0)
        for name in DEFAULT_REGISTRY.names():
            params = distribution_parameters(name, rng)
            # Must lie inside the family's parameter space.
            DEFAULT_REGISTRY[name].validate_params(params)

    def test_distribution_partition_matches_registry(self):
        partition = set(FINITE_DISCRETE) | set(INFINITE_DISCRETE) \
            | set(CONTINUOUS)
        assert partition == set(DEFAULT_REGISTRY.names())


class TestHelpers:
    def test_case_seed_is_stable_and_spread(self):
        assert case_seed(0, 0) == case_seed(0, 0)
        seeds = {case_seed(0, index) for index in range(50)}
        assert len(seeds) == 50

    def test_rebuild_case_replaces_parts(self):
        case = generate_case(2, kind="deterministic")
        smaller = rebuild_case(case, facts=[])
        assert len(smaller.instance) == 0
        assert smaller.program == case.program

    def test_random_value_positions(self):
        program = Program.parse(
            "R0(x, Flip<0.5>) :- E0(x).\n"
            "D0(x) :- E0(x).")
        assert random_value_positions(program) == {"R0": 1}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FuzzConfig(kinds=("exact",), kind_weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            FuzzConfig(kinds=("nope",), kind_weights=(1.0,))


class TestCoverageGuidedGeneration:
    """The coverage-guided mode (feature buckets + candidate choice)."""

    def test_case_features_capture_translated_structure(self):
        from repro.testing import FuzzCase, case_features
        from repro.pdb.instances import Instance
        program = Program.parse("""
            R0(x, Flip<p>) :- E0(x), Par(k, p).
            D0(y) :- R0(x, y).
        """)
        case = FuzzCase(0, "sampling", program, Instance.empty())
        features = case_features(case)
        assert "kind:sampling" in features
        assert "dist:Flip" in features
        assert "carried:1" in features
        assert "shape:data-bound-param" in features
        assert "aux:1" in features
        assert "cycle:none" in features
        assert any(bucket.startswith("fd-arity:")
                   for bucket in features)

    def test_cyclic_cases_land_in_cycle_buckets(self):
        from repro.testing import case_features, generate_case
        case = generate_case(11, kind="cyclic")
        features = case_features(case)
        assert "kind:cyclic" in features
        assert "cycle:continuous" in features \
            or "cycle:discrete" in features

    def test_guided_generation_is_deterministic(self):
        from repro.testing import CoverageTracker, case_seed, \
            generate_case_guided

        def run():
            tracker = CoverageTracker()
            return [generate_case_guided(case_seed(5, index), tracker)
                    for index in range(10)]

        first, second = run(), run()
        assert [(c.seed, c.kind) for c in first] == \
            [(c.seed, c.kind) for c in second]
        assert [c.program for c in first] == \
            [c.program for c in second]

    def test_guided_cases_reproduce_from_seed_and_kind(self):
        from repro.testing import CoverageTracker, case_seed, \
            generate_case, generate_case_guided
        tracker = CoverageTracker()
        for index in range(8):
            case = generate_case_guided(case_seed(2, index), tracker)
            replayed = generate_case(case.seed, kind=case.kind)
            assert replayed.program == case.program
            assert replayed.instance == case.instance

    @pytest.mark.parametrize("root", [0, 1, 7])
    def test_fixed_budget_covers_more_buckets_than_unbiased(
            self, root):
        from repro.testing import CoverageTracker, case_features, \
            case_seed, generate_case, generate_case_guided
        budget = 20
        unbiased: set = set()
        for index in range(budget):
            unbiased |= case_features(
                generate_case(case_seed(root, index)))
        tracker = CoverageTracker()
        for index in range(budget):
            generate_case_guided(case_seed(root, index), tracker)
        assert len(tracker.seen) > len(unbiased), (
            f"guided {len(tracker.seen)} <= unbiased {len(unbiased)}")

    def test_run_fuzz_reports_coverage_buckets(self):
        from repro.testing import FixpointOracle, run_fuzz
        report = run_fuzz(budget=6, seed=0,
                          oracles=[FixpointOracle()],
                          coverage_guided=True)
        assert report.ok()
        assert report.coverage_buckets is not None
        assert report.coverage_buckets > 10
        assert report.to_json()["coverage_buckets"] == \
            report.coverage_buckets
        assert "feature buckets" in report.summary()

    def test_unguided_run_omits_coverage_field(self):
        from repro.testing import FixpointOracle, run_fuzz
        report = run_fuzz(budget=3, seed=0,
                          oracles=[FixpointOracle()])
        assert report.coverage_buckets is None
        assert "coverage_buckets" not in report.to_json()
