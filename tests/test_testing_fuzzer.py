"""Properties of the random-workload generator (repro.testing.fuzz)."""

from __future__ import annotations

import pytest

from repro.core.program import Program
from repro.core.source import program_to_source
from repro.core.termination import weakly_acyclic
from repro.distributions.registry import DEFAULT_REGISTRY
from repro.testing import (CONTINUOUS, FINITE_DISCRETE,
                           INFINITE_DISCRETE, KINDS, FuzzConfig,
                           case_seed, distribution_parameters,
                           generate_case, random_value_positions,
                           rebuild_case)

SEEDS = range(40)


class TestWellFormedness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_case_is_valid_and_round_trips(self, seed):
        case = generate_case(seed)
        assert case.kind in KINDS
        assert len(case.program) >= 1
        # Every case must survive corpus persistence: serialize to the
        # surface syntax and parse back to an equal program.
        reparsed = Program.parse(program_to_source(case.program))
        assert reparsed == case.program

    @pytest.mark.parametrize("seed", SEEDS)
    def test_instance_facts_are_extensional_only(self, seed):
        case = generate_case(seed)
        heads = case.program.head_relations()
        for fact in case.instance:
            assert fact.relation not in heads

    @pytest.mark.parametrize("seed", range(12))
    def test_determinism(self, seed):
        first = generate_case(seed)
        second = generate_case(seed)
        assert first.program == second.program
        assert first.instance == second.instance
        assert first.kind == second.kind


class TestKindGuarantees:
    @pytest.mark.parametrize("seed", range(15))
    def test_deterministic_kind(self, seed):
        case = generate_case(seed, kind="deterministic")
        assert case.program.is_deterministic()
        assert weakly_acyclic(case.program)

    @pytest.mark.parametrize("seed", range(15))
    def test_exact_kind_is_enumerable(self, seed):
        case = generate_case(seed, kind="exact")
        assert case.program.is_discrete()
        assert weakly_acyclic(case.program)
        for rule in case.program.random_rules():
            for term in rule.random_terms():
                assert term.distribution.name in FINITE_DISCRETE

    @pytest.mark.parametrize("seed", range(15))
    def test_sampling_kind_has_random_rules(self, seed):
        case = generate_case(seed, kind="sampling")
        assert case.program.random_rules()

    @pytest.mark.parametrize("seed", range(15))
    def test_cyclic_kind_breaks_weak_acyclicity(self, seed):
        case = generate_case(seed, kind="cyclic")
        assert not weakly_acyclic(case.program)


class TestCoverage:
    def test_all_kinds_appear_across_a_budget(self):
        kinds = {generate_case(case_seed(0, index)).kind
                 for index in range(60)}
        assert kinds == set(KINDS)

    def test_many_distributions_appear_across_a_budget(self):
        used: set[str] = set()
        for index in range(120):
            case = generate_case(case_seed(1, index))
            used.update(case.program.distributions_used())
        # The union of discrete, infinite-discrete and continuous
        # families must be broadly exercised (not a fixed subset).
        assert len(used) >= 10

    def test_parameter_samplers_cover_the_registry(self):
        import numpy as np
        rng = np.random.default_rng(0)
        for name in DEFAULT_REGISTRY.names():
            params = distribution_parameters(name, rng)
            # Must lie inside the family's parameter space.
            DEFAULT_REGISTRY[name].validate_params(params)

    def test_distribution_partition_matches_registry(self):
        partition = set(FINITE_DISCRETE) | set(INFINITE_DISCRETE) \
            | set(CONTINUOUS)
        assert partition == set(DEFAULT_REGISTRY.names())


class TestHelpers:
    def test_case_seed_is_stable_and_spread(self):
        assert case_seed(0, 0) == case_seed(0, 0)
        seeds = {case_seed(0, index) for index in range(50)}
        assert len(seeds) == 50

    def test_rebuild_case_replaces_parts(self):
        case = generate_case(2, kind="deterministic")
        smaller = rebuild_case(case, facts=[])
        assert len(smaller.instance) == 0
        assert smaller.program == case.program

    def test_random_value_positions(self):
        program = Program.parse(
            "R0(x, Flip<0.5>) :- E0(x).\n"
            "D0(x) :- E0(x).")
        assert random_value_positions(program) == {"R0": 1}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FuzzConfig(kinds=("exact",), kind_weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            FuzzConfig(kinds=("nope",), kind_weights=(1.0,))
