"""Tests for facts (repro.pdb.facts)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.pdb.facts import Fact, fact, normalize_value, sorted_facts


class TestFactBasics:
    def test_construction(self):
        f = Fact("R", (1, "x"))
        assert f.relation == "R"
        assert f.args == (1, "x")
        assert f.arity == 2

    def test_convenience_constructor(self):
        assert fact("R", 1, 2) == Fact("R", (1, 2))

    def test_empty_relation_name_rejected(self):
        with pytest.raises(SchemaError):
            Fact("", (1,))

    def test_equality_and_hash(self):
        assert Fact("R", (1,)) == Fact("R", (1,))
        assert hash(Fact("R", (1,))) == hash(Fact("R", (1,)))
        assert Fact("R", (1,)) != Fact("S", (1,))
        assert Fact("R", (1,)) != Fact("R", (2,))

    def test_immutability(self):
        f = Fact("R", (1,))
        with pytest.raises(AttributeError):
            f.relation = "S"

    def test_repr(self):
        assert repr(Fact("R", (1, "x"))) == "R(1, 'x')"

    def test_replace(self):
        f = Fact("R", (1, 2)).replace(1, 9)
        assert f == Fact("R", (1, 9))


class TestNormalization:
    def test_bool_normalizes_to_int(self):
        assert Fact("R", (True,)) == Fact("R", (1,))
        assert Fact("R", (False,)) == Fact("R", (0,))

    def test_normalize_value(self):
        assert normalize_value(True) == 1
        assert normalize_value(False) == 0
        assert normalize_value("x") == "x"
        assert normalize_value(1.5) == 1.5

    def test_integral_float_equals_int(self):
        # Python hashing identifies 1 and 1.0; facts inherit that.
        assert Fact("R", (1.0,)) == Fact("R", (1,))


class TestOrdering:
    def test_sorted_facts_by_relation_then_args(self):
        facts = [Fact("S", (1,)), Fact("R", (2,)), Fact("R", (1,))]
        assert sorted_facts(facts) == \
            [Fact("R", (1,)), Fact("R", (2,)), Fact("S", (1,))]

    def test_lt_operator(self):
        assert Fact("A", (1,)) < Fact("B", (0,))
        assert Fact("A", (1,)) < Fact("A", (2,))

    def test_mixed_type_args_sortable(self):
        facts = [Fact("R", ("z",)), Fact("R", (3,)), Fact("R", (1.5,))]
        ordered = sorted_facts(facts)
        assert [f.args[0] for f in ordered] == [1.5, 3, "z"]


value_strategy = st.one_of(
    st.integers(-50, 50), st.floats(-10, 10, allow_nan=False),
    st.text(max_size=4), st.booleans())


class TestFactProperties:
    @given(st.text(min_size=1, max_size=5),
           st.lists(value_strategy, min_size=1, max_size=4))
    def test_hash_consistency(self, name, args):
        a = Fact(name, tuple(args))
        b = Fact(name, tuple(args))
        assert a == b and hash(a) == hash(b)

    @given(st.lists(st.tuples(st.sampled_from("RST"),
                              st.integers(0, 5)), max_size=12))
    def test_sorting_is_deterministic(self, spec):
        facts = [Fact(rel, (arg,)) for rel, arg in spec]
        assert sorted_facts(facts) == sorted_facts(list(reversed(facts)))
