"""Consequences of [3]'s sample sharing on realistic programs.

Under Bárány et al.'s semantics, samples are keyed by (distribution,
parameters) *globally*.  On Example 3.4 this has striking consequences
the paper's Example 1.1 only hints at: every city shares one
``Flip⟨0.1⟩`` earthquake sample, and cities with equal burglary rates
share their burglary outcomes.  These tests pin the behaviour down
under both semantics - the sharpest executable form of the §6.2
comparison on a non-toy program.
"""

import pytest

from repro.core.semantics import exact_spdb
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads import paper


@pytest.fixture
def two_city_instance():
    return paper.example_3_4_instance(
        cities={"a": 0.05, "b": 0.05},  # equal burglary rates
        houses={"h1": "a", "h2": "b"}, businesses={})


class TestEarthquakeSharing:
    def test_barany_all_cities_share_one_quake_sample(
            self, earthquake_program, two_city_instance):
        # Earthquake(c, Flip<0.1>): constant parameters, so under [3]
        # there is ONE earthquake coin for the whole world.
        pdb = exact_spdb(earthquake_program, two_city_instance,
                         semantics="barany")
        both = pdb.prob(lambda D: Fact("Earthquake", ("a", 1)) in D
                        and Fact("Earthquake", ("b", 1)) in D)
        either = pdb.prob(lambda D: Fact("Earthquake", ("a", 1)) in D
                          or Fact("Earthquake", ("b", 1)) in D)
        assert both == pytest.approx(0.1)
        assert either == pytest.approx(0.1)  # perfectly correlated

    def test_grohe_cities_quake_independently(
            self, earthquake_program, two_city_instance):
        pdb = exact_spdb(earthquake_program, two_city_instance,
                         semantics="grohe")
        both = pdb.prob(lambda D: Fact("Earthquake", ("a", 1)) in D
                        and Fact("Earthquake", ("b", 1)) in D)
        assert both == pytest.approx(0.01)

    def test_single_city_marginals_agree(self, earthquake_program):
        # On one city the two semantics coincide for the quake marginal.
        instance = paper.example_3_4_instance(
            cities={"a": 0.05}, houses={"h": "a"}, businesses={})
        quake = Fact("Earthquake", ("a", 1))
        ours = exact_spdb(earthquake_program, instance)
        theirs = exact_spdb(earthquake_program, instance,
                            semantics="barany")
        assert ours.marginal(quake) == pytest.approx(0.1)
        assert theirs.marginal(quake) == pytest.approx(0.1)


class TestBurglarySharing:
    def test_equal_rates_share_burglary_sample_under_barany(
            self, earthquake_program, two_city_instance):
        # Burglary(x, c, Flip<r>): equal r ⇒ one shared sample in [3].
        pdb = exact_spdb(earthquake_program, two_city_instance,
                         semantics="barany")
        b1 = Fact("Burglary", ("h1", "a", 1))
        b2 = Fact("Burglary", ("h2", "b", 1))
        both = pdb.prob(lambda D: b1 in D and b2 in D)
        assert both == pytest.approx(0.05)

    def test_distinct_rates_stay_independent_under_barany(
            self, earthquake_program):
        instance = paper.example_3_4_instance(
            cities={"a": 0.05, "b": 0.07},
            houses={"h1": "a", "h2": "b"}, businesses={})
        pdb = exact_spdb(earthquake_program, instance,
                         semantics="barany")
        b1 = Fact("Burglary", ("h1", "a", 1))
        b2 = Fact("Burglary", ("h2", "b", 1))
        both = pdb.prob(lambda D: b1 in D and b2 in D)
        assert both == pytest.approx(0.05 * 0.07)

    def test_grohe_always_independent(self, earthquake_program,
                                      two_city_instance):
        pdb = exact_spdb(earthquake_program, two_city_instance,
                         semantics="grohe")
        b1 = Fact("Burglary", ("h1", "a", 1))
        b2 = Fact("Burglary", ("h2", "b", 1))
        both = pdb.prob(lambda D: b1 in D and b2 in D)
        assert both == pytest.approx(0.05 * 0.05)


class TestAlarmConsequences:
    def test_alarm_marginal_differs_across_semantics(
            self, earthquake_program, two_city_instance):
        # Per-unit alarm marginals actually coincide (each unit's path
        # probabilities are unchanged); what differs is the JOINT law.
        ours = exact_spdb(earthquake_program, two_city_instance)
        theirs = exact_spdb(earthquake_program, two_city_instance,
                            semantics="barany")
        a1, a2 = Fact("Alarm", ("h1",)), Fact("Alarm", ("h2",))
        assert ours.marginal(a1) == pytest.approx(theirs.marginal(a1))
        joint_ours = ours.prob(lambda D: a1 in D and a2 in D)
        joint_theirs = theirs.prob(lambda D: a1 in D and a2 in D)
        # Shared quake/burglary/trigger coins induce extra positive
        # correlation between the two alarms under [3].
        assert joint_theirs > joint_ours

    def test_simulation_reproduces_sharing(self, earthquake_program,
                                           two_city_instance):
        # The §6.2 rewriting simulates the shared-coin joint law inside
        # our semantics, on the full Example 3.4 pipeline.
        from repro.core.barany import to_grohe_simulation
        visible = earthquake_program.relations()
        target = exact_spdb(earthquake_program, two_city_instance,
                            semantics="barany").project(visible)
        simulated = exact_spdb(
            to_grohe_simulation(earthquake_program),
            two_city_instance).project(visible)
        assert simulated.allclose(target)
