"""Tests for multi-random-term normalization (repro.core.normalize)."""

import pytest

from repro.core.atoms import Atom, atom
from repro.core.exact import exact_sequential_spdb
from repro.core.normalize import (is_split_relation, normalize_program,
                                  normalize_rule)
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.terms import Const, RandomTerm, Var
from repro.distributions.registry import DEFAULT_REGISTRY

FLIP = DEFAULT_REGISTRY["Flip"]


def two_flip_rule(p1=0.5, p2=0.25, body=()):
    head = Atom("R", (RandomTerm(FLIP, (Const(p1),)),
                      RandomTerm(FLIP, (Const(p2),))))
    return Rule(head, body)


class TestNormalizeRule:
    def test_normal_rule_unchanged(self):
        rule = Rule(atom("H", "x"), (atom("B", "x"),))
        assert normalize_rule(rule, "0") == [rule]

    def test_two_random_terms_three_rules(self):
        rewritten = normalize_rule(two_flip_rule(), "7")
        assert len(rewritten) == 3
        split_heads = [r.head.relation for r in rewritten[:2]]
        assert all(is_split_relation(name) for name in split_heads)
        final = rewritten[-1]
        assert final.head.relation == "R"
        assert not final.head.is_random()

    def test_split_rules_in_normal_form(self):
        for rule in normalize_rule(two_flip_rule(), "1"):
            assert rule.is_normal_form()

    def test_shared_columns_include_all_params(self):
        x = Var("x")
        head = Atom("R", (x, RandomTerm(FLIP, (Var("p"),)),
                          RandomTerm(FLIP, (Var("q"),))))
        rule = Rule(head, (atom("B", "x", "p", "q"),))
        rewritten = normalize_rule(rule, "2")
        split_head = rewritten[0].head
        # carried x + params p, q + the sampled term.
        assert split_head.terms[:3] == (x, Var("p"), Var("q"))


class TestNormalizeProgram:
    def test_identity_on_normal_programs(self, g0):
        assert normalize_program(g0) is g0

    def test_semantics_product_of_independents(self):
        program = Program([two_flip_rule(0.5, 0.25)])
        pdb = exact_sequential_spdb(program)
        from repro.pdb.facts import Fact
        from repro.pdb.instances import Instance

        def world(a, b):
            return Instance.of(Fact("R", (a, b)))

        # Independent product: P(a, b) = Flip(0.5)(a) * Flip(0.25)(b).
        assert pdb.prob_of_instance(world(1, 1)) == pytest.approx(0.125)
        assert pdb.prob_of_instance(world(1, 0)) == pytest.approx(0.375)
        assert pdb.prob_of_instance(world(0, 1)) == pytest.approx(0.125)
        assert pdb.prob_of_instance(world(0, 0)) == pytest.approx(0.375)
        assert pdb.total_mass() == pytest.approx(1.0)

    def test_split_relations_projected_from_output(self):
        program = Program([two_flip_rule()])
        pdb = exact_sequential_spdb(program)
        for world, _ in pdb.worlds():
            assert not any(is_split_relation(r)
                           for r in world.relations())

    def test_one_joint_sample_per_head_key(self):
        # Body with projected variable: single joint sample.
        from repro.pdb.facts import Fact
        from repro.pdb.instances import Instance
        rule = two_flip_rule(0.5, 0.5, body=(atom("B", "z"),))
        program = Program([rule])
        D = Instance.of(Fact("B", (1,)), Fact("B", (2,)))
        pdb = exact_sequential_spdb(program, D)
        # Exactly one R fact in every world (not one per B binding).
        for world, _ in pdb.worlds():
            assert len(world.facts_of("R")) == 1
