"""Edge-case and adversarial-input tests across the pipeline."""

import numpy as np
import pytest

from repro.core.chase import run_chase
from repro.core.exact import exact_sequential_spdb
from repro.core.parallel import run_parallel_chase
from repro.core.program import Program
from repro.core.semantics import exact_spdb
from repro.core.atoms import Atom, atom
from repro.core.rules import Rule
from repro.core.terms import Const, RandomTerm, Var
from repro.distributions.registry import DEFAULT_REGISTRY
from repro.errors import DistributionError, ValidationError
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance

FLIP = DEFAULT_REGISTRY["Flip"]


class TestUnusualHeads:
    def test_random_term_first_position(self):
        program = Program.parse("R(Flip<0.5>, x) :- B(x).")
        pdb = exact_spdb(program, Instance.of(Fact("B", ("k",))))
        assert pdb.marginal(Fact("R", (1, "k"))) == pytest.approx(0.5)

    def test_repeated_variable_in_head(self):
        program = Program.parse("Pair(x, x, Flip<0.5>) :- B(x).")
        pdb = exact_spdb(program, Instance.of(Fact("B", (7,))))
        total = pdb.marginal(Fact("Pair", (7, 7, 0))) + \
            pdb.marginal(Fact("Pair", (7, 7, 1)))
        assert total == pytest.approx(1.0)

    def test_constant_and_random_term_mixed(self):
        program = Program.parse('R("tag", Flip<0.5>, 3) :- true.')
        pdb = exact_spdb(program)
        assert pdb.marginal(Fact("R", ("tag", 1, 3))) == \
            pytest.approx(0.5)

    def test_variable_used_as_param_and_column(self):
        # x appears both as a head column and a distribution parameter.
        program = Program.parse("R(x, Flip<x>) :- B(x).")
        pdb = exact_spdb(program, Instance.of(Fact("B", (0.25,))))
        assert pdb.marginal(Fact("R", (0.25, 1))) == pytest.approx(0.25)

    def test_duplicate_body_atom(self):
        program = Program.parse("H(x) :- B(x), B(x).")
        run = run_chase(program, Instance.of(Fact("B", (1,))), rng=0)
        assert Fact("H", (1,)) in run.instance


class TestDegenerateParameters:
    def test_flip_zero_and_one(self):
        pdb = exact_spdb(Program.parse("A(Flip<0.0>) :- true."))
        assert pdb.marginal(Fact("A", (0,))) == pytest.approx(1.0)
        pdb = exact_spdb(Program.parse("A(Flip<1.0>) :- true."))
        assert pdb.marginal(Fact("A", (1,))) == pytest.approx(1.0)

    def test_deterministic_branch_pruned(self):
        # Flip<1.0> has a single-support branch: no tree blowup.
        rules = "\n".join(f"A{i}(Flip<1.0>) :- true."
                          for i in range(20))
        pdb = exact_spdb(Program.parse(rules))
        assert pdb.support_size() == 1

    def test_binomial_n_zero(self):
        pdb = exact_spdb(Program.parse("K(Binomial<0, 0.5>) :- true."))
        assert pdb.marginal(Fact("K", (0,))) == pytest.approx(1.0)

    def test_invalid_param_surfaces_in_exact(self):
        program = Program.parse("Q(Flip<r>) :- P(r).")
        bad = Instance.of(Fact("P", (2.0,)))
        with pytest.raises(DistributionError):
            exact_sequential_spdb(program, bad)

    def test_invalid_param_surfaces_in_parallel(self):
        program = Program.parse("Q(Flip<r>) :- P(r).")
        bad = Instance.of(Fact("P", (-0.5,)))
        with pytest.raises(DistributionError):
            run_parallel_chase(program, bad, rng=0)


class TestEmptyAndTrivialInputs:
    def test_empty_input_no_matching_body(self):
        program = Program.parse("A(x) :- B(x).")
        run = run_chase(program, Instance.empty(), rng=0)
        assert run.terminated and len(run.instance) == 0

    def test_exact_on_empty_input(self):
        program = Program.parse("A(x) :- B(x).")
        pdb = exact_spdb(program, Instance.empty())
        assert pdb.support_size() == 1
        assert pdb.prob_of_instance(Instance.empty()) == \
            pytest.approx(1.0)

    def test_input_facts_of_unknown_relations_kept(self):
        program = Program.parse("A(x) :- B(x).")
        extra = Instance.of(Fact("Unrelated", (1, 2)))
        run = run_chase(program, extra, rng=0)
        assert Fact("Unrelated", (1, 2)) in run.instance

    def test_head_already_in_input(self):
        program = Program.parse("A(x) :- B(x).")
        D = Instance.of(Fact("B", (1,)), Fact("A", (1,)))
        run = run_chase(program, D, rng=0)
        assert run.steps == 0


class TestValueIdentification:
    def test_flip_sample_matches_integer_guard(self):
        # Samples are ints 0/1; a guard atom Trig(x, 1) must match.
        program = Program.parse("""
            T(Flip<1.0>) :- true.
            Go(1) :- T(1).
        """)
        pdb = exact_spdb(program)
        assert pdb.marginal(Fact("Go", (1,))) == pytest.approx(1.0)

    def test_float_and_int_keys_identified(self):
        # 1.0 in data matches integer 1 in a rule constant.
        program = Program.parse("A(x) :- B(x, 1).")
        D = Instance.of(Fact("B", ("k", 1.0)))
        run = run_chase(program, D, rng=0)
        assert Fact("A", ("k",)) in run.instance

    def test_string_number_not_identified(self):
        program = Program.parse('A(x) :- B(x, "1").')
        D = Instance.of(Fact("B", ("k", 1)))
        run = run_chase(program, D, rng=0)
        assert Fact("A", ("k",)) not in run.instance


class TestLargerStress:
    def test_deep_deterministic_chain(self):
        rules = "\n".join(f"T{i + 1}(x) :- T{i}(x)."
                          for i in range(100))
        program = Program.parse(rules)
        run = run_chase(program, Instance.of(Fact("T0", (1,))), rng=0)
        assert run.terminated
        assert Fact("T100", (1,)) in run.instance
        assert run.steps == 100

    def test_many_independent_samples_parallel(self):
        program = Program.parse("Out(i, Flip<0.5>) :- Item(i).")
        D = Instance(Fact("Item", (i,)) for i in range(200))
        run = run_parallel_chase(program, D, rng=0)
        assert run.terminated
        assert len(run.instance.facts_of("Out")) == 200

    def test_wide_joins(self):
        program = Program.parse(
            "J(a, d) :- R(a, b), S(b, c), T(c, d).")
        facts = []
        for i in range(10):
            facts += [Fact("R", (i, i + 1)), Fact("S", (i + 1, i + 2)),
                      Fact("T", (i + 2, i + 3))]
        run = run_chase(program, Instance(facts), rng=0)
        assert run.terminated
        assert len(run.instance.facts_of("J")) == 10


class TestProgramValidation:
    def test_extensional_head_rejected(self):
        with pytest.raises(ValidationError):
            Program([Rule(atom("B", "x"), (atom("C", "x"),))],
                    extensional=["B"])

    def test_variadic_categorical_in_programs(self):
        program = Program.parse(
            "C(Categorical<0.2, 0.3, 0.5>) :- true.")
        pdb = exact_spdb(program)
        assert pdb.marginal(Fact("C", (2,))) == pytest.approx(0.5)

    def test_program_requires_rules(self):
        with pytest.raises(ValidationError):
            Program([])

    def test_three_random_terms_normalize(self):
        head = Atom("R", tuple(RandomTerm(FLIP, (Const(0.5),))
                               for _ in range(3)))
        program = Program([Rule(head, ())])
        pdb = exact_spdb(program)
        assert pdb.total_mass() == pytest.approx(1.0)
        # 8 equally likely triples.
        assert pdb.support_size() == 8
        for world, probability in pdb.worlds():
            assert probability == pytest.approx(0.125)
