"""Sharded sampling: plans, per-world streams, invariance, pickling.

The serving layer's claims are identities, so the tests here assert
bit-equality, not statistics: shard plans tile the batch, shard
workers reconstruct exactly the streams ``ChaseConfig.spawn_rngs``
hands a single-process batch, output is invariant to the shard count
(both engines, both semantics), sharded scalar mode equals the
single-process scalar loop draw-for-draw, and every payload that
crosses the process boundary round-trips through pickle.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro
from repro.api.config import ChaseConfig
from repro.core.applicability import OverlayApplicability
from repro.core.policies import DEFAULT_POLICY
from repro.engine.batched import BatchOutcome, ColumnarMonteCarloPDB
from repro.errors import ChaseError, ValidationError
from repro.pdb.instances import Instance
from repro.serving import (ShardExecutor, ShardSpec, merge_shard_results,
                           sample_sharded, shard_plan, shard_rngs)
from repro.workloads.generators import (staged_slots_instance,
                                        staged_slots_program)

CASCADE = """
Trig(x, Flip<0.6>) :- Site(x).
Alarm(x, Flip<0.5>) :- Trig(x, 1).
"""

CONTINUOUS = "Temp(c, Normal<m, 2.0>) :- City(c, m)."


def _cities() -> Instance:
    return Instance.from_dict({"City": [("a", 10.0), ("b", 20.0)]})


def _sites(k: int = 3) -> Instance:
    return Instance.from_dict({"Site": [(i,) for i in range(k)]})


def _inline_sample(session, n, **cfg_overrides):
    """Sharded sampling through the inline (no-pool) executor."""
    cfg = session.config.replace(**cfg_overrides)
    with ShardExecutor(session.compiled.translated, session.instance,
                       cfg, inline=True) as executor:
        return sample_sharded(session, n, cfg, executor=executor)


def _ensemble(result):
    """(truncated, world list) - the draw-for-draw identity witness."""
    return (result.pdb.truncated, list(result.pdb.worlds))


# ---------------------------------------------------------------------------
# Shard plans and per-world streams
# ---------------------------------------------------------------------------


class TestShardPlan:
    def test_specs_tile_the_batch(self):
        plan = shard_plan(10, 3, seed=7)
        assert [spec.size for spec in plan.specs] == [4, 3, 3]
        covered = [world for spec in plan.specs
                   for world in spec.world_indices()]
        assert covered == list(range(10))

    def test_zero_size_shards_dropped(self):
        plan = shard_plan(2, 5, seed=0)
        assert len(plan.specs) == 2
        assert all(spec.size == 1 for spec in plan.specs)

    def test_int_seed_pins_entropy(self):
        assert shard_plan(8, 2, seed=11).entropy == 11
        assert shard_plan(8, 2, seed=11) == shard_plan(8, 2, seed=11)

    def test_none_seed_draws_shared_entropy(self):
        plan = shard_plan(8, 2, seed=None)
        assert all(spec.entropy == plan.entropy for spec in plan.specs)

    @pytest.mark.parametrize("n,shards", [(0, 2), (-1, 2), (5, 0),
                                          (True, 2), (5, True)])
    def test_validation(self, n, shards):
        with pytest.raises(ValidationError):
            shard_plan(n, shards)

    def test_shard_rngs_match_spawn_rngs(self):
        """Worker streams == ChaseConfig.spawn_rngs streams, per world."""
        cfg = ChaseConfig(seed=123)
        single = cfg.spawn_rngs(9)
        plan = shard_plan(9, 4, seed=123)
        for spec in plan.specs:
            for offset, rng in enumerate(shard_rngs(spec)):
                world = spec.start + offset
                expect = single[world].integers(0, 1 << 30, 4)
                assert rng.integers(0, 1 << 30, 4).tolist() \
                    == expect.tolist()


# ---------------------------------------------------------------------------
# Shard-count invariance (the central guarantee)
# ---------------------------------------------------------------------------


class TestShardInvariance:
    @pytest.mark.parametrize("engine", ["incremental", "naive"])
    def test_batched_mode_invariant_across_counts(self, engine):
        session = repro.compile(CASCADE).on(_sites(4), seed=31,
                                            engine=engine)
        results = [_inline_sample(session, 60, shards=k)
                   for k in (2, 3, 4)]
        assert all(r.diagnostics["mode"] == "batched" for r in results)
        reference = _ensemble(results[0])
        for result in results[1:]:
            assert _ensemble(result) == reference

    def test_barany_semantics_invariant(self):
        program = "Out(x, Flip<0.5>) :- In(x)."
        instance = Instance.from_dict({"In": [(1,), (2,)]})
        session = repro.compile(program,
                                semantics="barany").on(instance, seed=5)
        two = _inline_sample(session, 50, shards=2)
        three = _inline_sample(session, 50, shards=3)
        assert _ensemble(two) == _ensemble(three)

    def test_continuous_program_invariant(self):
        session = repro.compile(CONTINUOUS).on(_cities(), seed=13)
        two = _inline_sample(session, 40, shards=2)
        four = _inline_sample(session, 40, shards=4)
        assert _ensemble(two) == _ensemble(four)

    def test_scalar_mode_bit_identical_to_single_process(self):
        session = repro.compile(CASCADE).on(_sites(3), seed=17)
        sharded = _inline_sample(session, 40, shards=3,
                                 backend="scalar")
        single = session.configure(backend="scalar").sample(40)
        assert sharded.diagnostics["mode"] == "scalar"
        assert _ensemble(sharded) == _ensemble(single)

    def test_budget_decline_degrades_all_shards_to_scalar(self):
        # max_steps below the batched layer bound: every shard must
        # take the scalar route, bit-identical to the scalar loop.
        session = repro.compile(CASCADE).on(_sites(3), seed=23,
                                            max_steps=2)
        sharded = _inline_sample(session, 30, shards=3)
        assert sharded.diagnostics["mode"] == "scalar"
        single = session.configure(backend="scalar").sample(30)
        assert _ensemble(sharded) == _ensemble(single)

    def test_pool_matches_inline(self):
        """The real process pool returns what inline execution returns."""
        session = repro.compile(CASCADE).on(_sites(3), seed=41)
        inline = _inline_sample(session, 30, shards=2)
        pooled = session.sample(30, shards=2)
        assert pooled.backend == "sharded"
        assert _ensemble(pooled) == _ensemble(inline)

    def test_shards_one_takes_the_single_process_path(self):
        session = repro.compile(CASCADE).on(_sites(3), seed=3)
        result = session.sample(50, shards=1)
        assert result.backend == "batched"  # not "sharded"
        assert _ensemble(result) == _ensemble(session.sample(50))

    def test_marginals_columnar_merge_consistent(self):
        """Merged columnar marginal reads == materialized-world counts."""
        session = repro.compile(CASCADE).on(_sites(4), seed=29)
        result = _inline_sample(session, 80, shards=3)
        assert isinstance(result.pdb, ColumnarMonteCarloPDB)
        assert not result.pdb.materialized
        columnar = dict(result.fact_marginals())
        counts: dict = {}
        for world in result.pdb.worlds:
            for fact in world.facts:
                counts[fact] = counts.get(fact, 0) + 1
        assert columnar == {fact: count / result.pdb.n_runs
                            for fact, count in counts.items()}


class TestShardValidation:
    def test_shared_streams_rejected(self):
        session = repro.compile(CASCADE).on(_sites(2), seed=1,
                                            streams="shared")
        with pytest.raises(ValidationError, match="spawn"):
            session.sample(10, shards=2)

    def test_generator_seed_rejected(self):
        session = repro.compile(CASCADE).on(
            _sites(2), seed=np.random.default_rng(0))
        with pytest.raises(ValidationError, match="int or None"):
            session.sample(10, shards=2)

    def test_workers_and_shards_exclusive(self):
        session = repro.compile(CASCADE).on(_sites(2), seed=1)
        with pytest.raises(ValidationError, match="mutually exclusive"):
            session.sample(10, workers=2, shards=2)

    def test_config_field_validation(self):
        with pytest.raises(ValidationError):
            ChaseConfig(shards=0)
        with pytest.raises(ValidationError):
            ChaseConfig(shards=True)
        assert ChaseConfig(shards=4).shards == 4

    def test_mixed_mode_results_rejected_by_merge(self):
        session = repro.compile(CASCADE).on(_sites(2), seed=1)
        cfg = session.config.replace(shards=2)
        plan = shard_plan(20, 2, seed=1)
        with ShardExecutor(session.compiled.translated,
                           session.instance, cfg,
                           inline=True) as executor:
            results = executor.run(plan)
        import dataclasses
        forged = [results[0],
                  dataclasses.replace(results[1], mode="scalar",
                                      outcome=None, worlds=())]
        with pytest.raises(ChaseError, match="shard-invariant"):
            merge_shard_results(plan, forged,
                                session.compiled.visible_relations,
                                cfg, 0.0)


# ---------------------------------------------------------------------------
# Per-world draw mode in the batched engine
# ---------------------------------------------------------------------------


class TestPerWorldDrawMode:
    def _chase(self, n_sites=3, seed=7):
        session = repro.compile(CASCADE).on(_sites(n_sites), seed=seed)
        return session, session._batched_chase()

    def test_draw_mode_diagnostic_and_min_group(self):
        session, chase = self._chase()
        rngs = session.config.spawn_rngs(12)
        outcome = chase.run_batch(12, None, None, DEFAULT_POLICY,
                                  10_000, min_group=8,
                                  per_world_rngs=rngs)
        assert outcome.diagnostics["draw_mode"] == "per-world"
        # min_group forced to 1: no world went scalar just for being
        # in a small group (co-membership must not matter).
        assert outcome.diagnostics["n_split"] == 0

    def test_rng_count_mismatch_rejected(self):
        session, chase = self._chase()
        with pytest.raises(ChaseError, match="per_world_rngs"):
            chase.run_batch(5, None, None, DEFAULT_POLICY, 10_000,
                            per_world_rngs=session.config.spawn_rngs(4))

    def test_split_invariance_at_engine_level(self):
        session, chase = self._chase(n_sites=4, seed=19)
        rngs = session.config.spawn_rngs(20)
        whole = chase.run_batch(20, None, None, DEFAULT_POLICY, 10_000,
                                per_world_rngs=rngs)
        visible = session.compiled.visible_relations
        reference = ColumnarMonteCarloPDB(whole, visible).worlds
        merged: list = []
        for start, size in ((0, 7), (7, 13)):
            fresh = session.config.spawn_rngs(20)[start:start + size]
            part = chase.run_batch(size, None, None, DEFAULT_POLICY,
                                   10_000, per_world_rngs=fresh)
            merged.extend(ColumnarMonteCarloPDB(part, visible).worlds)
        assert merged == reference


# ---------------------------------------------------------------------------
# Pickle round-trips (the process boundary)
# ---------------------------------------------------------------------------


class TestPickleRoundTrips:
    def _roundtrip(self, value):
        return pickle.loads(pickle.dumps(value))

    def test_facts_and_instances(self):
        fact = repro.Fact("R", (1, "x", 2.5))
        assert self._roundtrip(fact) == fact
        instance = staged_slots_instance(n_stages=2, slots_per_stage=2,
                                         padding=5)
        restored = self._roundtrip(instance)
        assert restored == instance
        assert restored.facts_of("Stage") == instance.facts_of("Stage")

    @pytest.mark.parametrize("semantics", ["grohe", "barany"])
    def test_translated_program_reproduces_samples(self, semantics):
        compiled = repro.compile(CASCADE, semantics=semantics)
        translated = self._roundtrip(compiled.translated)
        original = compiled.on(_sites(2), seed=77).sample(25)
        restored = repro.compile(translated).on(_sites(2),
                                                seed=77).sample(25)
        assert list(restored.pdb.worlds) == list(original.pdb.worlds)

    def test_shard_plan_and_spec(self):
        plan = shard_plan(10, 3, seed=5)
        assert self._roundtrip(plan) == plan
        assert self._roundtrip(plan.specs[1]) == plan.specs[1]

    def test_batch_outcome_columnar_result(self):
        session = repro.compile(CASCADE).on(_sites(3), seed=9)
        chase = session._batched_chase()
        rngs = session.config.spawn_rngs(15)
        outcome = chase.run_batch(15, None, None, DEFAULT_POLICY,
                                  10_000, per_world_rngs=rngs)
        restored = self._roundtrip(outcome)
        assert isinstance(restored, BatchOutcome)
        visible = session.compiled.visible_relations
        assert ColumnarMonteCarloPDB(restored, visible).worlds \
            == ColumnarMonteCarloPDB(outcome, visible).worlds

    def test_shard_result_roundtrip(self):
        session = repro.compile(CASCADE).on(_sites(2), seed=12)
        cfg = session.config.replace(shards=2)
        plan = shard_plan(12, 2, seed=12)
        with ShardExecutor(session.compiled.translated,
                           session.instance, cfg,
                           inline=True) as executor:
            results = executor.run(plan)
        for result in results:
            restored = self._roundtrip(result)
            assert restored.spec == result.spec
            assert restored.mode == result.mode

    def test_chase_config_roundtrip(self):
        cfg = ChaseConfig(seed=3, shards=4, max_steps=500)
        assert self._roundtrip(cfg) == cfg


# ---------------------------------------------------------------------------
# Satellite: Session._fork_engine routes through overlay_fork
# ---------------------------------------------------------------------------


class TestOverlayForkRouting:
    def test_fork_is_overlay_with_shared_base(self):
        """Per-run forks are O(delta): no copy of the input fact set."""
        instance = staged_slots_instance(n_stages=4, slots_per_stage=4,
                                         padding=400)
        session = repro.compile(
            staged_slots_program(n_stages=4)).on(instance, seed=1)
        base = session._base_engine("incremental")
        fork = session._fork_engine("incremental")
        assert isinstance(fork, OverlayApplicability)
        # Delta layering, not copying: the fork references the base's
        # fact set and starts with an empty delta of its own.
        assert fork._parent_facts is base._fact_set
        assert len(fork._delta) == 0
        fork.add_fact(repro.Fact("Pad", (999_999,)))
        assert len(fork._delta) == 1
        assert len(base._fact_set) == len(instance)

    def test_naive_engine_still_plain_forks(self):
        session = repro.compile(CASCADE).on(_sites(2), seed=1,
                                            engine="naive")
        fork = session._fork_engine("naive")
        assert not isinstance(fork, OverlayApplicability)

    def test_scalar_output_unchanged_by_overlay_forks(self):
        """Overlay routing preserves seeded scalar output exactly."""
        session = repro.compile(CASCADE).on(_sites(3), seed=55,
                                            backend="scalar")
        base = session._base_engine("incremental")
        overlay_worlds = list(session.sample(30).pdb.worlds)
        # Replay with eager full forks - the pre-overlay behaviour.
        from repro.core.chase import run_chase_prepared
        cfg = session.config
        eager = []
        visible = session.compiled.visible_relations
        for rng in cfg.spawn_rngs(30):
            run = run_chase_prepared(session.compiled.translated,
                                     base.fork(), session.instance,
                                     DEFAULT_POLICY, rng, cfg.max_steps)
            assert run.terminated
            eager.append(run.instance.restrict(visible))
        assert overlay_worlds == eager


# ---------------------------------------------------------------------------
# Cross-shard group coalescing (content-addressed distribution keys)
# ---------------------------------------------------------------------------


class TestCrossShardCoalescing:
    def test_distribution_key_is_content_addressed(self):
        """Keys carry (distribution name, params), not process ids."""
        session = repro.compile(CASCADE).on(_sites(3), seed=9)
        outcome = session.sample(40).pdb._outcome
        keys = {firing.distribution_key
                for group in outcome.groups
                for firing, _values in group.columns}
        assert keys
        assert keys <= {("Flip", (0.6,)), ("Flip", (0.5,))}
        # And they survive pickling unchanged - the property the old
        # id()-based key could never have.
        assert {pickle.loads(pickle.dumps(key)) for key in keys} == keys

    def test_merged_group_count_matches_single_shard(self):
        """Equal-signature groups from different shards coalesce.

        Per-world draw mode makes the worlds bit-identical across
        shard counts, so after merging, k=3 must recover exactly the
        k=1 group structure rather than three disjoint copies of it.
        """
        session = repro.compile(CASCADE).on(_sites(4), seed=29)
        one = _inline_sample(session, 80, shards=1)
        three = _inline_sample(session, 80, shards=3)
        assert _ensemble(one) == _ensemble(three)
        assert one.diagnostics["n_groups"] > 0
        assert three.diagnostics["n_groups"] \
            == one.diagnostics["n_groups"]

    def test_merged_groups_answer_like_unmerged(self):
        """Coalescing is invisible to every marginal read."""
        session = repro.compile(CASCADE).on(_sites(3), seed=77)
        one = _inline_sample(session, 60, shards=1)
        three = _inline_sample(session, 60, shards=3)
        assert dict(one.fact_marginals()) == dict(three.fact_marginals())
