"""The suite's budgeted differential-fuzz pass.

Every pytest run fuzzes a little (``--fuzz-budget``, default set in
:mod:`repro.testing.pytest_plugin`); CI runs a larger fixed-seed pass
through ``repro fuzz --budget 200 --seed 0`` on top.  A failure here
prints the per-oracle detail and the shrunk reproducer - persist it
with ``repro fuzz --corpus tests/fuzz_corpus`` to pin it permanently.
"""

from __future__ import annotations

from repro.testing import default_oracles, run_fuzz


def _format_failures(report) -> str:
    lines = [report.summary()]
    for discrepancy in report.discrepancies:
        lines.append(f"[{discrepancy.oracle}] "
                     f"{discrepancy.case.describe()}")
        lines.append(f"  {discrepancy.detail}")
        lines.append("  shrunk reproducer:")
        lines.extend(f"    {line}" for line in
                     discrepancy.shrunk.program.pretty().splitlines())
        for fact in discrepancy.shrunk.instance.sorted_facts():
            lines.append(f"    input {fact!r}")
    return "\n".join(lines)


class TestBudgetedFuzzPass:
    def test_all_oracles_agree(self, fuzz_budget, fuzz_seed):
        report = run_fuzz(budget=fuzz_budget, seed=fuzz_seed)
        assert report.n_cases == fuzz_budget
        assert report.ok(), _format_failures(report)

    def test_every_oracle_exercised(self, fuzz_budget, fuzz_seed):
        """The budget must actually reach each oracle (no dead checks).

        ``checked`` counts include skips; what matters is that every
        oracle got at least one *runnable* case, which a dozen mixed
        kinds always provide.
        """
        report = run_fuzz(budget=max(fuzz_budget, 12), seed=fuzz_seed)
        for oracle in default_oracles():
            stats = report.stats[oracle.name]
            assert stats.checked == report.n_cases
            assert stats.ok > 0, \
                f"oracle {oracle.name} never ran a case to completion"

    def test_report_is_deterministic(self):
        first = run_fuzz(budget=4, seed=11)
        second = run_fuzz(budget=4, seed=11)
        first_json = first.to_json()
        second_json = second.to_json()
        # Wall-clock fields are the only permitted nondeterminism.
        for payload in (first_json, second_json):
            payload.pop("elapsed_seconds")
            for stats in payload["oracles"].values():
                stats.pop("seconds")
        assert first_json == second_json
