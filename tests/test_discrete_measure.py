"""Tests for discrete measures (repro.measures.discrete)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MeasureError
from repro.measures.discrete import DiscreteMeasure, mixture


def measures(max_points=5):
    """Random sub-probability measures over small integer supports."""
    return st.dictionaries(st.integers(0, 9),
                           st.floats(0.0, 1.0), max_size=max_points) \
        .map(_normalize_or_zero)


def _normalize_or_zero(masses):
    total = sum(masses.values())
    if total <= 0:
        return DiscreteMeasure.zero()
    scale = min(1.0 / total, 1.0)
    return DiscreteMeasure({k: v * scale for k, v in masses.items()})


class TestConstruction:
    def test_dirac(self):
        m = DiscreteMeasure.dirac("x")
        assert m.mass("x") == 1.0 and m.total_mass() == 1.0

    def test_uniform(self):
        m = DiscreteMeasure.uniform([1, 2, 3, 4])
        assert m.mass(1) == pytest.approx(0.25)
        assert m.is_probability()

    def test_uniform_empty_rejected(self):
        with pytest.raises(MeasureError):
            DiscreteMeasure.uniform([])

    def test_from_samples(self):
        m = DiscreteMeasure.from_samples([1, 1, 2, 2, 2, 3])
        assert m.mass(2) == pytest.approx(0.5)
        assert m.is_probability()

    def test_negative_mass_rejected(self):
        with pytest.raises(MeasureError):
            DiscreteMeasure({1: -0.1})

    def test_zero_masses_dropped(self):
        m = DiscreteMeasure({1: 0.0, 2: 0.5})
        assert 1 not in m and 2 in m

    def test_duplicate_accumulation_via_add(self):
        m = DiscreteMeasure({1: 0.3}).add(DiscreteMeasure({1: 0.2}))
        assert m.mass(1) == pytest.approx(0.5)


class TestQueries:
    def test_measure_of_event(self):
        m = DiscreteMeasure({1: 0.2, 2: 0.3, 3: 0.5})
        assert m.measure_of(lambda x: x >= 2) == pytest.approx(0.8)

    def test_expectation(self):
        m = DiscreteMeasure({0: 0.5, 2: 0.5})
        assert m.expectation(float) == pytest.approx(1.0)

    def test_deficit(self):
        m = DiscreteMeasure({1: 0.7})
        assert m.deficit() == pytest.approx(0.3)
        assert m.is_subprobability() and not m.is_probability()

    def test_sorted_points(self):
        m = DiscreteMeasure({3: 0.1, 1: 0.1, 2: 0.1})
        assert m.sorted_points() == [1, 2, 3]


class TestTransforms:
    def test_push_forward_preserves_mass(self):
        m = DiscreteMeasure({1: 0.25, 2: 0.25, 3: 0.5})
        pushed = m.push_forward(lambda x: x % 2)
        assert pushed.mass(1) == pytest.approx(0.75)
        assert pushed.total_mass() == pytest.approx(m.total_mass())

    def test_restrict(self):
        m = DiscreteMeasure({1: 0.5, 2: 0.5})
        assert m.restrict(lambda x: x == 1).total_mass() == \
            pytest.approx(0.5)

    def test_condition(self):
        m = DiscreteMeasure({1: 0.2, 2: 0.6, 3: 0.2})
        c = m.condition(lambda x: x != 2)
        assert c.mass(1) == pytest.approx(0.5)
        assert c.is_probability()

    def test_condition_null_event(self):
        with pytest.raises(MeasureError):
            DiscreteMeasure({1: 1.0}).condition(lambda x: x == 99)

    def test_scale(self):
        m = DiscreteMeasure({1: 0.5}).scale(0.5)
        assert m.mass(1) == pytest.approx(0.25)
        with pytest.raises(MeasureError):
            m.scale(-1.0)

    def test_product(self):
        a = DiscreteMeasure({0: 0.5, 1: 0.5})
        b = DiscreteMeasure({0: 0.3, 1: 0.7})
        p = a.product(b)
        assert p.mass((1, 0)) == pytest.approx(0.15)
        assert p.total_mass() == pytest.approx(1.0)

    def test_normalize(self):
        m = DiscreteMeasure({1: 0.2, 2: 0.2}).normalize()
        assert m.is_probability()
        with pytest.raises(MeasureError):
            DiscreteMeasure.zero().normalize()


class TestComparison:
    def test_tv_distance(self):
        a = DiscreteMeasure({1: 1.0})
        b = DiscreteMeasure({2: 1.0})
        assert a.tv_distance(b) == pytest.approx(1.0)
        assert a.tv_distance(a) == 0.0

    def test_allclose(self):
        a = DiscreteMeasure({1: 0.5, 2: 0.5})
        b = DiscreteMeasure({1: 0.5 + 1e-12, 2: 0.5 - 1e-12})
        assert a.allclose(b)

    def test_mixture(self):
        mixed = mixture([(0.5, DiscreteMeasure.dirac(1)),
                         (0.5, DiscreteMeasure.dirac(2))])
        assert mixed.mass(1) == pytest.approx(0.5)


class TestMeasureProperties:
    @given(measures())
    def test_mass_bounds(self, m):
        assert -1e-9 <= m.total_mass() <= 1.0 + 1e-6
        for point in m:
            assert m.mass(point) > 0

    @given(measures())
    def test_push_forward_mass_invariant(self, m):
        pushed = m.push_forward(lambda x: x // 2)
        assert pushed.total_mass() == pytest.approx(m.total_mass())

    @given(measures(), measures())
    def test_tv_symmetry_and_bounds(self, a, b):
        d = a.tv_distance(b)
        assert d == pytest.approx(b.tv_distance(a))
        assert -1e-9 <= d <= 1.0 + 1e-6

    @given(measures(), measures(), measures())
    def test_tv_triangle_inequality(self, a, b, c):
        assert a.tv_distance(c) <= \
            a.tv_distance(b) + b.tv_distance(c) + 1e-9

    @given(measures())
    def test_restrict_partitions_mass(self, m):
        even = m.restrict(lambda x: x % 2 == 0)
        odd = m.restrict(lambda x: x % 2 == 1)
        assert even.total_mass() + odd.total_mass() == \
            pytest.approx(m.total_mass())
