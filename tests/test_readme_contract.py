"""Guards that the README's code snippets keep working as written."""

import pytest

import repro


class TestReadmeQuickstart:
    def test_earthquake_snippet(self):
        program = repro.Program.parse("""
            Earthquake(c, Flip<0.1>)    :- City(c, r).
            Unit(h, c)                  :- House(h, c).
            Burglary(x, c, Flip<r>)     :- Unit(x, c), City(c, r).
            Trig(x, Flip<0.6>)          :- Unit(x, c), Earthquake(c, 1).
            Trig(x, Flip<0.9>)          :- Burglary(x, c, 1).
            Alarm(x)                    :- Trig(x, 1).
        """)
        data = repro.Instance.from_dict({
            "City":  [("Napa", 0.03)],
            "House": [("h1", "Napa")],
        })
        pdb = repro.exact_spdb(program, data)
        assert pdb.marginal(repro.Fact("Alarm", ("h1",))) == \
            pytest.approx(0.08538)
        assert repro.exact_spdb(program, data,
                                parallel=True).allclose(pdb)
        report = repro.analyze_termination(program)
        assert report.weakly_acyclic

    def test_heights_snippet(self):
        heights = repro.Program.parse(
            "PHeight(p, Normal<mu, s2>) :- PCountry(p, c), "
            "CMoments(c, mu, s2).")
        world = repro.Instance.from_dict({
            "PCountry": [("ada", "NL")],
            "CMoments": [("NL", 183.8, 49.0)]})
        mc = repro.sample_spdb(heights, world, n=2000, rng=0)
        values = mc.values_of(
            lambda D: [f.args[1] for f in D.facts_of("PHeight")])
        from repro.measures import summarize
        assert summarize(values).mean_within(183.8)

    def test_package_docstring_example(self):
        program = repro.Program.parse(
            "Earthquake(c, Flip<0.1>) :- City(c, r).")
        D0 = repro.Instance.of(repro.Fact("City", ("Napa", 0.03)))
        pdb = repro.exact_spdb(program, D0)
        assert round(pdb.marginal(
            repro.Fact("Earthquake", ("Napa", 1))), 3) == 0.1


class TestWeightedPdbQueryLayer:
    def test_lifted_queries_on_weighted_pdb(self):
        from repro.core.observe import likelihood_weighting, observe
        from repro.query.aggregates import Aggregate, agg_count
        from repro.query.lifted import (aggregate_distribution,
                                        boolean_probability)
        from repro.query.relalg import scan
        program = repro.Program.parse("""
            A(Flip<0.3>) :- true.
            B(Flip<0.5>) :- A(1).
        """)
        result = likelihood_weighting(program, None,
                                      [observe("A", 1)], n=1500, rng=0)
        b_count = Aggregate(scan("B", "v"), (), {"n": agg_count()})
        counts = aggregate_distribution(result.posterior, b_count)
        assert counts.total_mass() == pytest.approx(1.0)
        assert counts.mass(1) == pytest.approx(1.0)  # B always derived
        b_one = scan("B", "v").where(v=1)
        assert abs(boolean_probability(result.posterior, b_one)
                   - 0.5) < 0.05
