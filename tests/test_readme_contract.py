"""Guards that the README's code snippets keep working as written.

The README is the real file at the repository root; every fenced
``python`` block is extracted and executed verbatim (each in a fresh
namespace), so documented behaviour cannot silently drift from the
library.  A few load-bearing claims are additionally pinned as
explicit tests.
"""

import re
from pathlib import Path

import pytest

import repro

README = Path(__file__).resolve().parent.parent / "README.md"

_PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_snippets() -> list[str]:
    text = README.read_text(encoding="utf-8")
    return [match.group(1) for match in _PYTHON_BLOCK.finditer(text)]


class TestReadmeFile:
    def test_readme_exists_and_advertises_the_facade(self):
        assert README.exists(), "README.md is missing"
        text = README.read_text(encoding="utf-8")
        assert "repro.compile(" in text
        assert ".on(" in text
        assert "--json" in text
        assert "PODS 2020" in text

    def test_readme_has_executable_snippets(self):
        assert len(python_snippets()) >= 3


@pytest.mark.parametrize(
    "index,snippet",
    list(enumerate(python_snippets())),
    ids=lambda value: f"block{value}" if isinstance(value, int) else "")
def test_readme_snippet_executes(index, snippet):
    """Every fenced python block runs as written, however many exist."""
    namespace: dict = {}
    exec(compile(snippet, f"README.md[python #{index}]", "exec"),
         namespace)


class TestReadmeQuickstart:
    """The quickstart's numbers, pinned independently of the prose."""

    def test_earthquake_quickstart(self):
        compiled = repro.compile(
            "Earthquake(c, Flip<0.1>) :- City(c, r).")
        data = repro.Instance.of(repro.Fact("City", ("Napa", 0.03)))
        result = compiled.on(data).exact()
        assert result.marginal(
            repro.Fact("Earthquake", ("Napa", 1))) == pytest.approx(0.1)
        parallel = compiled.on(data, parallel=True).exact()
        assert parallel.pdb.allclose(result.pdb)
        assert compiled.analyze().weakly_acyclic

    def test_heights_snippet(self):
        heights = repro.compile(
            "PHeight(p, Normal<mu, s2>) :- PCountry(p, c), "
            "CMoments(c, mu, s2).")
        world = repro.Instance.from_dict({
            "PCountry": [("ada", "NL")],
            "CMoments": [("NL", 183.8, 49.0)]})
        mc = heights.on(world, seed=0).sample(2000)
        values = mc.pdb.values_of(
            lambda D: [f.args[1] for f in D.facts_of("PHeight")])
        from repro.measures import summarize
        assert summarize(values).mean_within(183.8)

    def test_package_docstring_example(self):
        compiled = repro.compile(
            "Earthquake(c, Flip<0.1>) :- City(c, r).")
        D0 = repro.Instance.of(repro.Fact("City", ("Napa", 0.03)))
        result = compiled.on(D0).exact()
        assert round(result.marginal(
            repro.Fact("Earthquake", ("Napa", 1))), 3) == 0.1


class TestWeightedPdbQueryLayer:
    def test_lifted_queries_on_weighted_pdb(self):
        from repro.query.aggregates import Aggregate, agg_count
        from repro.query.lifted import (aggregate_distribution,
                                        boolean_probability)
        from repro.query.relalg import scan
        compiled = repro.compile("""
            A(Flip<0.3>) :- true.
            B(Flip<0.5>) :- A(1).
        """)
        result = compiled.on(seed=0).observe(
            repro.observe("A", 1)).posterior(method="likelihood",
                                             n=1500)
        b_count = Aggregate(scan("B", "v"), (), {"n": agg_count()})
        counts = aggregate_distribution(result.pdb, b_count)
        assert counts.total_mass() == pytest.approx(1.0)
        assert counts.mass(1) == pytest.approx(1.0)  # B always derived
        b_one = scan("B", "v").where(v=1)
        assert abs(boolean_probability(result.pdb, b_one)
                   - 0.5) < 0.05
