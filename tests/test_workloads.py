"""Tests for workload constructors and generators."""

import pytest

from repro.core.termination import weakly_acyclic
from repro.engine.seminaive import seminaive_fixpoint
from repro.pdb.facts import Fact
from repro.workloads import paper
from repro.workloads.generators import (base_instance,
                                        bernoulli_grid_program,
                                        chain_instance, chain_program,
                                        earthquake_city_instance,
                                        heights_instance, items_instance,
                                        random_discrete_program,
                                        random_graph_instance,
                                        transitive_closure_program)


class TestPaperWorkloads:
    def test_g_eps_parameter_range(self):
        with pytest.raises(ValueError):
            paper.example_1_1_g_eps(0.0)
        with pytest.raises(ValueError):
            paper.example_1_1_g_eps(0.75)

    def test_expected_tables_are_probabilities(self):
        for table in (paper.G0_EXPECTED_GROHE, paper.G0_EXPECTED_BARANY,
                      paper.H_EXPECTED_GROHE, paper.H_EXPECTED_BARANY,
                      paper.g_eps_expected(0.25)):
            assert sum(table.values()) == pytest.approx(1.0)

    def test_earthquake_instance_shape(self):
        instance = paper.example_3_4_instance()
        assert len(instance.facts_of("City")) == 2
        assert len(instance.facts_of("House")) == 1

    def test_earthquake_instance_custom(self):
        instance = paper.example_3_4_instance(
            cities={"x": 0.5}, houses={}, businesses={"b": "x"})
        assert len(instance.facts_of("House")) == 0
        assert len(instance.facts_of("Business")) == 1

    def test_heights_instance(self):
        instance = paper.example_3_5_instance(persons_per_country=5)
        assert len(instance.facts_of("PCountry")) == 10
        assert len(instance.facts_of("CMoments")) == 2

    def test_closed_form_alarm_bounds(self):
        for rate in (0.0, 0.03, 0.5, 1.0):
            p = paper.alarm_probability_closed_form(rate)
            assert 0.0 <= p <= 1.0
        assert paper.alarm_probability_closed_form(0.0) == \
            pytest.approx(0.06)

    def test_random_walk_expected_steps(self):
        assert paper.random_walk_expected_steps(0.5, 0) == 1.0
        assert paper.random_walk_expected_steps(0.5, 2) == 1.75

    def test_seed_and_trigger_instances(self):
        assert Fact("Seed", (0,)) in paper.seed_instance()
        assert len(paper.seed_instance(3).facts_of("Succ")) == 3
        assert Fact("Trigger", (5,)) in paper.trigger_instance(5)


class TestGenerators:
    def test_earthquake_scaling(self):
        instance = earthquake_city_instance(4, 6, seed=1)
        assert len(instance.facts_of("City")) == 4
        units = len(instance.facts_of("House")) + \
            len(instance.facts_of("Business"))
        assert units == 24

    def test_earthquake_rates_valid(self):
        instance = earthquake_city_instance(10, 1, seed=2)
        for f in instance.facts_of("City"):
            assert 0.0 < f.args[1] < 1.0

    def test_heights_scaling(self):
        instance = heights_instance(3, 5, seed=0)
        assert len(instance.facts_of("PCountry")) == 15

    def test_chain_program_runs(self):
        program = chain_program(5)
        result = seminaive_fixpoint(program, chain_instance(3))
        assert len(result.facts_of("T5")) == 3

    def test_transitive_closure_generator(self):
        graph = random_graph_instance(8, 12, seed=3)
        result = seminaive_fixpoint(transitive_closure_program(), graph)
        assert result.facts_of("Path")

    def test_random_graph_no_self_loops(self):
        graph = random_graph_instance(6, 10, seed=4)
        for f in graph.facts_of("Edge"):
            assert f.args[0] != f.args[1]

    def test_deterministic_given_seed(self):
        assert earthquake_city_instance(3, 2, seed=7) == \
            earthquake_city_instance(3, 2, seed=7)
        assert random_graph_instance(5, 8, seed=7) == \
            random_graph_instance(5, 8, seed=7)

    def test_bernoulli_grid(self):
        program = bernoulli_grid_program(0.5)
        assert len(program) == 1
        assert len(items_instance(7)) == 7

    def test_random_programs_weakly_acyclic(self):
        for seed in range(20):
            program = random_discrete_program(seed=seed)
            assert weakly_acyclic(program)
            assert program.is_discrete()
