"""Tests for the sequential chase (Section 4)."""

import numpy as np
import pytest

from repro.core.chase import (chase_markov_process, chase_outputs,
                              chase_step_kernel, run_chase)
from repro.core.policies import LastPolicy
from repro.core.program import Program
from repro.core.translate import is_aux_relation, translate
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads import paper


class TestRunChase:
    def test_deterministic_program_reaches_fixpoint(self):
        program = Program.parse("""
            Path(x, y) :- Edge(x, y).
            Path(x, z) :- Path(x, y), Edge(y, z).
        """)
        D = Instance.of(Fact("Edge", (1, 2)), Fact("Edge", (2, 3)))
        run = run_chase(program, D, rng=0)
        assert run.terminated
        assert Fact("Path", (1, 3)) in run.instance

    def test_chase_matches_datalog_fixpoint(self):
        from repro.engine.seminaive import seminaive_fixpoint
        program = Program.parse("""
            A(x) :- B(x).
            C(x) :- A(x).
        """)
        D = Instance.of(Fact("B", (1,)), Fact("B", (2,)))
        run = run_chase(program, D, rng=0)
        assert run.instance == seminaive_fixpoint(program, D)

    def test_random_program_samples(self, g0):
        run = run_chase(g0, rng=1)
        assert run.terminated
        values = {f.args[0] for f in run.instance.facts_of("R")}
        assert values <= {0, 1} and values

    def test_instances_grow_monotonically(self, earthquake_program,
                                          earthquake_instance):
        run = run_chase(earthquake_program, earthquake_instance,
                        rng=2, record_trace=True)
        assert run.terminated
        current = earthquake_instance
        for step in run.trace:
            assert step.fact not in current
            current = current.add(step.fact)
        assert current == run.instance

    def test_steps_equal_trace_length(self, g0):
        run = run_chase(g0, rng=3, record_trace=True)
        assert run.steps == len(run.trace)

    def test_truncation_flagged(self):
        program = paper.continuous_feedback_program()
        D = Instance.of(Fact("Seed", (0,)))
        run = run_chase(program, D, rng=4, max_steps=50)
        assert not run.terminated
        assert run.output() is None

    def test_terminated_output_is_instance(self, g0):
        run = run_chase(g0, rng=5)
        assert run.output() is run.instance

    def test_policy_changes_trace_not_result_distribution(self, g0):
        # Same seed, different policies may produce different traces.
        first = run_chase(g0, rng=6, record_trace=True)
        last = run_chase(g0, policy=LastPolicy(), rng=6,
                         record_trace=True)
        assert first.terminated and last.terminated
        # traces touch the two aux relations in opposite orders
        first_rels = [s.fact.relation for s in first.trace]
        last_rels = [s.fact.relation for s in last.trace]
        assert set(first_rels) == set(last_rels)

    def test_engine_parity(self, earthquake_program,
                           earthquake_instance):
        a = run_chase(earthquake_program, earthquake_instance, rng=7,
                      engine="incremental")
        b = run_chase(earthquake_program, earthquake_instance, rng=7,
                      engine="naive")
        assert a.instance == b.instance

    def test_invalid_engine(self, g0):
        with pytest.raises(ValueError):
            run_chase(g0, rng=0, engine="warp")

    def test_rng_accepts_seed_and_generator(self, g0):
        a = run_chase(g0, rng=11)
        b = run_chase(g0, rng=np.random.default_rng(11))
        assert a.instance == b.instance


class TestFdInvariant:
    def test_fd_holds_along_chase(self, earthquake_program,
                                  earthquake_instance):
        from repro.core.fd import check_all_fds
        translated = translate(earthquake_program)
        for seed in range(10):
            run = run_chase(translated, earthquake_instance, rng=seed)
            assert run.terminated
            assert check_all_fds(translated, run.instance)


class TestChaseOutputs:
    def test_aux_projected_by_default(self, g0):
        outputs = list(chase_outputs(g0, None, 5, rng=0))
        for world in outputs:
            assert world is not None
            assert not any(is_aux_relation(r) for r in world.relations())

    def test_keep_aux(self, g0):
        outputs = list(chase_outputs(g0, None, 3, rng=0, keep_aux=True))
        assert any(is_aux_relation(r)
                   for world in outputs for r in world.relations())

    def test_truncated_yield_none(self):
        program = paper.continuous_feedback_program()
        D = Instance.of(Fact("Seed", (0,)))
        outputs = list(chase_outputs(program, D, 3, rng=0, max_steps=20))
        assert outputs == [None, None, None]


class TestChaseKernel:
    def test_kernel_step_adds_one_fact(self, g0):
        kernel = chase_step_kernel(g0)
        rng = np.random.default_rng(0)
        D1 = kernel.sample(Instance.empty(), rng)
        assert len(D1) == 1

    def test_kernel_identity_on_stable(self):
        program = Program.parse("A(x) :- B(x).")
        kernel = chase_step_kernel(program)
        stable = Instance.of(Fact("B", (1,)), Fact("A", (1,)))
        rng = np.random.default_rng(0)
        assert kernel.sample(stable, rng) == stable

    def test_markov_process_absorption(self, g0):
        process = chase_markov_process(g0)
        rng = np.random.default_rng(1)
        path = process.sample_path(Instance.empty(), rng, max_steps=20)
        assert path.absorbed
        # Stability: absorbed paths end at a fixed instance.
        final = path.final
        assert not any(  # no applicable pairs remain
            True for _ in ())
        assert process.is_absorbing(final)

    def test_process_agrees_with_run_chase(self, g0):
        process = chase_markov_process(g0)
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        path = process.sample_path(Instance.empty(), rng_a, 50)
        run = run_chase(g0, None, None, rng_b, max_steps=50)
        assert path.final == run.instance
