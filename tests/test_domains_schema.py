"""Tests for attribute domains and schemas (repro.pdb.domains/schema)."""

import pytest

from repro.errors import SchemaError
from repro.pdb.domains import (ANY, BOOL, INT, NAT, REAL, STRING, UNIT,
                               FiniteDomain, IntervalDomain)
from repro.pdb.schema import RelationSchema, Schema, relation


class TestDomains:
    def test_real_accepts_numbers(self):
        assert REAL.contains(1.5) and REAL.contains(-3)
        assert not REAL.contains("x")
        assert not REAL.contains(True)  # bool is not a real constant
        assert not REAL.contains(float("inf"))

    def test_int_accepts_integral(self):
        assert INT.contains(3) and INT.contains(-2) and INT.contains(2.0)
        assert not INT.contains(2.5) and not INT.contains("2")

    def test_nat(self):
        assert NAT.contains(0) and NAT.contains(5)
        assert not NAT.contains(-1)

    def test_string(self):
        assert STRING.contains("abc") and not STRING.contains(3)

    def test_bool(self):
        assert BOOL.contains(True) and BOOL.contains(0) \
            and BOOL.contains(1.0)
        assert not BOOL.contains(2)

    def test_any_accepts_everything(self):
        for value in (1, "x", None, (1, 2), 3.5):
            assert ANY.contains(value)

    def test_finite_domain(self):
        d = FiniteDomain("color", {"red", "green"})
        assert d.contains("red") and not d.contains("blue")

    def test_finite_domain_nonempty(self):
        with pytest.raises(SchemaError):
            FiniteDomain("empty", [])

    def test_interval_domain(self):
        assert UNIT.contains(0.5) and UNIT.contains(0) \
            and UNIT.contains(1)
        assert not UNIT.contains(1.5) and not UNIT.contains("x")

    def test_interval_invalid(self):
        with pytest.raises(SchemaError):
            IntervalDomain("bad", 2, 1)

    def test_superset_relations(self):
        assert REAL.is_superset_of(INT)
        assert REAL.is_superset_of(UNIT)
        assert INT.is_superset_of(NAT)
        assert not NAT.is_superset_of(INT)
        assert ANY.is_superset_of(REAL)
        assert UNIT.is_superset_of(BOOL)  # {0,1} ⊆ [0,1]

    def test_discreteness(self):
        assert INT.is_discrete() and STRING.is_discrete()
        assert not REAL.is_discrete() and not UNIT.is_discrete()


class TestRelationSchema:
    def test_basics(self):
        r = relation("City", STRING, REAL, extensional=True)
        assert r.arity == 2 and r.extensional

    def test_validate_tuple(self):
        r = relation("City", STRING, REAL)
        r.validate_tuple(("Napa", 0.03))
        with pytest.raises(SchemaError):
            r.validate_tuple(("Napa",))
        with pytest.raises(SchemaError):
            r.validate_tuple((3, 0.03))

    def test_zero_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])


class TestSchema:
    def test_lookup(self):
        schema = Schema([relation("R", INT), relation("S", STRING)])
        assert "R" in schema and schema["R"].arity == 1
        with pytest.raises(SchemaError):
            schema["missing"]

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema([relation("R", INT), relation("R", STRING)])

    def test_from_arities(self):
        schema = Schema.from_arities({"R": 2, "E": 1},
                                     extensional=["E"])
        assert schema["R"].arity == 2
        assert schema.extensional_names == ("E",)
        assert schema.intensional_names == ("R",)

    def test_extended_and_restricted(self):
        schema = Schema([relation("R", INT)])
        bigger = schema.extended([relation("S", INT)])
        assert "S" in bigger and "S" not in schema
        smaller = bigger.restricted(["R"])
        assert "S" not in smaller
        with pytest.raises(SchemaError):
            bigger.restricted(["missing"])

    def test_iteration_sorted(self):
        schema = Schema.from_arities({"Z": 1, "A": 1, "M": 1})
        assert list(schema) == ["A", "M", "Z"]

    def test_validate_fact(self):
        schema = Schema([relation("R", INT, STRING)])
        schema.validate_fact("R", (1, "x"))
        with pytest.raises(SchemaError):
            schema.validate_fact("R", ("x", 1))
