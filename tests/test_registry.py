"""Tests for the distribution registry."""

import pytest

from repro.distributions.discrete import Flip
from repro.distributions.registry import (DEFAULT_REGISTRY,
                                          DistributionRegistry,
                                          default_registry)
from repro.errors import DistributionError


class TestRegistry:
    def test_default_contains_example_2_2(self):
        for name in ("Flip", "Binomial", "Poisson", "Normal"):
            assert name in DEFAULT_REGISTRY

    def test_default_contains_extensions(self):
        for name in ("Exponential", "Gamma", "Beta", "Uniform",
                     "LogNormal", "Geometric", "Categorical",
                     "DiscreteUniform", "Laplace", "Bernoulli"):
            assert name in DEFAULT_REGISTRY

    def test_unknown_name(self):
        with pytest.raises(DistributionError):
            DEFAULT_REGISTRY["NoSuchDistribution"]

    def test_duplicate_registration_rejected(self):
        registry = DistributionRegistry([Flip()])
        with pytest.raises(DistributionError):
            registry.register(Flip())

    def test_explicit_alias_name(self):
        registry = DistributionRegistry()
        registry.register(Flip(), name="Coin")
        assert "Coin" in registry and "Flip" not in registry

    def test_names_sorted(self):
        names = DEFAULT_REGISTRY.names()
        assert list(names) == sorted(names)

    def test_copy_isolated(self):
        copy = DEFAULT_REGISTRY.copy()
        copy.register(Flip(), name="Another")
        assert "Another" in copy
        assert "Another" not in DEFAULT_REGISTRY


class TestFlipPrimeAlias:
    """The paper's Flip' device (Example 1.1)."""

    def test_alias_exists(self):
        assert "FlipPrime" in DEFAULT_REGISTRY

    def test_alias_same_law_different_name(self):
        flip = DEFAULT_REGISTRY["Flip"]
        prime = DEFAULT_REGISTRY["FlipPrime"]
        assert prime.name == "FlipPrime" != flip.name
        assert prime.density((0.3,), 1) == flip.density((0.3,), 1)
        assert prime.mean((0.3,)) == flip.mean((0.3,))

    def test_alias_delegation_complete(self):
        prime = DEFAULT_REGISTRY["FlipPrime"]
        assert list(prime.support((0.5,))) == [0, 1]
        assert prime.support_is_finite((0.5,))
        assert prime.variance((0.5,)) == pytest.approx(0.25)
        pairs, residue = prime.truncated_support((0.5,))
        assert dict(pairs) == {0: 0.5, 1: 0.5}

    def test_fresh_default_registry_independent(self):
        fresh = default_registry()
        assert fresh is not DEFAULT_REGISTRY
        assert "FlipPrime" in fresh
