"""Tests for stochastic kernels (repro.measures.kernels)."""

import numpy as np
import pytest

from repro.errors import MeasureError
from repro.measures.discrete import DiscreteMeasure
from repro.measures.kernels import (ComposedKernel, DiscreteKernel,
                                    FunctionKernel, IdentityKernel,
                                    ProductKernel, SamplerKernel,
                                    push_forward_measure, sample_discrete)


def coin_kernel(p=0.5):
    """x -> Bernoulli(p) shifted by x."""
    return DiscreteKernel(
        lambda x: DiscreteMeasure({x: 1 - p, x + 1: p}))


class TestIdentityKernel:
    def test_sample(self, rng):
        assert IdentityKernel().sample("state", rng) == "state"

    def test_distribution(self):
        d = IdentityKernel().distribution(7)
        assert d.mass(7) == 1.0


class TestFunctionKernel:
    def test_deterministic(self, rng):
        k = FunctionKernel(lambda x: x * 2)
        assert k.sample(3, rng) == 6
        assert k.distribution(3).mass(6) == 1.0


class TestDiscreteKernel:
    def test_distribution(self):
        k = coin_kernel(0.25)
        d = k.distribution(0)
        assert d.mass(1) == pytest.approx(0.25)

    def test_sampling_matches_distribution(self, rng):
        k = coin_kernel(0.25)
        samples = [k.sample(0, rng) for _ in range(4000)]
        frequency = sum(1 for s in samples if s == 1) / len(samples)
        assert abs(frequency - 0.25) < 0.05


class TestComposition:
    def test_chapman_kolmogorov(self):
        k = coin_kernel(0.5)
        two_steps = ComposedKernel(k, k)
        d = two_steps.distribution(0)
        assert d.mass(0) == pytest.approx(0.25)
        assert d.mass(1) == pytest.approx(0.5)
        assert d.mass(2) == pytest.approx(0.25)

    def test_then_chaining(self):
        k = coin_kernel(0.5).then(coin_kernel(0.5))
        assert k.distribution(0).total_mass() == pytest.approx(1.0)

    def test_identity_is_neutral(self):
        k = coin_kernel(0.3)
        left = ComposedKernel(IdentityKernel(), k).distribution(0)
        right = ComposedKernel(k, IdentityKernel()).distribution(0)
        assert left.allclose(k.distribution(0))
        assert right.allclose(k.distribution(0))


class TestProductKernel:
    def test_independent_components(self):
        k = ProductKernel([coin_kernel(0.5), coin_kernel(0.5)])
        d = k.distribution(0)
        assert d.mass((0, 0)) == pytest.approx(0.25)
        assert d.mass((1, 1)) == pytest.approx(0.25)
        assert d.total_mass() == pytest.approx(1.0)

    def test_sample_shape(self, rng):
        k = ProductKernel([coin_kernel(), coin_kernel(), coin_kernel()])
        result = k.sample(0, rng)
        assert len(result) == 3

    def test_empty_product_rejected(self):
        with pytest.raises(MeasureError):
            ProductKernel([])


class TestSamplerKernel:
    def test_sampling_only(self, rng):
        k = SamplerKernel(lambda x, r: x + r.normal())
        value = k.sample(0.0, rng)
        assert isinstance(value, float)
        assert not k.has_distribution()
        with pytest.raises(MeasureError):
            k.distribution(0.0)


class TestSampleDiscrete:
    def test_dirac(self, rng):
        assert sample_discrete(DiscreteMeasure.dirac("a"), rng) == "a"

    def test_subprobability_yields_none(self):
        m = DiscreteMeasure({1: 0.0001})
        rng = np.random.default_rng(7)
        results = {sample_discrete(m, rng) for _ in range(50)}
        assert None in results

    def test_super_probability_rejected(self, rng):
        with pytest.raises(MeasureError):
            sample_discrete(DiscreteMeasure({1: 0.9, 2: 0.9}), rng)

    def test_frequencies(self):
        m = DiscreteMeasure({1: 0.2, 2: 0.8})
        rng = np.random.default_rng(11)
        samples = [sample_discrete(m, rng) for _ in range(5000)]
        frequency = sum(1 for s in samples if s == 2) / len(samples)
        assert abs(frequency - 0.8) < 0.04


class TestPushForward:
    def test_measure_through_kernel(self):
        initial = DiscreteMeasure({0: 0.5, 1: 0.5})
        pushed = push_forward_measure(initial, coin_kernel(0.5))
        assert pushed.mass(1) == pytest.approx(0.5)
        assert pushed.total_mass() == pytest.approx(1.0)

    def test_mass_preserved(self):
        initial = DiscreteMeasure({0: 0.4})
        pushed = push_forward_measure(initial, coin_kernel(0.3))
        assert pushed.total_mass() == pytest.approx(0.4)
