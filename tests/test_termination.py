"""Tests for termination analysis (Section 6.3, Theorem 6.3)."""

import networkx as nx
import pytest

from repro.core.program import Program
from repro.core.termination import (analyze_termination,
                                    estimate_termination_probability,
                                    position_graph, weakly_acyclic)
from repro.core.translate import translate
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads import paper


class TestPositionGraph:
    def test_regular_edges(self):
        program = Program.parse("A(x) :- B(x).")
        graph = position_graph(translate(program))
        assert graph.has_edge(("B", 0), ("A", 0))

    def test_special_edges_to_existential_position(self):
        program = Program.parse("R(x, Flip<0.5>) :- B(x).")
        translated = translate(program)
        graph = position_graph(translated)
        aux = translated.existential_rules()[0].aux_relation
        specials = [(u, v) for u, v, d in graph.edges(data=True)
                    if d.get("special")]
        assert ((("B", 0), (aux, 2)) in specials)

    def test_no_special_edges_for_constant_heads(self):
        program = Program.parse("R(Flip<0.5>) :- B(x).")
        graph = position_graph(translate(program))
        assert not any(d.get("special")
                       for _, _, d in graph.edges(data=True))


class TestWeakAcyclicity:
    def test_paper_programs_weakly_acyclic(self):
        for program in (paper.example_1_1_g0(),
                        paper.example_3_4_program(),
                        paper.example_3_5_program(),
                        paper.section_6_2_h(),
                        paper.section_6_2_h_prime(),
                        paper.discrete_feedback_program()):
            assert weakly_acyclic(program), program

    def test_continuous_cycle_detected(self):
        report = analyze_termination(paper.continuous_feedback_program())
        assert not report.weakly_acyclic
        assert report.continuous_cycle
        assert report.almost_surely_diverges()
        assert "Normal" in report.cyclic_distributions

    def test_discrete_cycle_detected(self):
        report = analyze_termination(paper.discrete_cycle_program())
        assert not report.weakly_acyclic
        assert not report.continuous_cycle
        assert "Poisson" in report.cyclic_distributions

    def test_deterministic_recursion_is_fine(self):
        program = Program.parse("""
            Path(x, y) :- Edge(x, y).
            Path(x, z) :- Path(x, y), Edge(y, z).
        """)
        assert weakly_acyclic(program)

    def test_report_repr(self):
        good = analyze_termination(paper.example_1_1_g0())
        assert "weakly acyclic" in repr(good)
        bad = analyze_termination(paper.continuous_feedback_program())
        assert "continuous" in repr(bad)

    def test_special_cycle_edges_reported(self):
        report = analyze_termination(paper.discrete_cycle_program())
        assert report.special_cycles
        for source, target in report.special_cycles:
            assert isinstance(source, tuple) and isinstance(target, tuple)


class TestTheorem63:
    """Weak acyclicity ⇒ every chase terminates (spot-checked)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_weakly_acyclic_chases_terminate(self, seed,
                                             earthquake_program,
                                             earthquake_instance):
        from repro.core.chase import run_chase
        assert weakly_acyclic(earthquake_program)
        run = run_chase(earthquake_program, earthquake_instance,
                        rng=seed, max_steps=2000)
        assert run.terminated


class TestEmpiricalTermination:
    def test_continuous_cycle_never_terminates(self):
        estimate = estimate_termination_probability(
            paper.continuous_feedback_program(),
            Instance.of(Fact("Seed", (0,))),
            n_runs=30, max_steps=300, rng=0)
        assert estimate.probability == 0.0

    def test_discrete_cycle_ast(self):
        estimate = estimate_termination_probability(
            paper.discrete_cycle_program(1.0),
            paper.trigger_instance(), n_runs=150, max_steps=3000,
            rng=1)
        assert estimate.probability == pytest.approx(1.0, abs=0.02)

    def test_weakly_acyclic_always_terminates(self):
        estimate = estimate_termination_probability(
            paper.example_1_1_g0(), None, n_runs=25, max_steps=100,
            rng=2)
        assert estimate.probability == 1.0
        # 2 samples + 1 or 2 companion firings (1 when both flips agree,
        # because the duplicate R fact satisfies the second head).
        assert 3.0 <= estimate.mean_steps_when_terminated <= 4.0

    def test_standard_error(self):
        estimate = estimate_termination_probability(
            paper.example_1_1_g0(), None, n_runs=25, max_steps=100,
            rng=3)
        assert estimate.standard_error() == 0.0
