"""Tests for finite mixtures (repro.distributions.mixture)."""

import numpy as np
import pytest

from repro.core.program import Program
from repro.core.semantics import exact_spdb, sample_spdb
from repro.distributions.discrete import Flip, Poisson
from repro.distributions.continuous import Normal, Uniform
from repro.distributions.mixture import FiniteMixture
from repro.distributions.registry import default_registry
from repro.distributions.verify import (verify_normalization,
                                        verify_parameter_continuity)
from repro.errors import DistributionError
from repro.measures.empirical import summarize
from repro.pdb.facts import Fact


def bimodal():
    return FiniteMixture("Bimodal", [
        (0.5, Normal(), (-2.0, 1.0)),
        (0.5, Normal(), (2.0, 1.0)),
    ])


def skewed_coin():
    return FiniteMixture("SkewedCoin", [
        (0.75, Flip(), (0.9,)),
        (0.25, Flip(), (0.1,)),
    ])


class TestConstruction:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(DistributionError):
            FiniteMixture("Bad", [(0.5, Flip(), (0.5,)),
                                  (0.6, Flip(), (0.5,))])

    def test_weights_must_be_positive(self):
        with pytest.raises(DistributionError):
            FiniteMixture("Bad", [(1.0, Flip(), (0.5,)),
                                  (0.0, Flip(), (0.2,))])

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            FiniteMixture("Bad", [])

    def test_mixed_kind_rejected(self):
        # Remark 2.4: no common base measure.
        with pytest.raises(DistributionError, match="base measure"):
            FiniteMixture("Bad", [(0.5, Flip(), (0.5,)),
                                  (0.5, Normal(), (0.0, 1.0))])

    def test_component_params_validated(self):
        with pytest.raises(DistributionError):
            FiniteMixture("Bad", [(1.0, Flip(), (1.5,))])


class TestDensityAndMoments:
    def test_density_is_weighted_sum(self):
        mixture = bimodal()
        normal = Normal()
        x = 0.7
        expected = 0.5 * normal.density((-2.0, 1.0), x) \
            + 0.5 * normal.density((2.0, 1.0), x)
        assert mixture.density((), x) == pytest.approx(expected)

    def test_discrete_pmf(self):
        coin = skewed_coin()
        assert coin.density((), 1) == \
            pytest.approx(0.75 * 0.9 + 0.25 * 0.1)

    def test_cdf(self):
        mixture = bimodal()
        assert mixture.cdf((), 0.0) == pytest.approx(0.5)

    def test_mean_total_expectation(self):
        mixture = FiniteMixture("M", [(0.25, Normal(), (0.0, 1.0)),
                                      (0.75, Normal(), (4.0, 1.0))])
        assert mixture.mean(()) == pytest.approx(3.0)

    def test_variance_total_variance(self):
        mixture = bimodal()
        # Var = E[Var|k] + Var(E|k) = 1 + 4.
        assert mixture.variance(()) == pytest.approx(5.0)

    def test_normalization_verifier(self):
        assert verify_normalization(bimodal(), ())
        assert verify_normalization(skewed_coin(), ())

    def test_continuity_vacuous_zero_params(self):
        # Zero-parameter family: trivially continuous in θ.
        assert bimodal().param_arity == 0


class TestSupportAndSampling:
    def test_discrete_support_union(self):
        coin = skewed_coin()
        assert sorted(coin.support(())) == [0, 1]
        assert coin.support_is_finite(())

    def test_infinite_component_support(self):
        mixture = FiniteMixture("M", [(0.5, Flip(), (0.5,)),
                                      (0.5, Poisson(), (1.0,))])
        support = mixture.support(())
        first_few = [next(support) for _ in range(5)]
        assert len(set(first_few)) == 5
        assert not mixture.support_is_finite(())

    def test_truncated_support_mass(self):
        coin = skewed_coin()
        pairs, residue = coin.truncated_support(())
        assert sum(m for _, m in pairs) + residue == pytest.approx(1.0)

    def test_sampling_matches_density(self):
        mixture = bimodal()
        rng = np.random.default_rng(0)
        samples = mixture.sample_many((), rng, 6000)
        summary = summarize(samples)
        assert abs(summary.mean) < 0.15
        assert abs(summary.variance - 5.0) < 0.4

    def test_uniform_mixture_bounds(self):
        mixture = FiniteMixture("U", [(0.5, Uniform(), (0.0, 1.0)),
                                      (0.5, Uniform(), (9.0, 10.0))])
        rng = np.random.default_rng(1)
        samples = mixture.sample_many((), rng, 500)
        assert all(0 <= s <= 1 or 9 <= s <= 10 for s in samples)


class TestMixtureInPrograms:
    def test_registered_and_parsed(self):
        registry = default_registry()
        registry.register(skewed_coin())
        program = Program.parse("C(SkewedCoin<>) :- true.",
                                registry=registry)
        pdb = exact_spdb(program)
        assert pdb.marginal(Fact("C", (1,))) == \
            pytest.approx(0.75 * 0.9 + 0.25 * 0.1)

    def test_continuous_mixture_sampling_semantics(self):
        registry = default_registry()
        registry.register(bimodal())
        program = Program.parse("X(Bimodal<>) :- true.",
                                registry=registry)
        pdb = sample_spdb(program, n=3000, rng=2)
        values = pdb.values_of(
            lambda D: [f.args[0] for f in D.facts_of("X")])
        negative = sum(1 for v in values if v < 0) / len(values)
        assert abs(negative - 0.5) < 0.04


class TestEmptyAngleParsing:
    def test_zero_param_random_term(self):
        registry = default_registry()
        registry.register(skewed_coin())
        program = Program.parse("C(SkewedCoin<>) :- true.",
                                registry=registry)
        term = program.rules[0].head.terms[0]
        assert term.params == ()

    def test_source_roundtrip_zero_params(self):
        from repro.core.source import program_to_source
        registry = default_registry()
        registry.register(skewed_coin())
        program = Program.parse("C(SkewedCoin<>) :- true.",
                                registry=registry)
        text = program_to_source(program)
        assert "SkewedCoin<>" in text
        assert Program.parse(text, registry=registry).rules == \
            program.rules


class TestVectorizedSampling:
    @pytest.mark.parametrize("name,params", [
        ("Normal", (1.0, 4.0)), ("Exponential", (2.0,)),
        ("Uniform", (0.0, 3.0)), ("Poisson", (3.0,)),
        ("Binomial", (10, 0.4)),
    ])
    def test_vectorized_matches_scalar_distribution(self, name, params):
        from repro.distributions.registry import DEFAULT_REGISTRY
        from repro.measures.empirical import ks_two_sample, \
            ks_critical_value
        distribution = DEFAULT_REGISTRY[name]
        scalar = [distribution.sample(params,
                                      np.random.default_rng(1000 + i))
                  for i in range(800)]
        vectorized = distribution.sample_many(
            params, np.random.default_rng(5), 800)
        assert len(vectorized) == 800
        stat = ks_two_sample([float(s) for s in scalar],
                             [float(v) for v in vectorized])
        assert stat < ks_critical_value(800, 800, alpha=0.001)
