"""Theorem 6.1/6.2: the output SPDB is independent of the chase.

The strongest correctness statement of the paper: for every measurable
chase sequence (policy) and for the parallel chase, the induced SPDB is
identical.  For discrete programs we verify *exact equality* of the
enumerated SPDBs across a battery of policies and the parallel chase;
for continuous programs we verify statistical agreement of query
push-forwards (KS tests) across policies.
"""

import numpy as np
import pytest

from repro.core.exact import exact_parallel_spdb, exact_sequential_spdb
from repro.core.policies import standard_policies
from repro.core.program import Program
from repro.core.semantics import apply_to_pdb, exact_spdb, sample_spdb
from repro.measures.discrete import DiscreteMeasure
from repro.measures.empirical import ks_critical_value, ks_two_sample
from repro.pdb.database import DiscretePDB
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads import paper
from repro.workloads.generators import (base_instance,
                                        random_discrete_program)


def assert_chase_independent(program, instance=None, tolerance=1e-9):
    """Exact SPDBs agree across all policies and the parallel chase."""
    reference = exact_sequential_spdb(program, instance)
    for policy in standard_policies():
        candidate = exact_sequential_spdb(program, instance,
                                          policy=policy)
        assert candidate.allclose(reference, tolerance), \
            f"policy {policy.name} deviates"
    parallel = exact_parallel_spdb(program, instance)
    assert parallel.allclose(reference, tolerance), \
        "parallel chase deviates"


class TestDiscretePrograms:
    def test_g0(self, g0):
        assert_chase_independent(g0)

    def test_g0_prime(self, g0_prime):
        assert_chase_independent(g0_prime)

    def test_g_eps(self):
        assert_chase_independent(paper.example_1_1_g_eps(0.25))

    def test_h_and_h_prime(self, program_h, program_h_prime):
        assert_chase_independent(program_h)
        assert_chase_independent(program_h_prime)

    def test_earthquake(self, earthquake_program, earthquake_instance):
        assert_chase_independent(earthquake_program,
                                 earthquake_instance)

    def test_barany_translation_also_independent(self, g0):
        reference = exact_spdb(g0, semantics="barany")
        for policy in standard_policies():
            candidate = exact_spdb(g0, semantics="barany",
                                   policy=policy)
            assert candidate.allclose(reference)
        parallel = exact_spdb(g0, semantics="barany", parallel=True)
        assert parallel.allclose(reference)

    def test_dependent_sampling_chain(self):
        # Sampled values feeding later rule bodies - order sensitive
        # execution, order-insensitive semantics.
        program = Program.parse("""
            First(Flip<0.5>) :- true.
            Second(Flip<0.9>) :- First(1).
            Third(x, Flip<0.25>) :- First(x), Second(x).
        """)
        assert_chase_independent(program)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_programs(self, seed):
        program = random_discrete_program(
            n_base_rules=2, n_derived_rules=2, seed=seed)
        assert_chase_independent(program, base_instance(2))

    def test_theorem_6_2_pdb_input(self, g0):
        # Chase independence with a probabilistic input database.
        world_a = Instance.of(Fact("Seed", (1,)))
        world_b = Instance.empty()
        input_pdb = DiscretePDB(DiscreteMeasure(
            {world_a: 0.5, world_b: 0.5}))
        reference = apply_to_pdb(g0, input_pdb)
        parallel = apply_to_pdb(g0, input_pdb, parallel=True)
        assert parallel.allclose(reference)
        for policy in standard_policies()[:3]:
            assert apply_to_pdb(g0, input_pdb, policy=policy) \
                .allclose(reference)


class TestContinuousPrograms:
    """KS agreement of sampled query values across policies."""

    def extract_heights(self, pdb):
        return pdb.values_of(
            lambda D: [f.args[1] for f in D.facts_of("PHeight")])

    def test_heights_policy_invariance(self, heights_program):
        instance = paper.example_3_5_instance(
            moments={"NL": (180.0, 30.0)}, persons_per_country=1)
        batteries = standard_policies()[:3]
        samples = []
        for index, policy in enumerate(batteries):
            pdb = sample_spdb(heights_program, instance, n=900,
                              rng=100 + index, policy=policy)
            samples.append(self.extract_heights(pdb))
        critical = ks_critical_value(len(samples[0]), len(samples[1]),
                                     alpha=0.001)
        for other in samples[1:]:
            assert ks_two_sample(samples[0], other) < critical

    def test_sequential_vs_parallel_continuous(self, heights_program):
        instance = paper.example_3_5_instance(
            moments={"NL": (170.0, 40.0)}, persons_per_country=2)
        sequential = sample_spdb(heights_program, instance, n=700,
                                 rng=7)
        parallel = sample_spdb(heights_program, instance, n=700,
                               rng=8, parallel=True)
        a = self.extract_heights(sequential)
        b = self.extract_heights(parallel)
        assert ks_two_sample(a, b) < ks_critical_value(
            len(a), len(b), alpha=0.001)

    def test_mixed_discrete_continuous_program(self):
        # A program mixing Flip gating with Normal sampling.
        program = Program.parse("""
            Active(s, Flip<0.5>) :- Sensor(s).
            Reading(s, Normal<0, 1>) :- Active(s, 1).
        """)
        instance = Instance.of(Fact("Sensor", ("a",)),
                               Fact("Sensor", ("b",)))
        a = sample_spdb(program, instance, n=800, rng=9)
        b = sample_spdb(program, instance, n=800, rng=10,
                        parallel=True)
        # Discrete marginal agreement:
        fa = a.prob(lambda D: len(D.facts_of("Reading")) == 2)
        fb = b.prob(lambda D: len(D.facts_of("Reading")) == 2)
        assert abs(fa - 0.25) < 0.06 and abs(fb - 0.25) < 0.06
        # Continuous agreement:
        readings_a = a.values_of(
            lambda D: [f.args[1] for f in D.facts_of("Reading")])
        readings_b = b.values_of(
            lambda D: [f.args[1] for f in D.facts_of("Reading")])
        assert ks_two_sample(readings_a, readings_b) < \
            ks_critical_value(len(readings_a), len(readings_b),
                              alpha=0.001)
