"""``repro serve`` subprocess smoke: stdio and socket transports.

This file is the CI serving-tier smoke test: it boots the real CLI in
a subprocess, drives it over both transports, checks the JSON-lines
contract against the ``repro sample --json`` document, and exercises
three concurrent clients against one server process.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
from repro.serving import ServingClient
from repro.serving.protocol import sample_payload

REPO_ROOT = Path(__file__).resolve().parent.parent

COIN = "Heads(x, Flip<0.5>) :- Coin(x)."
COINS = {"Coin": [[0], [1]]}

SAMPLE_KEYS = {"command", "n_runs", "n_terminated", "n_truncated",
               "err_mass", "elapsed_seconds", "backend", "marginals"}


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _expected_marginals(seed: int, n: int) -> list:
    result = repro.compile(COIN).on(
        repro.Instance.from_dict(
            {"Coin": [(0,), (1,)]}), seed=seed).sample(n)
    return sample_payload(result)["marginals"]


class TestServeStdio:
    def test_round_trip_and_contract(self):
        requests = [
            {"op": "ping"},
            {"op": "sample", "program": COIN, "instance": COINS,
             "n": 120, "config": {"seed": 9}},
            {"op": "sample", "program": COIN, "instance": COINS,
             "n": 120, "config": {"seed": 9}},
            {"op": "bogus"},
        ]
        stdin = "\n".join(json.dumps(r) for r in requests) + "\n"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve"],
            input=stdin, capture_output=True, text=True,
            env=_env(), cwd=REPO_ROOT, timeout=120)
        assert proc.returncode == 0, proc.stderr
        replies = [json.loads(line)
                   for line in proc.stdout.splitlines() if line]
        assert len(replies) == 4
        ping, first, second, bad = replies
        assert ping["ok"] and "stats" in ping
        assert first["ok"] and not first["compile_cached"]
        assert second["ok"] and second["compile_cached"]
        assert set(first["result"]) == SAMPLE_KEYS
        # Byte-for-byte the repro sample --json marginals.
        assert first["result"]["marginals"] \
            == _expected_marginals(seed=9, n=120)
        assert first["result"]["marginals"] \
            == second["result"]["marginals"]
        assert bad["ok"] is False and "unknown op" in bad["error"]
        assert "# served 4 requests" in proc.stderr


@pytest.fixture(scope="module")
def serve_process():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=_env(), cwd=REPO_ROOT)
    try:
        banner = proc.stdout.readline()
        assert banner, proc.stderr.read()
        address = json.loads(banner)["serving"]
        yield address["host"], address["port"]
    finally:
        proc.terminate()
        proc.wait(timeout=30)


class TestServeSocket:
    def test_banner_then_serves(self, serve_process):
        host, port = serve_process
        with ServingClient(host, port) as client:
            assert client.ping()["ok"]

    def test_three_concurrent_clients(self, serve_process):
        host, port = serve_process
        documents: list = []
        errors: list = []

        def worker(seed: int) -> None:
            try:
                with ServingClient(host, port, timeout=120) as client:
                    documents.append(client.sample(
                        COIN, n=80, instance=COINS, seed=seed))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in (1, 2, 3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(documents) == 3
        for document in documents:
            assert set(document) == SAMPLE_KEYS
            assert document["n_runs"] == 80
            assert document["n_truncated"] == 0

    def test_zero_recompilation_across_clients(self, serve_process):
        host, port = serve_process
        # However many COIN requests the module-scoped server has
        # already handled, three more must cost zero compilations.
        with ServingClient(host, port) as client:
            for seed in (4, 5, 6):
                client.sample(COIN, n=10, instance=COINS, seed=seed)
            stats = client.ping()["stats"]
        assert stats["programs_compiled"] == 1
        assert stats["program_cache_hits"] >= 2

    def test_marginal_and_analyze_verbs(self, serve_process):
        host, port = serve_process
        with ServingClient(host, port) as client:
            probability = client.marginal(
                COIN, {"relation": "Heads", "args": [0, 1]},
                n=400, instance=COINS, seed=21)
            assert abs(probability - 0.5) < 0.15
            assert client.analyze(COIN)["verdict"] == "terminating"
