"""Tests for the top-level semantics API (repro.core.semantics)."""

import pytest

from repro.core.semantics import (apply_to_pdb, exact_spdb, sample_spdb,
                                  spdb_mass_report)
from repro.core.program import Program
from repro.errors import ValidationError
from repro.measures.discrete import DiscreteMeasure
from repro.pdb.database import DiscretePDB
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads import paper


class TestExactSpdb:
    def test_semantics_switch(self, g0):
        grohe = exact_spdb(g0, semantics="grohe")
        barany = exact_spdb(g0, semantics="barany")
        assert grohe.support_size() == 3
        assert barany.support_size() == 2

    def test_unknown_semantics(self, g0):
        with pytest.raises(ValidationError):
            exact_spdb(g0, semantics="quantum")

    def test_parallel_flag(self, g0):
        assert exact_spdb(g0, parallel=True).allclose(exact_spdb(g0))

    def test_pretranslated_program_accepted(self, g0):
        from repro.core.translate import translate
        pdb = exact_spdb(translate(g0))
        assert pdb.support_size() == 3


class TestSampleSpdb:
    def test_converges_to_exact(self, g0):
        exact = exact_spdb(g0)
        sampled = sample_spdb(g0, n=4000, rng=0)
        for world, probability in exact.worlds():
            estimate = sampled.prob(lambda D, w=world: D == w)
            assert abs(estimate - probability) < 0.04

    def test_barany_sampling(self, g0):
        sampled = sample_spdb(g0, n=2000, rng=1, semantics="barany")
        # only the two correlated outcomes appear
        supports = {frozenset(f.args[0] for f in D.facts_of("R"))
                    for D in sampled.worlds}
        assert supports == {frozenset({0}), frozenset({1})}

    def test_parallel_sampling(self, g0):
        sampled = sample_spdb(g0, n=1500, rng=2, parallel=True)
        exact = exact_spdb(g0)
        for world, probability in exact.worlds():
            estimate = sampled.prob(lambda D, w=world: D == w)
            assert abs(estimate - probability) < 0.06

    def test_continuous_program(self, heights_program, heights_instance):
        sampled = sample_spdb(heights_program, heights_instance,
                              n=50, rng=3)
        assert sampled.err_mass() == 0.0
        assert all(len(D.facts_of("PHeight")) == 4
                   for D in sampled.worlds)

    def test_truncation_counted(self):
        program = paper.continuous_feedback_program()
        D = Instance.of(Fact("Seed", (0,)))
        sampled = sample_spdb(program, D, n=10, rng=4, max_steps=30)
        assert sampled.err_mass() == pytest.approx(1.0)
        assert sampled.total_mass() == 0.0


class TestApplyToPdb:
    def test_mixture_over_input_worlds(self):
        program = Program.parse("Quake(c, Flip<r>) :- City(c, r).")
        world_a = Instance.of(Fact("City", ("x", 0.5)))
        world_b = Instance.of(Fact("City", ("x", 0.1)))
        input_pdb = DiscretePDB(DiscreteMeasure(
            {world_a: 0.5, world_b: 0.5}))
        output = apply_to_pdb(program, input_pdb)
        # P(Quake(x,1)) = 0.5*0.5 + 0.5*0.1 = 0.3
        assert output.marginal(Fact("Quake", ("x", 1))) == \
            pytest.approx(0.3)
        assert output.total_mass() == pytest.approx(1.0)

    def test_input_error_mass_propagates(self):
        program = Program.parse("A(Flip<0.5>) :- true.")
        world = Instance.empty()
        input_pdb = DiscretePDB(DiscreteMeasure({world: 0.75}),
                                err=0.25)
        output = apply_to_pdb(program, input_pdb)
        assert output.err_mass() == pytest.approx(0.25)
        assert output.total_mass() == pytest.approx(0.75)

    def test_dirac_input_equals_plain_exact(self, g0):
        input_pdb = DiscretePDB.deterministic(Instance.empty())
        assert apply_to_pdb(g0, input_pdb).allclose(exact_spdb(g0))


class TestMassReport:
    def test_terminating_program_err_vanishes(self, g0):
        reports = spdb_mass_report(g0, budgets=(1, 2, 3, 4, 8))
        assert reports[0].err_mass == pytest.approx(1.0)
        assert reports[-1].err_mass == pytest.approx(0.0)
        for report in reports:
            assert report.total == pytest.approx(1.0)

    def test_err_monotonically_nonincreasing(self, g0):
        reports = spdb_mass_report(g0, budgets=(1, 2, 3, 4, 5, 6))
        errs = [r.err_mass for r in reports]
        assert all(a >= b - 1e-12 for a, b in zip(errs, errs[1:]))

    def test_discrete_cycle_keeps_err(self):
        program = paper.discrete_cycle_program(1.0)
        reports = spdb_mass_report(program, paper.trigger_instance(),
                                   budgets=(2, 4), tolerance=1e-4)
        assert all(r.err_mass > 0.0 for r in reports)
        assert all(r.total == pytest.approx(1.0, abs=1e-3)
                   for r in reports)
