"""Tests for empirical statistics (repro.measures.empirical)."""

import math

import numpy as np
import pytest

from repro.measures.empirical import (MomentSummary, chi_square_statistic,
                                      empirical_cdf, frequencies_close,
                                      ks_critical_value, ks_statistic,
                                      ks_two_sample, summarize)


class TestSummarize:
    def test_basic_moments(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.variance == pytest.approx(1.0)
        assert summary.n == 3

    def test_empty(self):
        summary = summarize([])
        assert summary.n == 0 and math.isnan(summary.mean)

    def test_single_point(self):
        summary = summarize([5.0])
        assert summary.variance == 0.0
        assert summary.mean_standard_error == float("inf")

    def test_mean_within(self):
        rng = np.random.default_rng(0)
        summary = summarize(rng.normal(10.0, 2.0, size=5000))
        assert summary.mean_within(10.0)
        assert not summary.mean_within(10.5)


class TestEmpiricalCdf:
    def test_step_values(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(2.0) == 0.5
        assert cdf(10.0) == 1.0

    def test_monotone(self):
        rng = np.random.default_rng(1)
        cdf = empirical_cdf(rng.normal(size=100).tolist())
        xs = np.linspace(-3, 3, 50)
        values = [cdf(x) for x in xs]
        assert values == sorted(values)


class TestKsStatistic:
    def test_perfect_fit_small(self):
        rng = np.random.default_rng(2)
        samples = rng.uniform(0, 1, size=2000).tolist()
        stat = ks_statistic(samples, lambda x: min(max(x, 0.0), 1.0))
        assert stat < ks_critical_value(2000, alpha=0.001)

    def test_detects_wrong_distribution(self):
        rng = np.random.default_rng(3)
        samples = rng.uniform(0, 1, size=2000).tolist()
        # compare against Uniform(0, 2) CDF
        stat = ks_statistic(samples, lambda x: min(max(x / 2, 0.0), 1.0))
        assert stat > ks_critical_value(2000, alpha=0.001)

    def test_empty_sample(self):
        assert ks_statistic([], lambda x: 0.5) == 1.0


class TestKsTwoSample:
    def test_same_distribution(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=1500).tolist()
        b = rng.normal(size=1500).tolist()
        assert ks_two_sample(a, b) < ks_critical_value(1500, 1500,
                                                       alpha=0.001)

    def test_shifted_distribution(self):
        rng = np.random.default_rng(5)
        a = rng.normal(0, 1, size=1500).tolist()
        b = rng.normal(1, 1, size=1500).tolist()
        assert ks_two_sample(a, b) > ks_critical_value(1500, 1500,
                                                       alpha=0.001)

    def test_scipy_cross_check(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(6)
        a = rng.normal(size=300).tolist()
        b = rng.normal(0.2, 1.1, size=400).tolist()
        ours = ks_two_sample(a, b)
        theirs = scipy_stats.ks_2samp(a, b).statistic
        assert ours == pytest.approx(theirs, abs=1e-9)


class TestChiSquare:
    def test_matching_counts(self):
        stat = chi_square_statistic([50, 50], [0.5, 0.5])
        assert stat == pytest.approx(0.0)

    def test_impossible_observation(self):
        assert chi_square_statistic([1, 99], [0.0, 1.0]) == float("inf")

    def test_scipy_cross_check(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        observed = [30, 50, 20]
        probabilities = [0.25, 0.5, 0.25]
        ours = chi_square_statistic(observed, probabilities)
        expected = [p * 100 for p in probabilities]
        theirs = scipy_stats.chisquare(observed, expected).statistic
        assert ours == pytest.approx(theirs)


class TestFrequenciesClose:
    def test_accepts_true_distribution(self):
        rng = np.random.default_rng(7)
        samples = rng.choice([0, 1], p=[0.3, 0.7], size=5000).tolist()
        assert frequencies_close(samples, {0: 0.3, 1: 0.7})

    def test_rejects_wrong_distribution(self):
        samples = [1] * 1000
        assert not frequencies_close(samples, {0: 0.5, 1: 0.5})

    def test_empty_sample(self):
        assert not frequencies_close([], {0: 1.0})
