"""ProgramServer: caches, dispatch, error replies, socket transport.

Everything here runs in-process (the subprocess `repro serve` smoke
lives in test_serving_cli.py): the transport-free ``handle`` contract,
the zero-recompilation cache counters, LRU eviction, the protocol
codecs, and the threading socket server with concurrent clients.
"""

from __future__ import annotations

import threading

import pytest

import repro
from repro.errors import ValidationError
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.serving import (ProgramServer, ServingClient, serve_socket)
from repro.serving.protocol import (decode_line, encode_line,
                                    instance_payload, parse_fact,
                                    parse_instance)
from repro.serving.server import program_sha, request_over_socket

COIN = "Heads(x, Flip<0.5>) :- Coin(x)."
CASCADE = """
Trig(x, Flip<0.6>) :- Site(x).
Alarm(x, Flip<0.5>) :- Trig(x, 1).
"""


def _coins(k: int = 2) -> dict:
    return {"Coin": [[i] for i in range(k)]}


def _strip_elapsed(result: dict) -> dict:
    """Sample documents modulo the only nondeterministic field."""
    return {key: value for key, value in result.items()
            if key != "elapsed_seconds"}


# ---------------------------------------------------------------------------
# Protocol codecs
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_fact_codec(self):
        fact = Fact("R", (1, "x", 2.5))
        assert parse_fact({"relation": "R", "args": [1, "x", 2.5]}) \
            == fact
        assert parse_fact(["R", [1, "x", 2.5]]) == fact
        for bad in ("R", {"relation": "R"}, ["R"], ["R", [1], 2], 7):
            with pytest.raises(ValidationError):
                parse_fact(bad)

    def test_instance_codec_roundtrip(self):
        instance = Instance.from_dict(
            {"A": [(1,), (2,)], "B": [("x", 3)]})
        assert parse_instance(instance_payload(instance)) == instance
        assert parse_instance(None) == Instance.empty()
        assert parse_instance(
            [{"relation": "A", "args": [1]}]) \
            == Instance.from_dict({"A": [(1,)]})
        with pytest.raises(ValidationError):
            parse_instance({"A": "not-rows"})
        with pytest.raises(ValidationError):
            parse_instance(42)

    def test_line_framing(self):
        payload = {"op": "ping", "z": 1, "a": 2}
        line = encode_line(payload)
        assert "\n" not in line
        assert decode_line(line) == payload
        with pytest.raises(ValidationError, match="bad JSON"):
            decode_line("{nope")
        with pytest.raises(ValidationError, match="JSON object"):
            decode_line("[1, 2]")

    def test_program_sha_separates_semantics(self):
        assert program_sha(COIN, "grohe") \
            != program_sha(COIN, "barany")
        assert program_sha(COIN, "grohe") == program_sha(COIN, "grohe")


# ---------------------------------------------------------------------------
# Dispatch + caching
# ---------------------------------------------------------------------------


class TestProgramServer:
    def test_ping_reports_stats(self):
        server = ProgramServer()
        reply = server.handle({"op": "ping"})
        assert reply["ok"] and reply["op"] == "ping"
        assert reply["stats"]["requests"] == 1
        assert reply["stats"]["programs_compiled"] == 0

    def test_sample_matches_cli_contract_and_session(self):
        server = ProgramServer()
        reply = server.handle({"op": "sample", "program": COIN,
                               "instance": _coins(), "n": 200,
                               "config": {"seed": 7}})
        assert reply["ok"] and not reply["compile_cached"]
        result = reply["result"]
        assert set(result) == {"command", "n_runs", "n_terminated",
                               "n_truncated", "err_mass",
                               "elapsed_seconds", "backend",
                               "marginals"}
        assert result["n_runs"] == 200 and result["n_truncated"] == 0
        direct = repro.compile(COIN).on(
            parse_instance(_coins()), seed=7).sample(200)
        expect = {(m.relation, m.args): p
                  for m, p in direct.fact_marginals().items()}
        served = {(m["fact"]["relation"], tuple(m["fact"]["args"])):
                  m["probability"] for m in result["marginals"]}
        assert served == expect

    def test_zero_recompilation_across_requests(self):
        """The acceptance-criterion counter: one compile, then hits."""
        server = ProgramServer()
        first = server.handle({"op": "sample", "program": COIN,
                               "instance": _coins(), "n": 50,
                               "config": {"seed": 1}})
        second = server.handle({"op": "sample", "program": COIN,
                                "instance": _coins(), "n": 50,
                                "config": {"seed": 1}})
        third = server.handle({"op": "marginal", "program": COIN,
                               "instance": _coins(), "n": 50,
                               "fact": ["Heads", [0, 1]],
                               "config": {"seed": 1}})
        assert first["ok"] and second["ok"] and third["ok"]
        assert not first["compile_cached"]
        assert second["compile_cached"] and third["compile_cached"]
        assert server.stats["programs_compiled"] == 1
        assert server.stats["program_cache_hits"] == 2
        assert server.stats["sessions_created"] == 1
        assert server.stats["session_cache_hits"] == 2
        assert _strip_elapsed(first["result"]) \
            == _strip_elapsed(second["result"])

    def test_configured_sessions_share_engines(self):
        """configure() must derive, not rebuild, the warm session."""
        server = ProgramServer()
        server.handle({"op": "sample", "program": COIN,
                       "instance": _coins(), "n": 20,
                       "config": {"seed": 1}})
        base = next(iter(server._sessions.values()))
        engines_before = base._engines
        server.handle({"op": "sample", "program": COIN,
                       "instance": _coins(), "n": 20,
                       "config": {"seed": 2, "keep_aux": True}})
        assert next(iter(server._sessions.values()))._engines \
            is engines_before
        assert server.stats["sessions_created"] == 1

    def test_program_lru_eviction(self):
        server = ProgramServer(max_programs=1)
        server.handle({"op": "analyze", "program": COIN})
        server.handle({"op": "analyze", "program": CASCADE})
        # COIN was evicted: compiling it again is a miss.
        reply = server.handle({"op": "analyze", "program": COIN})
        assert not reply["compile_cached"]
        assert server.stats["programs_compiled"] == 3
        assert len(server._programs) == 1

    def test_session_lru_eviction(self):
        server = ProgramServer(max_sessions=1)
        for k in (1, 2, 1):
            server.handle({"op": "sample", "program": COIN,
                           "instance": _coins(k), "n": 10,
                           "config": {"seed": 1}})
        assert server.stats["sessions_created"] == 3
        assert len(server._sessions) == 1

    def test_analyze_and_mass_report_documents(self):
        server = ProgramServer()
        analyze = server.handle({"op": "analyze", "program": COIN})
        assert analyze["result"]["verdict"] == "terminating"
        assert analyze["result"]["discrete"] is True
        mass = server.handle({"op": "mass_report", "program": COIN,
                              "instance": _coins(1),
                              "budgets": [1, 2]})
        assert mass["ok"]
        reports = mass["result"]["reports"]
        assert [r["budget"] for r in reports] == [1, 2]
        assert all(abs(r["instance_mass"] + r["err_mass"] - 1.0) < 1e-9
                   for r in reports)

    def test_marginal_matches_exact(self):
        server = ProgramServer()
        reply = server.handle({"op": "marginal", "program": COIN,
                               "instance": _coins(1), "n": 4000,
                               "fact": ["Heads", [0, 1]],
                               "config": {"seed": 11}})
        assert reply["ok"]
        assert abs(reply["result"]["probability"] - 0.5) < 0.05

    def test_sharded_request_through_server(self):
        # Shard-count invariance holds end-to-end through the server:
        # k=2 and k=4 produce the identical document (the per-world
        # draw schedule is a function of world index alone).  The
        # unsharded path uses pooled draws, so it is distributionally
        # - not bitwise - equivalent and is not compared here.
        server = ProgramServer()
        two = server.handle({"op": "sample", "program": CASCADE,
                             "instance": {"Site": [[0], [1]]},
                             "n": 40,
                             "config": {"seed": 3, "shards": 2}})
        four = server.handle({"op": "sample", "program": CASCADE,
                              "instance": {"Site": [[0], [1]]},
                              "n": 40,
                              "config": {"seed": 3, "shards": 4}})
        assert two["ok"] and four["ok"]
        assert two["result"]["backend"] == "sharded"
        assert two["result"]["marginals"] == four["result"]["marginals"]

    @pytest.mark.parametrize("request_payload,needle", [
        ({"op": "nope"}, "unknown op"),
        ({"op": "sample"}, "program"),
        ({"op": "sample", "program": "  "}, "program"),
        ({"op": "sample", "program": COIN, "n": 0}, "'n'"),
        ({"op": "sample", "program": COIN, "n": True}, "'n'"),
        ({"op": "sample", "program": COIN, "config": [1]}, "config"),
        ({"op": "sample", "program": COIN,
          "config": {"bogus_field": 1}}, "bogus_field"),
        ({"op": "marginal", "program": COIN, "fact": "Heads"}, "fact"),
        ({"op": "mass_report", "program": COIN, "budgets": []},
         "budgets"),
        ({"op": "sample", "program": "This is not datalog ((("},
         "ok"),
    ])
    def test_errors_become_replies_not_exceptions(self, request_payload,
                                                  needle):
        server = ProgramServer()
        reply = server.handle(request_payload)
        assert reply["ok"] is False
        if needle != "ok":
            assert needle in reply["error"]
        # The server survives and keeps serving.
        assert server.handle({"op": "ping"})["ok"]
        assert server.stats["errors"] >= 1

    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            ProgramServer(max_programs=0)
        with pytest.raises(ValidationError):
            ProgramServer(max_sessions=0)


# ---------------------------------------------------------------------------
# Socket transport (in-process)
# ---------------------------------------------------------------------------


@pytest.fixture()
def running_server():
    server = ProgramServer()
    tcp = serve_socket(server, port=0)
    thread = threading.Thread(target=tcp.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, tcp.server_address
    finally:
        tcp.shutdown()
        tcp.server_close()
        thread.join(timeout=5)


class TestSocketTransport:
    def test_request_over_socket(self, running_server):
        _server, (host, port) = running_server
        reply = request_over_socket(host, port, {"op": "ping"})
        assert reply["ok"] and "stats" in reply

    def test_client_verbs(self, running_server):
        _server, (host, port) = running_server
        with ServingClient(host, port) as client:
            assert client.ping()["ok"]
            document = client.sample(COIN, n=100, instance=_coins(),
                                     seed=5)
            assert document["command"] == "sample"
            assert document["n_runs"] == 100
            probability = client.marginal(COIN, ["Heads", [0, 1]],
                                          n=100, instance=_coins(),
                                          seed=5)
            assert 0.0 <= probability <= 1.0
            assert client.analyze(COIN)["verdict"] == "terminating"
            reports = client.mass_report(COIN, budgets=[1, 2],
                                         instance=_coins(1))["reports"]
            assert len(reports) == 2

    def test_client_raises_on_server_error(self, running_server):
        _server, (host, port) = running_server
        with ServingClient(host, port) as client:
            with pytest.raises(repro.ReproError, match="unknown op"):
                client.result({"op": "bogus"})

    def test_malformed_line_gets_error_reply(self, running_server):
        import socket as socket_module
        _server, (host, port) = running_server
        with socket_module.create_connection((host, port)) as conn:
            conn.sendall(b"{not json\n")
            with conn.makefile("r", encoding="utf-8") as reader:
                reply = decode_line(reader.readline())
        assert reply["ok"] is False and "bad JSON" in reply["error"]

    def test_concurrent_clients_zero_recompilation(self, running_server):
        server, (host, port) = running_server
        documents: list = []
        errors: list = []

        def worker(seed: int) -> None:
            try:
                with ServingClient(host, port) as client:
                    documents.append(client.sample(
                        COIN, n=60, instance=_coins(), seed=seed))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in (1, 2, 3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(documents) == 3
        assert all(doc["n_runs"] == 60 for doc in documents)
        assert server.stats["programs_compiled"] == 1
        assert server.stats["program_cache_hits"] == 2
        assert server.stats["sessions_created"] == 1


# ---------------------------------------------------------------------------
# Concurrency: per-session locks + warm executors
# ---------------------------------------------------------------------------


class TestServerConcurrency:
    def test_sessions_do_not_serialize_each_other(self):
        """Holding one program's session lock must not block others."""
        server = ProgramServer()
        coin = {"op": "sample", "program": COIN, "instance": _coins(),
                "n": 10, "config": {"seed": 1}}
        cascade = {"op": "sample", "program": CASCADE,
                   "instance": {"Site": [[0]]}, "n": 10,
                   "config": {"seed": 1}}
        server.handle(dict(coin))
        server.handle(dict(cascade))
        lock = server.session_lock(program_sha(COIN, "grohe"),
                                   parse_instance(_coins()))
        done = threading.Event()
        replies: list = []

        def blocked_worker() -> None:
            replies.append(server.handle(dict(coin)))
            done.set()

        lock.acquire()
        try:
            thread = threading.Thread(target=blocked_worker,
                                      daemon=True)
            thread.start()
            # The COIN request is stuck behind its session lock ...
            assert not done.wait(0.3)
            # ... while a CASCADE request on this thread completes.
            assert server.handle(dict(cascade))["ok"]
        finally:
            lock.release()
        assert done.wait(10)
        thread.join(timeout=10)
        assert replies and replies[0]["ok"]

    def test_sharded_requests_reuse_a_warm_executor(self):
        """Zero pool spawns on the hot path: one executor, then hits."""
        server = ProgramServer()
        request = {"op": "sample", "program": CASCADE,
                   "instance": {"Site": [[0], [1]]}, "n": 20,
                   "config": {"seed": 3, "shards": 2}}
        try:
            first = server.handle(dict(request))
            second = server.handle(dict(request))
        finally:
            server.close()
        assert first["ok"] and second["ok"]
        assert server.stats["executors_created"] == 1
        assert server.stats["executor_cache_hits"] == 1
        assert first["result"]["marginals"] \
            == second["result"]["marginals"]

    def test_executor_lru_eviction_closes_cold_pools(self):
        server = ProgramServer(max_executors=1)
        base = {"op": "sample", "program": CASCADE,
                "instance": {"Site": [[0]]}, "n": 10}
        try:
            server.handle({**base, "config": {"seed": 1, "shards": 2}})
            server.handle({**base, "config": {"seed": 2, "shards": 2}})
        finally:
            server.close()
        assert server.stats["executors_created"] == 2
        assert server.stats["executor_cache_hits"] == 0
        assert len(server._executors) == 0


# ---------------------------------------------------------------------------
# Posterior + streaming ops
# ---------------------------------------------------------------------------


def _marginal_of(result: dict, relation: str, args: list) -> float:
    return next(m["probability"] for m in result["marginals"]
                if m["fact"] == {"relation": relation, "args": args})


class TestPosteriorOp:
    def test_likelihood_posterior_document(self):
        server = ProgramServer()
        reply = server.handle({
            "op": "posterior", "program": CASCADE,
            "instance": {"Site": [["a"]]}, "n": 3000,
            "observe": [{"relation": "Alarm", "carried": ["a"],
                         "value": 1}],
            "config": {"seed": 2}})
        assert reply["ok"]
        result = reply["result"]
        assert result["command"] == "posterior"
        assert result["method"] == "likelihood"
        assert result["n_runs"] == 3000
        assert result["effective_sample_size"] > 0
        # P(Trig=1 | Alarm sample = 1) = 3/7.
        assert abs(_marginal_of(result, "Trig", ["a", 1]) - 3 / 7) \
            < 0.05

    def test_fact_evidence_conditions_by_rejection(self):
        server = ProgramServer()
        reply = server.handle({
            "op": "posterior", "program": CASCADE,
            "instance": {"Site": [["a"]]}, "n": 1500,
            "method": "rejection",
            "observe": [{"fact": {"relation": "Trig",
                                  "args": ["a", 1]}}],
            "config": {"seed": 4}})
        assert reply["ok"]
        result = reply["result"]
        assert result["method"] == "rejection"
        assert _marginal_of(result, "Trig", ["a", 1]) == 1.0

    def test_missing_evidence_is_an_error_reply(self):
        server = ProgramServer()
        reply = server.handle({"op": "posterior", "program": CASCADE,
                               "instance": {"Site": [["a"]]},
                               "observe": []})
        assert reply["ok"] is False
        assert "observe" in reply["error"]


class TestStreamOps:
    def _open(self, server, n=1500, **extra):
        return server.handle({"op": "stream_open", "program": CASCADE,
                              "instance": {"Site": [["a"]]}, "n": n,
                              "config": {"seed": 2}, **extra})

    def test_stream_lifecycle(self):
        server = ProgramServer()
        opened = self._open(server)
        assert opened["ok"]
        state = opened["result"]
        stream_id = state["stream_id"]
        assert state["n_worlds"] == 1500 and state["n_evidence"] == 0
        observed = server.handle({
            "op": "stream_observe", "stream_id": stream_id,
            "observe": {"relation": "Alarm", "carried": ["a"],
                        "value": 1}})
        assert observed["ok"]
        assert observed["result"]["n_evidence"] == 1
        token = observed["result"]["token"]
        posterior = server.handle({"op": "stream_posterior",
                                   "stream_id": stream_id})
        assert posterior["ok"]
        result = posterior["result"]
        assert result["method"] == "stream"
        assert abs(_marginal_of(result, "Trig", ["a", 1]) - 3 / 7) \
            < 0.07
        retracted = server.handle({"op": "stream_observe",
                                   "stream_id": stream_id,
                                   "retract": token})
        assert retracted["ok"]
        assert retracted["result"]["n_evidence"] == 0
        closed = server.handle({"op": "stream_close",
                                "stream_id": stream_id})
        assert closed["ok"] and closed["result"]["closed"] is True
        gone = server.handle({"op": "stream_posterior",
                              "stream_id": stream_id})
        assert gone["ok"] is False and "unknown stream_id" in gone["error"]

    def test_fact_evidence_masks_stream_worlds(self):
        server = ProgramServer()
        stream_id = self._open(server)["result"]["stream_id"]
        observed = server.handle({
            "op": "stream_observe", "stream_id": stream_id,
            "observe": {"fact": {"relation": "Trig",
                                 "args": ["a", 1]}}})
        assert observed["ok"]
        assert observed["result"]["n_alive"] \
            < observed["result"]["n_worlds"]

    def test_unsupported_observation_is_an_error_reply(self):
        server = ProgramServer()
        stream_id = self._open(server)["result"]["stream_id"]
        reply = server.handle({
            "op": "stream_observe", "stream_id": stream_id,
            "observe": {"relation": "Trig", "carried": ["a"],
                        "value": 1}})
        assert reply["ok"] is False
        # The stream survives the declined observation.
        assert server.handle({"op": "stream_posterior",
                              "stream_id": stream_id})["ok"]

    def test_stream_lru_eviction(self):
        server = ProgramServer(max_streams=1)
        first = self._open(server, n=100)["result"]["stream_id"]
        second = self._open(server, n=100)["result"]["stream_id"]
        assert server.handle({"op": "stream_posterior",
                              "stream_id": first})["ok"] is False
        assert server.handle({"op": "stream_posterior",
                              "stream_id": second})["ok"]
        assert server.stats["streams_opened"] == 2


class TestClientStreamVerbs:
    def test_posterior_and_stream_over_socket(self, running_server):
        _server, (host, port) = running_server
        evidence = {"relation": "Alarm", "carried": ["a"], "value": 1}
        with ServingClient(host, port) as client:
            document = client.posterior(
                CASCADE, [evidence], n=2000,
                instance={"Site": [["a"]]}, seed=2)
            assert document["method"] == "likelihood"
            assert abs(_marginal_of(document, "Trig", ["a", 1])
                       - 3 / 7) < 0.06
            state = client.stream_open(CASCADE, n=1200,
                                       instance={"Site": [["a"]]},
                                       seed=2)
            stream_id = state["stream_id"]
            observed = client.stream_observe(stream_id, evidence)
            assert observed["n_evidence"] == 1
            streamed = client.stream_posterior(stream_id)
            assert streamed["method"] == "stream"
            assert abs(_marginal_of(streamed, "Trig", ["a", 1])
                       - 3 / 7) < 0.07
            client.stream_retract(stream_id, observed["token"])
            assert client.stream_posterior(stream_id)["diagnostics"][
                "n_evidence"] == 0
            assert client.stream_close(stream_id)["closed"] is True
