"""ProgramServer: caches, dispatch, error replies, socket transport.

Everything here runs in-process (the subprocess `repro serve` smoke
lives in test_serving_cli.py): the transport-free ``handle`` contract,
the zero-recompilation cache counters, LRU eviction, the protocol
codecs, and the threading socket server with concurrent clients.
"""

from __future__ import annotations

import threading

import pytest

import repro
from repro.errors import ValidationError
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.serving import (ProgramServer, ServingClient, serve_socket)
from repro.serving.protocol import (decode_line, encode_line,
                                    instance_payload, parse_fact,
                                    parse_instance)
from repro.serving.server import program_sha, request_over_socket

COIN = "Heads(x, Flip<0.5>) :- Coin(x)."
CASCADE = """
Trig(x, Flip<0.6>) :- Site(x).
Alarm(x, Flip<0.5>) :- Trig(x, 1).
"""


def _coins(k: int = 2) -> dict:
    return {"Coin": [[i] for i in range(k)]}


def _strip_elapsed(result: dict) -> dict:
    """Sample documents modulo the only nondeterministic field."""
    return {key: value for key, value in result.items()
            if key != "elapsed_seconds"}


# ---------------------------------------------------------------------------
# Protocol codecs
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_fact_codec(self):
        fact = Fact("R", (1, "x", 2.5))
        assert parse_fact({"relation": "R", "args": [1, "x", 2.5]}) \
            == fact
        assert parse_fact(["R", [1, "x", 2.5]]) == fact
        for bad in ("R", {"relation": "R"}, ["R"], ["R", [1], 2], 7):
            with pytest.raises(ValidationError):
                parse_fact(bad)

    def test_instance_codec_roundtrip(self):
        instance = Instance.from_dict(
            {"A": [(1,), (2,)], "B": [("x", 3)]})
        assert parse_instance(instance_payload(instance)) == instance
        assert parse_instance(None) == Instance.empty()
        assert parse_instance(
            [{"relation": "A", "args": [1]}]) \
            == Instance.from_dict({"A": [(1,)]})
        with pytest.raises(ValidationError):
            parse_instance({"A": "not-rows"})
        with pytest.raises(ValidationError):
            parse_instance(42)

    def test_line_framing(self):
        payload = {"op": "ping", "z": 1, "a": 2}
        line = encode_line(payload)
        assert "\n" not in line
        assert decode_line(line) == payload
        with pytest.raises(ValidationError, match="bad JSON"):
            decode_line("{nope")
        with pytest.raises(ValidationError, match="JSON object"):
            decode_line("[1, 2]")

    def test_program_sha_separates_semantics(self):
        assert program_sha(COIN, "grohe") \
            != program_sha(COIN, "barany")
        assert program_sha(COIN, "grohe") == program_sha(COIN, "grohe")


# ---------------------------------------------------------------------------
# Dispatch + caching
# ---------------------------------------------------------------------------


class TestProgramServer:
    def test_ping_reports_stats(self):
        server = ProgramServer()
        reply = server.handle({"op": "ping"})
        assert reply["ok"] and reply["op"] == "ping"
        assert reply["stats"]["requests"] == 1
        assert reply["stats"]["programs_compiled"] == 0

    def test_sample_matches_cli_contract_and_session(self):
        server = ProgramServer()
        reply = server.handle({"op": "sample", "program": COIN,
                               "instance": _coins(), "n": 200,
                               "config": {"seed": 7}})
        assert reply["ok"] and not reply["compile_cached"]
        result = reply["result"]
        assert set(result) == {"command", "n_runs", "n_terminated",
                               "n_truncated", "err_mass",
                               "elapsed_seconds", "backend",
                               "marginals"}
        assert result["n_runs"] == 200 and result["n_truncated"] == 0
        direct = repro.compile(COIN).on(
            parse_instance(_coins()), seed=7).sample(200)
        expect = {(m.relation, m.args): p
                  for m, p in direct.fact_marginals().items()}
        served = {(m["fact"]["relation"], tuple(m["fact"]["args"])):
                  m["probability"] for m in result["marginals"]}
        assert served == expect

    def test_zero_recompilation_across_requests(self):
        """The acceptance-criterion counter: one compile, then hits."""
        server = ProgramServer()
        first = server.handle({"op": "sample", "program": COIN,
                               "instance": _coins(), "n": 50,
                               "config": {"seed": 1}})
        second = server.handle({"op": "sample", "program": COIN,
                                "instance": _coins(), "n": 50,
                                "config": {"seed": 1}})
        third = server.handle({"op": "marginal", "program": COIN,
                               "instance": _coins(), "n": 50,
                               "fact": ["Heads", [0, 1]],
                               "config": {"seed": 1}})
        assert first["ok"] and second["ok"] and third["ok"]
        assert not first["compile_cached"]
        assert second["compile_cached"] and third["compile_cached"]
        assert server.stats["programs_compiled"] == 1
        assert server.stats["program_cache_hits"] == 2
        assert server.stats["sessions_created"] == 1
        assert server.stats["session_cache_hits"] == 2
        assert _strip_elapsed(first["result"]) \
            == _strip_elapsed(second["result"])

    def test_configured_sessions_share_engines(self):
        """configure() must derive, not rebuild, the warm session."""
        server = ProgramServer()
        server.handle({"op": "sample", "program": COIN,
                       "instance": _coins(), "n": 20,
                       "config": {"seed": 1}})
        base = next(iter(server._sessions.values()))
        engines_before = base._engines
        server.handle({"op": "sample", "program": COIN,
                       "instance": _coins(), "n": 20,
                       "config": {"seed": 2, "keep_aux": True}})
        assert next(iter(server._sessions.values()))._engines \
            is engines_before
        assert server.stats["sessions_created"] == 1

    def test_program_lru_eviction(self):
        server = ProgramServer(max_programs=1)
        server.handle({"op": "analyze", "program": COIN})
        server.handle({"op": "analyze", "program": CASCADE})
        # COIN was evicted: compiling it again is a miss.
        reply = server.handle({"op": "analyze", "program": COIN})
        assert not reply["compile_cached"]
        assert server.stats["programs_compiled"] == 3
        assert len(server._programs) == 1

    def test_session_lru_eviction(self):
        server = ProgramServer(max_sessions=1)
        for k in (1, 2, 1):
            server.handle({"op": "sample", "program": COIN,
                           "instance": _coins(k), "n": 10,
                           "config": {"seed": 1}})
        assert server.stats["sessions_created"] == 3
        assert len(server._sessions) == 1

    def test_analyze_and_mass_report_documents(self):
        server = ProgramServer()
        analyze = server.handle({"op": "analyze", "program": COIN})
        assert analyze["result"]["verdict"] == "terminating"
        assert analyze["result"]["discrete"] is True
        mass = server.handle({"op": "mass_report", "program": COIN,
                              "instance": _coins(1),
                              "budgets": [1, 2]})
        assert mass["ok"]
        reports = mass["result"]["reports"]
        assert [r["budget"] for r in reports] == [1, 2]
        assert all(abs(r["instance_mass"] + r["err_mass"] - 1.0) < 1e-9
                   for r in reports)

    def test_marginal_matches_exact(self):
        server = ProgramServer()
        reply = server.handle({"op": "marginal", "program": COIN,
                               "instance": _coins(1), "n": 4000,
                               "fact": ["Heads", [0, 1]],
                               "config": {"seed": 11}})
        assert reply["ok"]
        assert abs(reply["result"]["probability"] - 0.5) < 0.05

    def test_sharded_request_through_server(self):
        # Shard-count invariance holds end-to-end through the server:
        # k=2 and k=4 produce the identical document (the per-world
        # draw schedule is a function of world index alone).  The
        # unsharded path uses pooled draws, so it is distributionally
        # - not bitwise - equivalent and is not compared here.
        server = ProgramServer()
        two = server.handle({"op": "sample", "program": CASCADE,
                             "instance": {"Site": [[0], [1]]},
                             "n": 40,
                             "config": {"seed": 3, "shards": 2}})
        four = server.handle({"op": "sample", "program": CASCADE,
                              "instance": {"Site": [[0], [1]]},
                              "n": 40,
                              "config": {"seed": 3, "shards": 4}})
        assert two["ok"] and four["ok"]
        assert two["result"]["backend"] == "sharded"
        assert two["result"]["marginals"] == four["result"]["marginals"]

    @pytest.mark.parametrize("request_payload,needle", [
        ({"op": "nope"}, "unknown op"),
        ({"op": "sample"}, "program"),
        ({"op": "sample", "program": "  "}, "program"),
        ({"op": "sample", "program": COIN, "n": 0}, "'n'"),
        ({"op": "sample", "program": COIN, "n": True}, "'n'"),
        ({"op": "sample", "program": COIN, "config": [1]}, "config"),
        ({"op": "sample", "program": COIN,
          "config": {"bogus_field": 1}}, "bogus_field"),
        ({"op": "marginal", "program": COIN, "fact": "Heads"}, "fact"),
        ({"op": "mass_report", "program": COIN, "budgets": []},
         "budgets"),
        ({"op": "sample", "program": "This is not datalog ((("},
         "ok"),
    ])
    def test_errors_become_replies_not_exceptions(self, request_payload,
                                                  needle):
        server = ProgramServer()
        reply = server.handle(request_payload)
        assert reply["ok"] is False
        if needle != "ok":
            assert needle in reply["error"]
        # The server survives and keeps serving.
        assert server.handle({"op": "ping"})["ok"]
        assert server.stats["errors"] >= 1

    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            ProgramServer(max_programs=0)
        with pytest.raises(ValidationError):
            ProgramServer(max_sessions=0)


# ---------------------------------------------------------------------------
# Socket transport (in-process)
# ---------------------------------------------------------------------------


@pytest.fixture()
def running_server():
    server = ProgramServer()
    tcp = serve_socket(server, port=0)
    thread = threading.Thread(target=tcp.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, tcp.server_address
    finally:
        tcp.shutdown()
        tcp.server_close()
        thread.join(timeout=5)


class TestSocketTransport:
    def test_request_over_socket(self, running_server):
        _server, (host, port) = running_server
        reply = request_over_socket(host, port, {"op": "ping"})
        assert reply["ok"] and "stats" in reply

    def test_client_verbs(self, running_server):
        _server, (host, port) = running_server
        with ServingClient(host, port) as client:
            assert client.ping()["ok"]
            document = client.sample(COIN, n=100, instance=_coins(),
                                     seed=5)
            assert document["command"] == "sample"
            assert document["n_runs"] == 100
            probability = client.marginal(COIN, ["Heads", [0, 1]],
                                          n=100, instance=_coins(),
                                          seed=5)
            assert 0.0 <= probability <= 1.0
            assert client.analyze(COIN)["verdict"] == "terminating"
            reports = client.mass_report(COIN, budgets=[1, 2],
                                         instance=_coins(1))["reports"]
            assert len(reports) == 2

    def test_client_raises_on_server_error(self, running_server):
        _server, (host, port) = running_server
        with ServingClient(host, port) as client:
            with pytest.raises(repro.ReproError, match="unknown op"):
                client.result({"op": "bogus"})

    def test_malformed_line_gets_error_reply(self, running_server):
        import socket as socket_module
        _server, (host, port) = running_server
        with socket_module.create_connection((host, port)) as conn:
            conn.sendall(b"{not json\n")
            with conn.makefile("r", encoding="utf-8") as reader:
                reply = decode_line(reader.readline())
        assert reply["ok"] is False and "bad JSON" in reply["error"]

    def test_concurrent_clients_zero_recompilation(self, running_server):
        server, (host, port) = running_server
        documents: list = []
        errors: list = []

        def worker(seed: int) -> None:
            try:
                with ServingClient(host, port) as client:
                    documents.append(client.sample(
                        COIN, n=60, instance=_coins(), seed=seed))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in (1, 2, 3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(documents) == 3
        assert all(doc["n_runs"] == 60 for doc in documents)
        assert server.stats["programs_compiled"] == 1
        assert server.stats["program_cache_hits"] == 2
        assert server.stats["sessions_created"] == 1
