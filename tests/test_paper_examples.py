"""Integration tests: every worked example of the paper, exact numbers.

These are the reproduction's ground-truth checks (experiments E1-E5 of
DESIGN.md); EXPERIMENTS.md cites the values asserted here.
"""

import numpy as np
import pytest

from repro.core.semantics import exact_spdb, sample_spdb
from repro.measures.empirical import summarize
from repro.pdb.facts import Fact
from repro.workloads import paper
from tests.conftest import assert_measures_close


def worlds_dict(pdb):
    return dict(pdb.worlds())


class TestExample11G0:
    """Example 1.1, program G0 (two identical Flip rules)."""

    def test_our_semantics(self, g0):
        pdb = exact_spdb(g0, semantics="grohe")
        assert_measures_close(worlds_dict(pdb), paper.G0_EXPECTED_GROHE)
        assert pdb.err_mass() == 0.0

    def test_barany_semantics(self, g0):
        pdb = exact_spdb(g0, semantics="barany")
        assert_measures_close(worlds_dict(pdb), paper.G0_EXPECTED_BARANY)

    def test_g0_double_prime_single_rule(self):
        # G''0 = one rule; under BOTH semantics: {R(1)} 1/2, {R(0)} 1/2.
        program = paper.example_1_1_g0_double_prime()
        for semantics in ("grohe", "barany"):
            pdb = exact_spdb(program, semantics=semantics)
            assert_measures_close(worlds_dict(pdb),
                                  paper.G0_EXPECTED_BARANY)

    def test_g0_not_equivalent_to_single_rule_under_ours(self, g0):
        # The paper notes G0 and G''0 differ under the new semantics.
        two_rules = exact_spdb(g0)
        one_rule = exact_spdb(paper.example_1_1_g0_double_prime())
        assert not two_rules.allclose(one_rule)


class TestExample11GPrime:
    """Example 1.1, program G'0 (Flip vs Flip')."""

    def test_renaming_invariance_of_our_semantics(self, g0, g0_prime):
        assert exact_spdb(g0).allclose(exact_spdb(g0_prime))

    def test_barany_sensitive_to_renaming(self, g0, g0_prime):
        renamed = exact_spdb(g0_prime, semantics="barany")
        original = exact_spdb(g0, semantics="barany")
        assert not renamed.allclose(original)
        assert_measures_close(worlds_dict(renamed),
                              paper.G0_PRIME_EXPECTED_BARANY)


class TestExample11GEps:
    """Example 1.1, Gε: continuity under ours, discontinuity under [3]."""

    @pytest.mark.parametrize("epsilon", [0.5, 0.25, 0.125, 1e-3])
    def test_exact_values_as_displayed(self, epsilon):
        program = paper.example_1_1_g_eps(epsilon)
        pdb = exact_spdb(program)
        assert_measures_close(worlds_dict(pdb),
                              paper.g_eps_expected(epsilon),
                              tolerance=1e-9)

    def test_both_semantics_agree_on_g_eps(self):
        # Distinct parameters => two independent samples either way.
        program = paper.example_1_1_g_eps(0.25)
        assert exact_spdb(program).allclose(
            exact_spdb(program, semantics="barany"))

    def test_continuity_under_our_semantics(self, g0):
        # outcome(Gε) → outcome(G0) as ε → 0 under "grohe".
        limit = exact_spdb(g0)
        for epsilon in (0.25, 0.0625, 1e-4):
            pdb = exact_spdb(paper.example_1_1_g_eps(epsilon))
            assert pdb.tv_distance(limit) <= epsilon + 1e-9

    def test_discontinuity_under_barany(self, g0):
        # outcome(Gε) does NOT approach outcome(G0) under [3]:
        # the TV distance stays >= 1/4 as ε → 0.
        limit = exact_spdb(g0, semantics="barany")
        for epsilon in (0.25, 0.0625, 1e-4):
            pdb = exact_spdb(paper.example_1_1_g_eps(epsilon),
                             semantics="barany")
            assert pdb.tv_distance(limit) >= 0.25

    def test_paper_prose_reading(self):
        # The printed probabilities match biases (1/2+ε, 1/2+ε).
        epsilon = 0.125
        prose = paper.g_eps_expected_paper_prose(epsilon)
        total = sum(prose.values())
        assert total == pytest.approx(1.0)
        world_one = paper._r_world(1)
        assert prose[world_one] == pytest.approx(
            0.25 + epsilon + epsilon ** 2)


class TestSection62HPrograms:
    def test_h_under_ours(self, program_h):
        pdb = exact_spdb(program_h)
        assert_measures_close(worlds_dict(pdb), paper.H_EXPECTED_GROHE)

    def test_h_under_barany(self, program_h):
        pdb = exact_spdb(program_h, semantics="barany")
        assert_measures_close(worlds_dict(pdb), paper.H_EXPECTED_BARANY)

    def test_h_prime_simulates_barany(self, program_h_prime):
        pdb = exact_spdb(program_h_prime).project(["R", "S"])
        assert_measures_close(worlds_dict(pdb),
                              paper.H_PRIME_EXPECTED_RESTRICTED)

    def test_h_prime_keeps_a_in_full_output(self, program_h_prime):
        pdb = exact_spdb(program_h_prime)
        # Full worlds contain the auxiliary predicate A (paper: worlds
        # are {R(v), S(v), A(v)}).
        for world, probability in pdb.worlds():
            values = {f.args[0] for f in world.facts_of("A")}
            assert len(values) == 1
            (v,) = values
            assert Fact("R", (v,)) in world
            assert Fact("S", (v,)) in world
            assert probability == pytest.approx(0.5)


class TestExample34Earthquake:
    def test_exact_alarm_marginals(self, earthquake_program,
                                   earthquake_instance):
        pdb = exact_spdb(earthquake_program, earthquake_instance)
        assert pdb.marginal(Fact("Alarm", ("house-1",))) == \
            pytest.approx(paper.alarm_probability_closed_form(0.03))
        assert pdb.marginal(Fact("Alarm", ("biz-1",))) == \
            pytest.approx(paper.alarm_probability_closed_form(0.01))

    def test_earthquake_marginal(self, earthquake_program,
                                 earthquake_instance):
        pdb = exact_spdb(earthquake_program, earthquake_instance)
        assert pdb.marginal(Fact("Earthquake", ("Napa", 1))) == \
            pytest.approx(0.1)

    def test_units_derived_deterministically(self, earthquake_program,
                                             earthquake_instance):
        pdb = exact_spdb(earthquake_program, earthquake_instance)
        assert pdb.marginal(Fact("Unit", ("house-1", "Napa"))) == \
            pytest.approx(1.0)

    def test_monte_carlo_agrees(self, earthquake_program,
                                earthquake_instance):
        exact = exact_spdb(earthquake_program, earthquake_instance)
        sampled = sample_spdb(earthquake_program, earthquake_instance,
                              n=4000, rng=0)
        for unit in ("house-1", "biz-1"):
            f = Fact("Alarm", (unit,))
            se = max(sampled.prob_standard_error(
                lambda D, f=f: f in D), 1e-3)
            assert abs(sampled.marginal(f) - exact.marginal(f)) < 5 * se

    def test_burglary_uses_city_rate(self, earthquake_program,
                                     earthquake_instance):
        pdb = exact_spdb(earthquake_program, earthquake_instance)
        assert pdb.marginal(Fact("Burglary", ("house-1", "Napa", 1))) \
            == pytest.approx(0.03)


class TestExample35Heights:
    def test_samples_match_moments(self, heights_program):
        instance = paper.example_3_5_instance(
            moments={"NL": (183.8, 49.0)}, persons_per_country=4)
        sampled = sample_spdb(heights_program, instance, n=800, rng=1)
        heights = sampled.values_of(
            lambda D: [f.args[1] for f in D.facts_of("PHeight")])
        summary = summarize(heights)
        assert summary.mean_within(183.8)
        assert abs(summary.variance - 49.0) < 5.0

    def test_every_person_gets_one_height(self, heights_program,
                                          heights_instance):
        sampled = sample_spdb(heights_program, heights_instance,
                              n=50, rng=2)
        for world in sampled.worlds:
            persons = {f.args[0] for f in world.facts_of("PHeight")}
            assert persons == {f.args[0] for f
                               in heights_instance.facts_of("PCountry")}

    def test_heights_differ_across_worlds(self, heights_program,
                                          heights_instance):
        # Continuous sampling: worlds are almost surely distinct.
        sampled = sample_spdb(heights_program, heights_instance,
                              n=30, rng=3)
        assert len(set(sampled.worlds)) == 30

    def test_per_country_separation(self, heights_program):
        instance = paper.example_3_5_instance(
            moments={"NL": (183.8, 25.0), "PE": (165.2, 25.0)},
            persons_per_country=2)
        sampled = sample_spdb(heights_program, instance, n=500, rng=4)
        nl = summarize(sampled.values_of(
            lambda D: [f.args[1] for f in D.facts_of("PHeight")
                       if f.args[0].startswith("nl")]))
        pe = summarize(sampled.values_of(
            lambda D: [f.args[1] for f in D.facts_of("PHeight")
                       if f.args[0].startswith("pe")]))
        assert nl.mean - pe.mean > 10.0
