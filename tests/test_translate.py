"""Tests for the Datalog-with-existentials translation (Section 3.2)."""

import pytest

from repro.core.program import Program
from repro.core.translate import (DetRule, ExtRule, is_aux_relation,
                                  translate, translate_barany)
from repro.core.terms import Const, Var


class TestGroheTranslation:
    def test_deterministic_rule_passthrough(self):
        program = Program.parse("A(x) :- B(x).")
        translated = translate(program)
        assert len(translated.rules) == 1
        assert isinstance(translated.rules[0], DetRule)
        assert translated.aux_info == {}

    def test_random_rule_splits_in_two(self):
        program = Program.parse("R(Flip<0.5>) :- true.")
        translated = translate(program)
        assert len(translated.rules) == 2
        ext, det = translated.rules
        assert isinstance(ext, ExtRule) and isinstance(det, DetRule)
        assert ext.aux_relation.startswith("Result#")
        assert det.head.relation == "R"

    def test_per_rule_aux_relations_distinct(self, g0):
        translated = translate(g0)
        ext_rules = translated.existential_rules()
        assert len(ext_rules) == 2
        assert ext_rules[0].aux_relation != ext_rules[1].aux_relation

    def test_aux_columns_layout(self):
        # Head R(x, ψ⟨p⟩) with carried x: aux = Result#i(x, p, y).
        program = Program.parse("R(x, Flip<p>) :- B(x, p).")
        translated = translate(program)
        ext = translated.existential_rules()[0]
        assert ext.prefix_terms == (Var("x"), Var("p"))
        assert ext.n_carried == 1
        info = translated.aux_info[ext.aux_relation]
        assert info.arity == 3

    def test_random_term_position_preserved(self):
        # Random term mid-head: companion head restores the position.
        program = Program.parse("R(x, Flip<0.5>, y) :- B(x, y).")
        translated = translate(program)
        det = [r for r in translated.rules if isinstance(r, DetRule)][0]
        assert det.head.relation == "R"
        assert det.head.terms[0] == Var("x")
        assert det.head.terms[2] == Var("y")
        # middle term is the fresh existential variable
        assert det.head.terms[1].name.startswith("y#")

    def test_companion_body_contains_original_and_aux(self):
        program = Program.parse("R(Flip<r>) :- City(c, r).")
        translated = translate(program)
        det = [r for r in translated.rules if isinstance(r, DetRule)][0]
        relations = [a.relation for a in det.body]
        assert "City" in relations
        assert any(is_aux_relation(r) for r in relations)

    def test_prefix_values_and_fact(self):
        program = Program.parse("R(x, Flip<p>) :- B(x, p).")
        translated = translate(program)
        ext = translated.existential_rules()[0]
        prefix = ext.prefix_values({Var("x"): "a", Var("p"): 0.5})
        assert prefix == ("a", 0.5)
        assert ext.param_values(prefix) == (0.5,)
        f = ext.aux_fact(prefix, 1)
        assert f.args == ("a", 0.5, 1)

    def test_visible_relations_exclude_aux(self, g0):
        translated = translate(g0)
        assert "R" in translated.visible_relations()
        assert not any(is_aux_relation(r)
                       for r in translated.visible_relations())

    def test_is_discrete(self, g0, heights_program):
        assert translate(g0).is_discrete()
        assert not translate(heights_program).is_discrete()

    def test_normalization_applied_automatically(self):
        from repro.core.atoms import Atom
        from repro.core.rules import Rule
        from repro.core.terms import RandomTerm
        from repro.distributions.registry import DEFAULT_REGISTRY
        flip = DEFAULT_REGISTRY["Flip"]
        rule = Rule(Atom("R", (RandomTerm(flip, (Const(0.5),)),
                               RandomTerm(flip, (Const(0.5),)))), ())
        translated = translate(Program([rule]))
        # Two random terms -> two existential rules after splitting.
        assert len(translated.existential_rules()) == 2


class TestBaranyTranslation:
    def test_shared_aux_for_same_distribution(self, g0):
        translated = translate_barany(g0)
        ext_rules = translated.existential_rules()
        assert len(ext_rules) == 2
        assert ext_rules[0].aux_relation == ext_rules[1].aux_relation
        assert ext_rules[0].aux_relation.startswith("Sample#Flip")

    def test_different_names_not_shared(self, g0_prime):
        translated = translate_barany(g0_prime)
        ext_rules = translated.existential_rules()
        assert ext_rules[0].aux_relation != ext_rules[1].aux_relation

    def test_aux_keyed_by_params_only(self):
        program = Program.parse("R(x, Flip<p>) :- B(x, p).")
        translated = translate_barany(program)
        ext = translated.existential_rules()[0]
        assert ext.n_carried == 0
        assert ext.prefix_terms == (Var("p"),)

    def test_semantics_tags(self, g0):
        assert translate(g0).semantics == "grohe"
        assert translate_barany(g0).semantics == "barany"

    def test_arity_disambiguation(self):
        # Same distribution name with different parameter counts gets
        # distinct auxiliary relations (Categorical is variadic).
        program = Program.parse("""
            A(Categorical<0.5, 0.5>) :- true.
            B(Categorical<0.2, 0.3, 0.5>) :- true.
        """)
        translated = translate_barany(program)
        aux_names = {r.aux_relation
                     for r in translated.existential_rules()}
        assert len(aux_names) == 2


class TestAuxNaming:
    def test_is_aux_relation(self):
        assert is_aux_relation("Result#0")
        assert is_aux_relation("Sample#Flip#1")
        assert not is_aux_relation("Results")
        assert not is_aux_relation("City")

    def test_aux_names_unparseable(self):
        from repro.core.parser import parse_program
        from repro.distributions.registry import DEFAULT_REGISTRY
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            parse_program("Result#0(x) :- B(x).", DEFAULT_REGISTRY)
