"""Seeded property tests: samplers match their declared densities.

Complements ``test_verify_distributions.py`` (which checks the Fact
2.3 *conditions* numerically): here every registered distribution's
``sample`` method is tested against its own declared law -

* sample moments vs ``mean()`` / ``variance()``;
* empirical CDF vs ``cdf()`` where exposed, else vs a numeric
  integral of ``density()`` (continuous families);
* sampled frequencies vs ``truncated_support`` masses (discrete
  families).

The parameter table is asserted to cover the *entire* default
registry, so registering a new family without property coverage - or
renaming one - fails immediately (registry drift).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions.registry import DEFAULT_REGISTRY
from repro.distributions.verify import fact_2_3_report
from repro.measures.empirical import (frequencies_close, ks_critical_value,
                                      ks_statistic, summarize)

N_SAMPLES = 4000

#: Two distinct parameter points per registered family.
PARAMETER_POINTS = {
    "Flip": [(0.3,), (0.7,)],
    "Bernoulli": [(0.2,), (0.6,)],
    "FlipPrime": [(0.4,), (0.9,)],
    "Binomial": [(5, 0.4), (3, 0.8)],
    "Poisson": [(1.5,), (4.0,)],
    "Geometric": [(0.3,), (0.6,)],
    "DiscreteUniform": [(0, 4), (2, 7)],
    "Categorical": [(0.2, 0.3, 0.5), (0.5, 0.5)],
    "Normal": [(0.0, 1.0), (2.0, 4.0)],
    "LogNormal": [(0.0, 0.25), (0.5, 1.0)],
    "Exponential": [(1.0,), (2.5,)],
    "Uniform": [(0.0, 1.0), (-2.0, 3.0)],
    "Gamma": [(2.0, 1.0), (1.5, 2.0)],
    "Beta": [(2.0, 2.0), (5.0, 1.5)],
    "Laplace": [(0.0, 1.0), (1.0, 2.0)],
}

CASES = [(name, params) for name, points in
         sorted(PARAMETER_POINTS.items()) for params in points]
CASE_IDS = [f"{name}{params}" for name, params in CASES]


def test_parameter_table_covers_registry_exactly():
    """Registry drift tripwire: every family needs property points."""
    assert set(PARAMETER_POINTS) == set(DEFAULT_REGISTRY.names())


def _samples(name, params):
    rng = np.random.default_rng(int.from_bytes(name.encode(), "big")
                                % (2 ** 31) + len(params))
    return DEFAULT_REGISTRY[name].sample_many(params, rng, N_SAMPLES)


@pytest.mark.parametrize("name,params", CASES, ids=CASE_IDS)
def test_sample_mean_matches_declared_mean(name, params):
    distribution = DEFAULT_REGISTRY[name]
    try:
        expected = distribution.mean(params)
    except NotImplementedError:
        pytest.skip(f"{name} exposes no mean")
    summary = summarize(float(x) for x in _samples(name, params))
    assert summary.mean_within(expected, z=5.0), (
        f"{name}{params}: sample mean {summary.mean:.4f} vs declared "
        f"{expected:.4f} (se {summary.mean_standard_error:.4f})")


@pytest.mark.parametrize("name,params", CASES, ids=CASE_IDS)
def test_sample_variance_matches_declared_variance(name, params):
    distribution = DEFAULT_REGISTRY[name]
    try:
        expected = distribution.variance(params)
    except NotImplementedError:
        pytest.skip(f"{name} exposes no variance")
    summary = summarize(float(x) for x in _samples(name, params))
    # Variance of the sample variance is ~ (kurtosis-dependent)
    # 2 sigma^4 / n for light tails; allow a generous relative band
    # plus an absolute floor for near-zero variances.
    tolerance = 0.25 * expected + 8.0 * expected \
        * math.sqrt(2.0 / N_SAMPLES) + 0.01
    assert abs(summary.variance - expected) <= tolerance, (
        f"{name}{params}: sample variance {summary.variance:.4f} vs "
        f"declared {expected:.4f}")


def _reference_cdf(distribution, params):
    """``cdf()`` if exposed, else a numeric integral of the density."""
    try:
        distribution.cdf(params, 0.0)
        return lambda x: distribution.cdf(params, x)
    except NotImplementedError:
        pass
    centre = distribution.mean(params)
    spread = math.sqrt(max(distribution.variance(params), 1e-6))
    grid = np.linspace(centre - 12 * spread, centre + 12 * spread,
                       20001)
    densities = np.asarray([distribution.density(params, float(x))
                            for x in grid])
    masses = np.concatenate(
        [[0.0], np.cumsum(np.diff(grid)
                          * 0.5 * (densities[1:] + densities[:-1]))])

    def cdf(x: float) -> float:
        return float(np.interp(x, grid, masses))

    return cdf


@pytest.mark.parametrize(
    "name,params",
    [(name, params) for name, params in CASES
     if not DEFAULT_REGISTRY[name].is_discrete],
    ids=[cid for (name, _), cid in zip(CASES, CASE_IDS)
         if not DEFAULT_REGISTRY[name].is_discrete])
def test_continuous_samples_match_cdf(name, params):
    """One-sample KS of the sampler against the density's own CDF."""
    distribution = DEFAULT_REGISTRY[name]
    samples = [float(x) for x in _samples(name, params)]
    statistic = ks_statistic(samples, _reference_cdf(distribution,
                                                     params))
    limit = 1.3 * ks_critical_value(len(samples), alpha=1e-3)
    assert statistic <= limit, (
        f"{name}{params}: KS {statistic:.4f} > {limit:.4f} - sampler "
        "disagrees with its declared density")


@pytest.mark.parametrize(
    "name,params",
    [(name, params) for name, params in CASES
     if DEFAULT_REGISTRY[name].is_discrete],
    ids=[cid for (name, _), cid in zip(CASES, CASE_IDS)
         if DEFAULT_REGISTRY[name].is_discrete])
def test_discrete_frequencies_match_pmf(name, params):
    """Sampled frequencies vs ``truncated_support`` point masses."""
    distribution = DEFAULT_REGISTRY[name]
    samples = _samples(name, params)
    pairs, residue = distribution.truncated_support(params, 1e-6)
    assert residue <= 1e-6
    probabilities = dict(pairs)
    assert frequencies_close(samples, probabilities,
                             tolerance_sigmas=6.0), (
        f"{name}{params}: sampled frequencies disagree with the pmf")


@pytest.mark.parametrize("name", sorted(PARAMETER_POINTS),
                         ids=sorted(PARAMETER_POINTS))
def test_fact_2_3_conditions_hold(name):
    """Normalization / θ-continuity / identifiability per family."""
    distribution = DEFAULT_REGISTRY[name]
    points = PARAMETER_POINTS[name]
    values = [0, 1] if distribution.is_discrete else [0.25, 1.5]
    report = fact_2_3_report(distribution, points, values)
    assert report.all_ok(), repr(report)
