"""Seeded property tests: samplers match their declared densities.

Complements ``test_verify_distributions.py`` (which checks the Fact
2.3 *conditions* numerically): here every registered distribution's
``sample`` method is tested against its own declared law -

* sample moments vs ``mean()`` / ``variance()``;
* empirical CDF vs ``cdf()`` where exposed, else vs a numeric
  integral of ``density()`` (continuous families);
* sampled frequencies vs ``truncated_support`` masses (discrete
  families).

The parameter table is asserted to cover the *entire* default
registry, so registering a new family without property coverage - or
renaming one - fails immediately (registry drift).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions.registry import DEFAULT_REGISTRY
from repro.distributions.verify import fact_2_3_report
from repro.measures.empirical import (frequencies_close, ks_critical_value,
                                      ks_statistic, summarize)

N_SAMPLES = 4000

#: Two distinct parameter points per registered family.
PARAMETER_POINTS = {
    "Flip": [(0.3,), (0.7,)],
    "Bernoulli": [(0.2,), (0.6,)],
    "FlipPrime": [(0.4,), (0.9,)],
    "Binomial": [(5, 0.4), (3, 0.8)],
    "Poisson": [(1.5,), (4.0,)],
    "Geometric": [(0.3,), (0.6,)],
    "DiscreteUniform": [(0, 4), (2, 7)],
    "Categorical": [(0.2, 0.3, 0.5), (0.5, 0.5)],
    "Normal": [(0.0, 1.0), (2.0, 4.0)],
    "LogNormal": [(0.0, 0.25), (0.5, 1.0)],
    "Exponential": [(1.0,), (2.5,)],
    "Uniform": [(0.0, 1.0), (-2.0, 3.0)],
    "Gamma": [(2.0, 1.0), (1.5, 2.0)],
    "Beta": [(2.0, 2.0), (5.0, 1.5)],
    "Laplace": [(0.0, 1.0), (1.0, 2.0)],
}

CASES = [(name, params) for name, points in
         sorted(PARAMETER_POINTS.items()) for params in points]
CASE_IDS = [f"{name}{params}" for name, params in CASES]


def test_parameter_table_covers_registry_exactly():
    """Registry drift tripwire: every family needs property points."""
    assert set(PARAMETER_POINTS) == set(DEFAULT_REGISTRY.names())


def _samples(name, params):
    rng = np.random.default_rng(int.from_bytes(name.encode(), "big")
                                % (2 ** 31) + len(params))
    return DEFAULT_REGISTRY[name].sample_many(params, rng, N_SAMPLES)


@pytest.mark.parametrize("name,params", CASES, ids=CASE_IDS)
def test_sample_mean_matches_declared_mean(name, params):
    distribution = DEFAULT_REGISTRY[name]
    try:
        expected = distribution.mean(params)
    except NotImplementedError:
        pytest.skip(f"{name} exposes no mean")
    summary = summarize(float(x) for x in _samples(name, params))
    assert summary.mean_within(expected, z=5.0), (
        f"{name}{params}: sample mean {summary.mean:.4f} vs declared "
        f"{expected:.4f} (se {summary.mean_standard_error:.4f})")


@pytest.mark.parametrize("name,params", CASES, ids=CASE_IDS)
def test_sample_variance_matches_declared_variance(name, params):
    distribution = DEFAULT_REGISTRY[name]
    try:
        expected = distribution.variance(params)
    except NotImplementedError:
        pytest.skip(f"{name} exposes no variance")
    summary = summarize(float(x) for x in _samples(name, params))
    # Variance of the sample variance is ~ (kurtosis-dependent)
    # 2 sigma^4 / n for light tails; allow a generous relative band
    # plus an absolute floor for near-zero variances.
    tolerance = 0.25 * expected + 8.0 * expected \
        * math.sqrt(2.0 / N_SAMPLES) + 0.01
    assert abs(summary.variance - expected) <= tolerance, (
        f"{name}{params}: sample variance {summary.variance:.4f} vs "
        f"declared {expected:.4f}")


def _reference_cdf(distribution, params):
    """``cdf()`` if exposed, else a numeric integral of the density."""
    try:
        distribution.cdf(params, 0.0)
        return lambda x: distribution.cdf(params, x)
    except NotImplementedError:
        pass
    centre = distribution.mean(params)
    spread = math.sqrt(max(distribution.variance(params), 1e-6))
    grid = np.linspace(centre - 12 * spread, centre + 12 * spread,
                       20001)
    densities = np.asarray([distribution.density(params, float(x))
                            for x in grid])
    masses = np.concatenate(
        [[0.0], np.cumsum(np.diff(grid)
                          * 0.5 * (densities[1:] + densities[:-1]))])

    def cdf(x: float) -> float:
        return float(np.interp(x, grid, masses))

    return cdf


@pytest.mark.parametrize(
    "name,params",
    [(name, params) for name, params in CASES
     if not DEFAULT_REGISTRY[name].is_discrete],
    ids=[cid for (name, _), cid in zip(CASES, CASE_IDS)
         if not DEFAULT_REGISTRY[name].is_discrete])
def test_continuous_samples_match_cdf(name, params):
    """One-sample KS of the sampler against the density's own CDF."""
    distribution = DEFAULT_REGISTRY[name]
    samples = [float(x) for x in _samples(name, params)]
    statistic = ks_statistic(samples, _reference_cdf(distribution,
                                                     params))
    limit = 1.3 * ks_critical_value(len(samples), alpha=1e-3)
    assert statistic <= limit, (
        f"{name}{params}: KS {statistic:.4f} > {limit:.4f} - sampler "
        "disagrees with its declared density")


@pytest.mark.parametrize(
    "name,params",
    [(name, params) for name, params in CASES
     if DEFAULT_REGISTRY[name].is_discrete],
    ids=[cid for (name, _), cid in zip(CASES, CASE_IDS)
         if DEFAULT_REGISTRY[name].is_discrete])
def test_discrete_frequencies_match_pmf(name, params):
    """Sampled frequencies vs ``truncated_support`` point masses."""
    distribution = DEFAULT_REGISTRY[name]
    samples = _samples(name, params)
    pairs, residue = distribution.truncated_support(params, 1e-6)
    assert residue <= 1e-6
    probabilities = dict(pairs)
    assert frequencies_close(samples, probabilities,
                             tolerance_sigmas=6.0), (
        f"{name}{params}: sampled frequencies disagree with the pmf")


@pytest.mark.parametrize("name", sorted(PARAMETER_POINTS),
                         ids=sorted(PARAMETER_POINTS))
def test_fact_2_3_conditions_hold(name):
    """Normalization / θ-continuity / identifiability per family."""
    distribution = DEFAULT_REGISTRY[name]
    points = PARAMETER_POINTS[name]
    values = [0, 1] if distribution.is_discrete else [0.25, 1.5]
    report = fact_2_3_report(distribution, points, values)
    assert report.all_ok(), repr(report)


# -- truncated / conditional sampling ---------------------------------------
#
# ``sample_batch_truncated`` is the engine of guided conditioning
# (repro.core.backward): every family must (a) only emit values inside
# the feasible region, (b) follow the prior law renormalized to the
# region, and (c) report the log region mass (or log density at a
# point) as the importance weight.  Gamma and Beta expose neither
# ``cdf`` nor ``ppf`` and therefore exercise the base-class fallback:
# region-filtered rejection plus quadrature mass.

from repro.distributions.regions import Region
from repro.errors import DistributionError

DISCRETE_CASES = [(n, p) for n, p in CASES
                  if DEFAULT_REGISTRY[n].is_discrete]
DISCRETE_IDS = [cid for (n, _), cid in zip(CASES, CASE_IDS)
                if DEFAULT_REGISTRY[n].is_discrete]
CONTINUOUS_CASES = [(n, p) for n, p in CASES
                    if not DEFAULT_REGISTRY[n].is_discrete]
CONTINUOUS_IDS = [cid for (n, _), cid in zip(CASES, CASE_IDS)
                  if not DEFAULT_REGISTRY[n].is_discrete]

N_POOL = 60_000  # prior reference pool for masses / filtered laws


def _pool(name, params):
    rng = np.random.default_rng(int.from_bytes(name.encode(), "big")
                                % (2 ** 31) + 7 * len(params))
    return DEFAULT_REGISTRY[name].sample_batch(params, N_POOL, rng)


def _truncated(name, params, region, size=N_SAMPLES, seed=11):
    rng = np.random.default_rng(int.from_bytes(name.encode(), "big")
                                % (2 ** 31) + seed)
    return DEFAULT_REGISTRY[name].sample_batch_truncated(
        params, region, size, rng)


def _mass_close(name, log_weight, pool, region):
    """exp(log_weight) vs the empirical prior region mass."""
    inside = region.mask(pool)
    estimate = float(inside.mean())
    sigma = math.sqrt(max(estimate * (1 - estimate), 1e-12) / N_POOL)
    # the 2e-3 floor absorbs quadrature error (Gamma/Beta mass is a
    # trapezoid integral of the density, not a closed form)
    tolerance = 6.0 * sigma + 2e-3
    assert abs(math.exp(log_weight) - estimate) <= tolerance, (
        f"{name}: weight exp({log_weight:.4f}) = "
        f"{math.exp(log_weight):.4f} vs empirical region mass "
        f"{estimate:.4f} (tolerance {tolerance:.4f})")


def _region_pmf(name, params, region):
    """Exact renormalized pmf of a discrete family over a region."""
    distribution = DEFAULT_REGISTRY[name]
    pairs, _residue = distribution.truncated_support(params, 1e-9)
    masses = {v: m for v, m in pairs if region.contains(v)}
    total = math.fsum(masses.values())
    return {v: m / total for v, m in masses.items()}, total


@pytest.mark.parametrize("name,params", DISCRETE_CASES,
                         ids=DISCRETE_IDS)
def test_truncated_discrete_pin_set(name, params):
    """Top-2 pin set: in-region, right frequencies, exact weight."""
    distribution = DEFAULT_REGISTRY[name]
    pairs, _ = distribution.truncated_support(params, 1e-9)
    top = [v for v, _ in sorted(pairs, key=lambda vm: -vm[1])[:2]]
    region = Region.pins(top)
    samples, log_weight = _truncated(name, params, region)
    assert all(region.contains(v) for v in samples.tolist())
    probabilities, total = _region_pmf(name, params, region)
    assert frequencies_close(samples, probabilities,
                             tolerance_sigmas=6.0), (
        f"{name}{params}: truncated frequencies disagree with the "
        f"renormalized pmf over {region}")
    assert abs(math.exp(log_weight) - total) <= 1e-6


@pytest.mark.parametrize("name,params", DISCRETE_CASES,
                         ids=DISCRETE_IDS)
def test_truncated_discrete_interval(name, params):
    """Asymmetric left interval through the enumeration path."""
    pool = _pool(name, params)
    median = float(np.median(pool))
    region = Region.interval(-0.5, median + 0.25)
    samples, log_weight = _truncated(name, params, region)
    assert all(region.contains(v) for v in samples.tolist())
    probabilities, total = _region_pmf(name, params, region)
    assert frequencies_close(samples, probabilities,
                             tolerance_sigmas=6.0), (
        f"{name}{params}: truncated frequencies disagree with the "
        f"renormalized pmf over {region}")
    assert abs(math.exp(log_weight) - total) <= 1e-6


def _empirical_cdf(reference):
    ordered = np.sort(np.asarray(reference, dtype=float))

    def cdf(x: float) -> float:
        return float(np.searchsorted(ordered, x, side="right")
                     / len(ordered))

    return cdf


@pytest.mark.parametrize("name,params", CONTINUOUS_CASES,
                         ids=CONTINUOUS_IDS)
def test_truncated_continuous_tail_interval(name, params):
    """One-sided tail: in-region, KS vs filtered prior, mass weight."""
    pool = _pool(name, params)
    cut = float(np.quantile(pool, 0.7))
    region = Region.interval(cut, float("inf"))
    samples, log_weight = _truncated(name, params, region)
    assert bool(region.mask(samples).all()), (
        f"{name}{params}: truncated draw escaped {region}")
    reference = pool[region.mask(pool)]
    statistic = ks_statistic([float(x) for x in samples],
                             _empirical_cdf(reference))
    limit = 1.3 * ks_critical_value(len(samples), len(reference),
                                    alpha=1e-3)
    assert statistic <= limit, (
        f"{name}{params}: KS {statistic:.4f} > {limit:.4f} - "
        "truncated law disagrees with region-filtered prior")
    _mass_close(f"{name}{params}", log_weight, pool, region)


@pytest.mark.parametrize("name,params", CONTINUOUS_CASES,
                         ids=CONTINUOUS_IDS)
def test_truncated_continuous_union(name, params):
    """Two disjoint intervals: both visited, law and weight right."""
    pool = _pool(name, params)
    q05, q25, q60, q80 = (float(np.quantile(pool, q))
                          for q in (0.05, 0.25, 0.6, 0.8))
    region = Region.interval(q05, q25).union(
        Region.interval(q60, q80))
    samples, log_weight = _truncated(name, params, region)
    assert bool(region.mask(samples).all())
    lower = Region.interval(q05, q25).mask(samples).mean()
    # each component holds ~half the region's mass; both must be hit
    assert 0.25 <= float(lower) <= 0.75, (
        f"{name}{params}: union sampling ignored a component "
        f"(lower fraction {float(lower):.3f})")
    reference = pool[region.mask(pool)]
    statistic = ks_statistic([float(x) for x in samples],
                             _empirical_cdf(reference))
    limit = 1.3 * ks_critical_value(len(samples), len(reference),
                                    alpha=1e-3)
    assert statistic <= limit, (
        f"{name}{params}: KS {statistic:.4f} > {limit:.4f} over "
        f"{region}")
    _mass_close(f"{name}{params}", log_weight, pool, region)


@pytest.mark.parametrize("name,params", CASES, ids=CASE_IDS)
def test_truncated_single_point_is_constant(name, params):
    """Point region: constant column, weight = log pmf / density."""
    distribution = DEFAULT_REGISTRY[name]
    if distribution.is_discrete:
        pairs, _ = distribution.truncated_support(params, 1e-9)
        value = max(pairs, key=lambda vm: vm[1])[0]
    else:
        value = float(np.median(_pool(name, params)))
    samples, log_weight = _truncated(name, params,
                                     Region.point(value), size=64)
    assert samples.shape == (64,)
    assert all(v == value for v in samples.tolist())
    expected = math.log(distribution.density(params, value))
    assert abs(log_weight - expected) <= 1e-9, (
        f"{name}{params}: point weight {log_weight} vs log "
        f"{'pmf' if distribution.is_discrete else 'density'} "
        f"{expected}")


@pytest.mark.parametrize("name,params", CASES, ids=CASE_IDS)
def test_truncated_empty_region_raises(name, params):
    with pytest.raises(DistributionError):
        _truncated(name, params, Region(), size=8)


@pytest.mark.parametrize(
    "name,params,region",
    [("DiscreteUniform", (0, 4), Region.pins([-7])),
     ("Poisson", (1.5,), Region.pins([-3, -1])),
     ("Uniform", (0.0, 1.0), Region.interval(5.0, 6.0)),
     ("Exponential", (1.0,), Region.interval(-5.0, -1.0)),
     ("Beta", (2.0, 2.0), Region.interval(2.0, 3.0))],
    ids=["DiscreteUniform-pins", "Poisson-pins", "Uniform-interval",
         "Exponential-interval", "Beta-quadrature"])
def test_truncated_zero_mass_region_raises(name, params, region):
    """Nonempty regions the prior cannot reach are rejected loudly."""
    with pytest.raises(DistributionError):
        _truncated(name, params, region, size=8)


@pytest.mark.parametrize("name", ["Gamma", "Beta"])
def test_fallback_families_lack_closed_forms(name):
    """Tripwire: Gamma/Beta must keep exercising the base fallback.

    The truncated tests above only cover the rejection + quadrature
    base path as long as these families expose neither ``cdf`` nor
    ``ppf``; if someone adds closed forms, this reminds them the
    fallback then needs a dedicated carrier.
    """
    distribution = DEFAULT_REGISTRY[name]
    params = PARAMETER_POINTS[name][0]
    with pytest.raises(NotImplementedError):
        distribution.cdf(params, 1.0)
    with pytest.raises(NotImplementedError):
        distribution.ppf(params, np.asarray([0.5]))
