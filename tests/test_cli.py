"""Tests for the command-line interface (repro.cli)."""

import io
import json

import pytest

from repro.cli import main
from repro.io import save_instance_csv, save_program
from repro.pdb.instances import Instance
from repro.workloads import paper


@pytest.fixture
def g0_file(tmp_path):
    path = tmp_path / "g0.gdl"
    save_program(paper.example_1_1_g0(), path)
    return str(path)


@pytest.fixture
def earthquake_files(tmp_path):
    program_path = tmp_path / "quake.gdl"
    program_path.write_text(paper.EARTHQUAKE_PROGRAM_TEXT)
    data = save_instance_csv(paper.example_3_4_instance(), tmp_path)
    specs = [f"{relation}={path}" for relation, path in data.items()]
    return str(program_path), specs


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestExactCommand:
    def test_g0_worlds(self, g0_file):
        code, output = run_cli(["exact", g0_file])
        assert code == 0
        assert "# 3 worlds" in output
        assert "0.50000000" in output and "0.25000000" in output

    def test_barany_semantics_flag(self, g0_file):
        code, output = run_cli(["exact", g0_file,
                                "--semantics", "barany"])
        assert code == 0
        assert "# 2 worlds" in output

    def test_parallel_flag(self, g0_file):
        code, output = run_cli(["exact", g0_file, "--parallel"])
        assert code == 0
        assert "# 3 worlds" in output

    def test_top_limits_output(self, g0_file):
        code, output = run_cli(["exact", g0_file, "--top", "1"])
        assert code == 0
        assert "more worlds" in output

    def test_with_data(self, earthquake_files):
        program, specs = earthquake_files
        argv = ["exact", program]
        for spec in specs:
            argv += ["--data", spec]
        code, output = run_cli(argv)
        assert code == 0
        assert "err" in output


class TestSampleCommand:
    def test_marginals_printed(self, earthquake_files):
        program, specs = earthquake_files
        argv = ["sample", program, "-n", "500", "--seed", "1"]
        for spec in specs:
            argv += ["--data", spec]
        code, output = run_cli(argv)
        assert code == 0
        assert "Alarm('house-1')" in output
        assert "500 terminated runs" in output

    def test_deterministic_given_seed(self, g0_file):
        _, first = run_cli(["sample", g0_file, "-n", "200",
                            "--seed", "9"])
        _, second = run_cli(["sample", g0_file, "-n", "200",
                             "--seed", "9"])
        assert first == second


class TestAnalyzeCommand:
    def test_weakly_acyclic_report(self, earthquake_files):
        program, _ = earthquake_files
        code, output = run_cli(["analyze", program])
        assert code == 0
        assert "weakly acyclic:   True" in output
        assert "Theorem 6.3" in output

    def test_continuous_cycle_report(self, tmp_path):
        path = tmp_path / "loop.gdl"
        save_program(paper.continuous_feedback_program(), path)
        code, output = run_cli(["analyze", str(path)])
        assert code == 0
        assert "weakly acyclic:   False" in output
        assert "almost surely non-terminating" in output

    def test_discrete_cycle_report(self, tmp_path):
        path = tmp_path / "cycle.gdl"
        save_program(paper.discrete_cycle_program(), path)
        code, output = run_cli(["analyze", str(path)])
        assert code == 0
        assert "discrete" in output and "may terminate" in output


class TestTranslateCommand:
    def test_shows_existential_rules(self, g0_file):
        code, output = run_cli(["translate", g0_file])
        assert code == 0
        assert "Result#" in output and "∃y" in output

    def test_barany_translation(self, g0_file):
        code, output = run_cli(["translate", g0_file,
                                "--semantics", "barany"])
        assert code == 0
        assert "Sample#Flip" in output


class TestJsonOutput:
    def test_exact_json(self, g0_file):
        code, output = run_cli(["exact", g0_file, "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["command"] == "exact"
        assert payload["n_worlds"] == 3
        assert payload["total_mass"] == pytest.approx(1.0)
        assert payload["err_mass"] == pytest.approx(0.0)
        probabilities = sorted(world["probability"]
                               for world in payload["worlds"])
        assert probabilities == pytest.approx([0.25, 0.25, 0.5])

    def test_sample_json(self, g0_file):
        code, output = run_cli(["sample", g0_file, "-n", "400",
                                "--seed", "3", "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["command"] == "sample"
        assert payload["n_runs"] == 400
        assert payload["n_truncated"] == 0
        marginals = {(entry["fact"]["relation"],
                      tuple(entry["fact"]["args"])):
                     entry["probability"]
                     for entry in payload["marginals"]}
        assert abs(marginals[("R", (1,))] - 0.75) < 0.1

    def test_sample_json_matches_text_marginals(self, g0_file):
        code, text_output = run_cli(["sample", g0_file, "-n", "300",
                                     "--seed", "5"])
        assert code == 0
        code, json_output = run_cli(["sample", g0_file, "-n", "300",
                                     "--seed", "5", "--json"])
        assert code == 0
        payload = json.loads(json_output)
        for entry in payload["marginals"]:
            formatted = f"{entry['probability']:10.6f}"
            assert formatted in text_output

    def test_analyze_json(self, earthquake_files):
        program, _ = earthquake_files
        code, output = run_cli(["analyze", program, "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["weakly_acyclic"] is True
        assert payload["verdict"] == "terminating"
        assert payload["discrete"] is True

    def test_analyze_json_nonterminating(self, tmp_path):
        path = tmp_path / "loop.gdl"
        save_program(paper.continuous_feedback_program(), path)
        code, output = run_cli(["analyze", str(path), "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["weakly_acyclic"] is False
        assert payload["verdict"] == "almost-surely-non-terminating"

    def test_translate_json(self, g0_file):
        code, output = run_cli(["translate", g0_file, "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["semantics"] == "grohe"
        assert any(name.startswith("Result#")
                   for name in payload["aux_relations"])


class TestFacadeWiring:
    def test_cli_emits_no_deprecation_warnings(self, g0_file):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            code, _ = run_cli(["sample", g0_file, "-n", "50"])
        assert code == 0


class TestErrorPaths:
    def test_missing_file(self):
        code, _ = run_cli(["exact", "/nonexistent/program.gdl"])
        assert code == 2

    def test_parse_error(self, tmp_path):
        path = tmp_path / "bad.gdl"
        path.write_text("R(x :- B(x).")
        code, _ = run_cli(["exact", str(path)])
        assert code == 2

    def test_continuous_exact_rejected(self, tmp_path):
        path = tmp_path / "cont.gdl"
        save_program(paper.example_3_5_program(), path)
        code, _ = run_cli(["exact", str(path)])
        assert code == 2

    def test_bad_data_spec(self, g0_file):
        code, _ = run_cli(["exact", g0_file, "--data", "nonsense"])
        assert code == 2


#: The documented JSON keys of every subcommand (the CLI contract the
#: fuzz corpus and CI scripts rely on).
DOCUMENTED_JSON_KEYS = {
    "exact": {"command", "n_worlds", "total_mass", "err_mass",
              "elapsed_seconds", "worlds"},
    "sample": {"command", "n_runs", "n_terminated", "n_truncated",
               "err_mass", "elapsed_seconds", "backend", "marginals"},
    "analyze": {"command", "n_rules", "n_random_rules",
                "distributions", "extensional", "discrete",
                "weakly_acyclic", "continuous_cycle",
                "cyclic_distributions", "verdict"},
    "translate": {"command", "semantics", "n_rules", "aux_relations",
                  "rules"},
    "fuzz": {"command", "budget", "seed", "n_cases", "lint_rejected",
             "n_discrepancies", "kinds", "oracles", "discrepancies",
             "corpus_written", "elapsed_seconds"},
}


class TestJsonRoundTrip:
    """Every subcommand's --json output parses and carries its keys."""

    def _payload(self, argv):
        code, output = run_cli(argv)
        assert code == 0, output
        payload = json.loads(output)  # must be one valid document
        assert json.loads(json.dumps(payload)) == payload
        return payload

    def test_exact(self, g0_file):
        payload = self._payload(["exact", g0_file, "--json"])
        assert set(payload) == DOCUMENTED_JSON_KEYS["exact"]
        assert payload["command"] == "exact"
        for world in payload["worlds"]:
            assert set(world) == {"probability", "facts"}
            for fact in world["facts"]:
                assert set(fact) == {"relation", "args"}

    def test_sample(self, g0_file):
        payload = self._payload(["sample", g0_file, "-n", "50",
                                 "--json"])
        assert set(payload) == DOCUMENTED_JSON_KEYS["sample"]
        assert payload["n_runs"] == 50
        for entry in payload["marginals"]:
            assert set(entry) == {"fact", "probability"}

    def test_analyze(self, g0_file):
        payload = self._payload(["analyze", g0_file, "--json"])
        assert set(payload) == DOCUMENTED_JSON_KEYS["analyze"]
        assert payload["verdict"] == "terminating"

    def test_translate(self, g0_file):
        payload = self._payload(["translate", g0_file, "--json"])
        assert set(payload) == DOCUMENTED_JSON_KEYS["translate"]
        assert payload["semantics"] == "grohe"

    def test_fuzz(self):
        payload = self._payload(["fuzz", "--budget", "4", "--seed",
                                 "0", "--json"])
        assert set(payload) == DOCUMENTED_JSON_KEYS["fuzz"]
        assert payload["n_cases"] == 4
        assert payload["n_discrepancies"] == 0
        for stats in payload["oracles"].values():
            assert set(stats) == {"checked", "ok", "skipped", "failed",
                                  "seconds"}


class TestFuzzCommand:
    def test_human_output(self):
        code, output = run_cli(["fuzz", "--budget", "3", "--seed",
                                "1"])
        assert code == 0
        assert "# fuzz: 3 cases" in output
        assert "chase-order" in output and "fixpoint" in output

    def test_oracle_subset(self):
        code, output = run_cli(["fuzz", "--budget", "2", "--oracles",
                                "fixpoint,termination"])
        assert code == 0
        assert "exact-vs-sample" not in output

    def test_unknown_oracle_is_usage_error(self):
        code, _ = run_cli(["fuzz", "--budget", "1", "--oracles",
                           "nonsense"])
        assert code == 2

    def test_empty_oracle_selection_is_usage_error(self):
        # A stray comma must not silently disable all checking.
        code, _ = run_cli(["fuzz", "--budget", "1", "--oracles", ","])
        assert code == 2

    def test_non_positive_budget_is_usage_error(self):
        code, _ = run_cli(["fuzz", "--budget", "0"])
        assert code == 2
        code, _ = run_cli(["fuzz", "--budget", "-5"])
        assert code == 2

    def test_negative_seed_is_usage_error(self):
        code, _ = run_cli(["fuzz", "--budget", "1", "--seed", "-1"])
        assert code == 2

    def test_corpus_written_on_discrepancy(self, tmp_path,
                                           monkeypatch):
        """Force a failure via a monkeypatched battery; the shrunk
        reproducer must land in --corpus and flip the exit code."""
        from repro import testing as rt
        from repro.testing import Oracle, OracleOutcome

        class AlwaysFails(Oracle):
            name = "fixpoint"  # reuse a known name for --oracles

            def check(self, case):
                return OracleOutcome("fail", "synthetic")

        monkeypatch.setattr(
            "repro.testing.oracles_by_name",
            lambda: {"fixpoint": AlwaysFails()})
        corpus = tmp_path / "corpus"
        code, output = run_cli(["fuzz", "--budget", "1", "--oracles",
                                "fixpoint", "--corpus", str(corpus),
                                "--json"])
        assert code == 1
        payload = json.loads(output)
        assert payload["n_discrepancies"] == 1
        written = payload["corpus_written"]
        assert len(written) == 1
        from pathlib import Path
        assert Path(written[0]).exists()


class TestPosteriorCommand:
    @pytest.fixture
    def cascade_file(self, tmp_path):
        path = tmp_path / "cascade.gdl"
        path.write_text("Trig(x, Flip<0.6>) :- Site(x).\n"
                        "Alarm(x, Flip<0.5>) :- Trig(x, 1).\n")
        data = tmp_path / "sites.json"
        data.write_text('{"Site": [["a"]]}')
        return str(path), str(data)

    def test_observation_shifts_marginals(self, cascade_file):
        program, data = cascade_file
        code, output = run_cli(
            ["posterior", program, "--data", data,
             "--observe", "Alarm,a,1", "-n", "3000", "--seed", "2"])
        assert code == 0
        assert "method likelihood" in output
        line = next(line for line in output.splitlines()
                    if "Trig('a', 1)" in line)
        # P(Trig=1 | Alarm sample = 1) = 3/7.
        assert abs(float(line.split()[0]) - 3 / 7) < 0.05

    def test_json_document_matches_server_contract(self, cascade_file):
        program, data = cascade_file
        code, output = run_cli(
            ["posterior", program, "--data", data, "--json",
             "--observe",
             '{"fact": {"relation": "Trig", "args": ["a", 1]}}',
             "--method", "rejection", "-n", "500", "--seed", "4"])
        assert code == 0
        document = json.loads(output)
        assert document["command"] == "posterior"
        assert document["method"] == "rejection"
        assert document["effective_sample_size"] is None
        entry = next(m for m in document["marginals"]
                     if m["fact"] == {"relation": "Trig",
                                      "args": ["a", 1]})
        assert entry["probability"] == 1.0

    def test_bad_observe_spec_is_usage_error(self, cascade_file):
        program, data = cascade_file
        code, _output = run_cli(
            ["posterior", program, "--data", data, "--observe", "Trig"])
        assert code == 2
