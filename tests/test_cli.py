"""Tests for the command-line interface (repro.cli)."""

import io
import json

import pytest

from repro.cli import main
from repro.io import save_instance_csv, save_program
from repro.pdb.instances import Instance
from repro.workloads import paper


@pytest.fixture
def g0_file(tmp_path):
    path = tmp_path / "g0.gdl"
    save_program(paper.example_1_1_g0(), path)
    return str(path)


@pytest.fixture
def earthquake_files(tmp_path):
    program_path = tmp_path / "quake.gdl"
    program_path.write_text(paper.EARTHQUAKE_PROGRAM_TEXT)
    data = save_instance_csv(paper.example_3_4_instance(), tmp_path)
    specs = [f"{relation}={path}" for relation, path in data.items()]
    return str(program_path), specs


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestExactCommand:
    def test_g0_worlds(self, g0_file):
        code, output = run_cli(["exact", g0_file])
        assert code == 0
        assert "# 3 worlds" in output
        assert "0.50000000" in output and "0.25000000" in output

    def test_barany_semantics_flag(self, g0_file):
        code, output = run_cli(["exact", g0_file,
                                "--semantics", "barany"])
        assert code == 0
        assert "# 2 worlds" in output

    def test_parallel_flag(self, g0_file):
        code, output = run_cli(["exact", g0_file, "--parallel"])
        assert code == 0
        assert "# 3 worlds" in output

    def test_top_limits_output(self, g0_file):
        code, output = run_cli(["exact", g0_file, "--top", "1"])
        assert code == 0
        assert "more worlds" in output

    def test_with_data(self, earthquake_files):
        program, specs = earthquake_files
        argv = ["exact", program]
        for spec in specs:
            argv += ["--data", spec]
        code, output = run_cli(argv)
        assert code == 0
        assert "err" in output


class TestSampleCommand:
    def test_marginals_printed(self, earthquake_files):
        program, specs = earthquake_files
        argv = ["sample", program, "-n", "500", "--seed", "1"]
        for spec in specs:
            argv += ["--data", spec]
        code, output = run_cli(argv)
        assert code == 0
        assert "Alarm('house-1')" in output
        assert "500 terminated runs" in output

    def test_deterministic_given_seed(self, g0_file):
        _, first = run_cli(["sample", g0_file, "-n", "200",
                            "--seed", "9"])
        _, second = run_cli(["sample", g0_file, "-n", "200",
                             "--seed", "9"])
        assert first == second


class TestAnalyzeCommand:
    def test_weakly_acyclic_report(self, earthquake_files):
        program, _ = earthquake_files
        code, output = run_cli(["analyze", program])
        assert code == 0
        assert "weakly acyclic:   True" in output
        assert "Theorem 6.3" in output

    def test_continuous_cycle_report(self, tmp_path):
        path = tmp_path / "loop.gdl"
        save_program(paper.continuous_feedback_program(), path)
        code, output = run_cli(["analyze", str(path)])
        assert code == 0
        assert "weakly acyclic:   False" in output
        assert "almost surely non-terminating" in output

    def test_discrete_cycle_report(self, tmp_path):
        path = tmp_path / "cycle.gdl"
        save_program(paper.discrete_cycle_program(), path)
        code, output = run_cli(["analyze", str(path)])
        assert code == 0
        assert "discrete" in output and "may terminate" in output


class TestTranslateCommand:
    def test_shows_existential_rules(self, g0_file):
        code, output = run_cli(["translate", g0_file])
        assert code == 0
        assert "Result#" in output and "∃y" in output

    def test_barany_translation(self, g0_file):
        code, output = run_cli(["translate", g0_file,
                                "--semantics", "barany"])
        assert code == 0
        assert "Sample#Flip" in output


class TestJsonOutput:
    def test_exact_json(self, g0_file):
        code, output = run_cli(["exact", g0_file, "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["command"] == "exact"
        assert payload["n_worlds"] == 3
        assert payload["total_mass"] == pytest.approx(1.0)
        assert payload["err_mass"] == pytest.approx(0.0)
        probabilities = sorted(world["probability"]
                               for world in payload["worlds"])
        assert probabilities == pytest.approx([0.25, 0.25, 0.5])

    def test_sample_json(self, g0_file):
        code, output = run_cli(["sample", g0_file, "-n", "400",
                                "--seed", "3", "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["command"] == "sample"
        assert payload["n_runs"] == 400
        assert payload["n_truncated"] == 0
        marginals = {(entry["fact"]["relation"],
                      tuple(entry["fact"]["args"])):
                     entry["probability"]
                     for entry in payload["marginals"]}
        assert abs(marginals[("R", (1,))] - 0.75) < 0.1

    def test_sample_json_matches_text_marginals(self, g0_file):
        code, text_output = run_cli(["sample", g0_file, "-n", "300",
                                     "--seed", "5"])
        assert code == 0
        code, json_output = run_cli(["sample", g0_file, "-n", "300",
                                     "--seed", "5", "--json"])
        assert code == 0
        payload = json.loads(json_output)
        for entry in payload["marginals"]:
            formatted = f"{entry['probability']:10.6f}"
            assert formatted in text_output

    def test_analyze_json(self, earthquake_files):
        program, _ = earthquake_files
        code, output = run_cli(["analyze", program, "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["weakly_acyclic"] is True
        assert payload["verdict"] == "terminating"
        assert payload["discrete"] is True

    def test_analyze_json_nonterminating(self, tmp_path):
        path = tmp_path / "loop.gdl"
        save_program(paper.continuous_feedback_program(), path)
        code, output = run_cli(["analyze", str(path), "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["weakly_acyclic"] is False
        assert payload["verdict"] == "almost-surely-non-terminating"

    def test_translate_json(self, g0_file):
        code, output = run_cli(["translate", g0_file, "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["semantics"] == "grohe"
        assert any(name.startswith("Result#")
                   for name in payload["aux_relations"])


class TestFacadeWiring:
    def test_cli_emits_no_deprecation_warnings(self, g0_file):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            code, _ = run_cli(["sample", g0_file, "-n", "50"])
        assert code == 0


class TestErrorPaths:
    def test_missing_file(self):
        code, _ = run_cli(["exact", "/nonexistent/program.gdl"])
        assert code == 2

    def test_parse_error(self, tmp_path):
        path = tmp_path / "bad.gdl"
        path.write_text("R(x :- B(x).")
        code, _ = run_cli(["exact", str(path)])
        assert code == 2

    def test_continuous_exact_rejected(self, tmp_path):
        path = tmp_path / "cont.gdl"
        save_program(paper.example_3_5_program(), path)
        code, _ = run_cli(["exact", str(path)])
        assert code == 2

    def test_bad_data_spec(self, g0_file):
        code, _ = run_cli(["exact", g0_file, "--data", "nonsense"])
        assert code == 2
