"""Backward evidence propagation (:mod:`repro.core.backward`).

The backward pass turns observed evidence into per-draw feasible
regions for the guided sampler.  Soundness only needs the regions to
be *necessary conditions* (over-approximations), so the tests check
three things on the paper's own examples:

* evidence the walker *can* trace yields the expected pin/interval
  region on exactly the right draw key (Examples 3.4 and 3.5);
* evidence it cannot commit to (disjoint derivation scenarios,
  opaque predicates) is dropped conservatively, never tightened;
* evidence no derivation can reach at all flips ``satisfiable`` off,
  and the session surfaces it as a :class:`MeasureError`.
"""

from __future__ import annotations

import math

import pytest

import repro
from repro.core.backward import BackwardPlan, backward_plan
from repro.core.observe import observe
from repro.engine.batched import BatchedChase
from repro.errors import MeasureError
from repro.pdb.events import (AtLeastEvent, ContainsFactEvent, Equals,
                              FactSet, Interval, PredicateEvent)
from repro.pdb.facts import Fact
from repro.workloads.paper import (EARTHQUAKE_PROGRAM_TEXT,
                                   HEIGHT_PROGRAM_TEXT,
                                   discrete_cycle_program,
                                   example_3_4_instance,
                                   example_3_5_instance,
                                   trigger_instance)

_INF = float("inf")


def _plan(program, instance, observations=(), events=()):
    """Build a plan the way ``Session._posterior_guided`` does."""
    compiled = repro.compile(program)
    batched = BatchedChase(compiled.translated, instance)
    return backward_plan(compiled.translated, batched.closed_source,
                         batched.growable, observations, events)


# ---------------------------------------------------------------------------
# Example 3.4 (earthquake): discrete pin sets
# ---------------------------------------------------------------------------

class TestEarthquakePins:

    def test_earthquake_fact_pins_the_flip(self):
        """Earthquake(Napa, 1) pins exactly the Napa quake draw to 1."""
        plan = _plan(EARTHQUAKE_PROGRAM_TEXT, example_3_4_instance(),
                     events=[ContainsFactEvent(
                         Fact("Earthquake", ("Napa", 1)))])
        assert plan.satisfiable
        assert not plan.given_up
        assert len(plan.event_regions) == 1
        ((aux, prefix), region), = plan.event_regions.items()
        assert aux.startswith("Result#")
        assert prefix == ("Napa", 0.1)  # carried city + Flip param
        assert region.single_point() == (1,)
        assert plan.n_pinned == 1 and plan.n_truncated == 0

    def test_disjoint_scenarios_stay_conservative(self):
        """Alarm(house-1) has two derivations (quake / burglary path)
        touching *different* draws - no single draw is necessary, so
        the walker must not constrain any of them."""
        plan = _plan(EARTHQUAKE_PROGRAM_TEXT, example_3_4_instance(),
                     events=[ContainsFactEvent(
                         Fact("Alarm", ("house-1",)))])
        assert plan.satisfiable
        assert plan.event_regions == {}

    def test_opaque_predicate_gives_up_with_a_note(self):
        plan = _plan(EARTHQUAKE_PROGRAM_TEXT, example_3_4_instance(),
                     events=[PredicateEvent(
                         lambda inst: len(inst) > 3, "big")])
        assert plan.satisfiable
        assert plan.event_regions == {}
        assert plan.given_up  # conservative weakening is recorded


# ---------------------------------------------------------------------------
# Example 3.5 (heights): continuous intervals and observation pins
# ---------------------------------------------------------------------------

class TestHeightRegions:

    def test_interval_evidence_truncates_the_normal(self):
        """PHeight(nl-p0) ≥ 190 becomes an interval region on exactly
        that person's Normal draw."""
        plan = _plan(HEIGHT_PROGRAM_TEXT, example_3_5_instance(),
                     events=[AtLeastEvent(
                         FactSet("PHeight", Equals("nl-p0"),
                                 Interval(190.0, _INF)), 1)])
        assert plan.satisfiable
        assert len(plan.event_regions) == 1
        ((aux, prefix), region), = plan.event_regions.items()
        assert prefix == ("nl-p0", 183.8, 49.0)  # person + Normal θ
        assert region.points == ()
        (low, high, closed_left, _cr), = region.intervals
        assert low == 190.0 and high == _INF and closed_left
        assert plan.n_truncated == 1 and plan.n_pinned == 0

    def test_observation_becomes_a_point_pin(self):
        plan = _plan(HEIGHT_PROGRAM_TEXT, example_3_5_instance(),
                     observations=[observe("PHeight", "pe-p1", 172.5)])
        assert plan.satisfiable
        assert plan.event_regions == {}
        (key, region), = plan.pin_regions.items()
        assert key[1] == ("pe-p1",)  # carried-values key (observe.py)
        assert region.single_point() == (172.5,)

    def test_clashing_evidence_is_unsatisfiable(self):
        """Height both below 150 and above 190 - empty intersection."""
        tall = AtLeastEvent(FactSet("PHeight", Equals("nl-p0"),
                                    Interval(190.0, _INF)), 1)
        short = AtLeastEvent(FactSet("PHeight", Equals("nl-p0"),
                                     Interval(-_INF, 150.0)), 1)
        plan = _plan(HEIGHT_PROGRAM_TEXT, example_3_5_instance(),
                     events=[tall, short])
        assert not plan.satisfiable


# ---------------------------------------------------------------------------
# Unreachable evidence and the session surface
# ---------------------------------------------------------------------------

class TestUnreachable:

    def test_unmatched_stable_fact_is_unsatisfiable(self):
        plan = _plan(EARTHQUAKE_PROGRAM_TEXT, example_3_4_instance(),
                     events=[ContainsFactEvent(
                         Fact("City", ("Atlantis", 0.5)))])
        assert not plan.satisfiable

    def test_session_raises_measure_error_on_unreachable(self):
        session = repro.compile(EARTHQUAKE_PROGRAM_TEXT) \
            .on(example_3_4_instance()) \
            .observe(ContainsFactEvent(Fact("City", ("Atlantis", 0.5))))
        with pytest.raises(MeasureError, match="unreachable"):
            session.posterior(method="guided", n=64, seed=3)

    def test_guided_posterior_matches_pinned_region(self):
        """End to end: guided conditioning on Earthquake(Napa, 1)
        forces the pinned draw in every world and weights each world
        by the pin's prior mass."""
        session = repro.compile(EARTHQUAKE_PROGRAM_TEXT) \
            .on(example_3_4_instance()) \
            .observe(ContainsFactEvent(Fact("Earthquake", ("Napa", 1))))
        result = session.posterior(method="guided", n=128, seed=5)
        assert result.diagnostics["backend"] == "guided"
        assert result.diagnostics["acceptance_rate"] == 1.0
        assert result.pdb.marginal(Fact("Earthquake", ("Napa", 1))) \
            == pytest.approx(1.0)
        # every world proposes the rare draw directly; the weight is
        # the pin's prior probability, identical across worlds
        assert result.diagnostics["mean_weight"] > 0.0
        assert result.diagnostics["effective_sample_size"] \
            == pytest.approx(128.0)


# ---------------------------------------------------------------------------
# Fallbacks: programs the guided engine cannot batch
# ---------------------------------------------------------------------------

class TestFallbacks:

    def test_cyclic_program_falls_back_to_likelihood(self):
        """The discrete cycle is not weakly acyclic - no batched
        engine, so guided observation evidence degrades to likelihood
        weighting and says so in the diagnostics."""
        session = repro.compile(discrete_cycle_program()) \
            .on(trigger_instance()) \
            .observe(observe("Chain", 0, 1))
        result = session.posterior(method="guided", n=64, seed=7)
        assert result.kind == "likelihood"
        assert result.diagnostics["fallback"] == "likelihood"
        assert "fallback_reason" in result.diagnostics

    def test_given_up_events_still_sample_exactly(self):
        """A conservative give-up must not bias the posterior: the
        opaque predicate is enforced by post-hoc masking, so the
        guided result agrees with plain rejection."""
        predicate = PredicateEvent(
            lambda inst: Fact("Alarm", ("house-1",)) in inst,
            "alarm-up")
        base = repro.compile(EARTHQUAKE_PROGRAM_TEXT) \
            .on(example_3_4_instance())
        guided = base.observe(predicate).posterior(
            method="guided", n=4000, seed=11)
        rejection = base.observe(predicate).posterior(
            method="rejection", n=4000, seed=13)
        assert guided.diagnostics.get("given_up") or \
            guided.diagnostics.get("n_guided_draws", 0) == 0
        g = guided.pdb.marginal(Fact("Earthquake", ("Napa", 1)))
        r = rejection.pdb.marginal(Fact("Earthquake", ("Napa", 1)))
        assert abs(g - r) < 0.08

    def test_plan_defaults(self):
        plan = BackwardPlan()
        assert plan.satisfiable and plan.regions == {}
        assert plan.n_pinned == 0 and plan.n_truncated == 0
