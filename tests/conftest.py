"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.workloads import paper


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator; tests needing other seeds build their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def g0():
    return paper.example_1_1_g0()


@pytest.fixture
def g0_prime():
    return paper.example_1_1_g0_prime()


@pytest.fixture
def program_h():
    return paper.section_6_2_h()


@pytest.fixture
def program_h_prime():
    return paper.section_6_2_h_prime()


@pytest.fixture
def earthquake_program():
    return paper.example_3_4_program()


@pytest.fixture
def earthquake_instance():
    return paper.example_3_4_instance()


@pytest.fixture
def heights_program():
    return paper.example_3_5_program()


@pytest.fixture
def heights_instance():
    return paper.example_3_5_instance(persons_per_country=2)


@pytest.fixture
def small_instance() -> Instance:
    return Instance.of(Fact("R", (1, "a")), Fact("R", (2, "b")),
                       Fact("S", (1,)))


def assert_measures_close(actual: dict, expected: dict,
                          tolerance: float = 1e-9) -> None:
    """Compare instance->probability dictionaries pointwise."""
    keys = set(actual) | set(expected)
    for key in keys:
        a = actual.get(key, 0.0)
        e = expected.get(key, 0.0)
        assert abs(a - e) <= tolerance, \
            f"mass mismatch at {key!r}: {a} vs {e}"
