"""Tests for PDB statistics (repro.pdb.stats)."""

import math

import pytest

from repro.core.semantics import exact_spdb, sample_spdb
from repro.errors import MeasureError
from repro.measures.discrete import DiscreteMeasure
from repro.pdb.database import DiscretePDB, MonteCarloPDB
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.pdb.stats import (expected_size, fact_marginals, map_world,
                             relation_summary, size_distribution,
                             summarize_pdb, world_entropy)


def world(*values):
    return Instance(Fact("R", (v,)) for v in values)


@pytest.fixture
def flip_pdb(g0):
    return exact_spdb(g0)


class TestWorldEntropy:
    def test_g0_entropy(self, flip_pdb):
        # Outcomes 1/4, 1/4, 1/2 -> 1.5 bits.
        assert world_entropy(flip_pdb) == pytest.approx(1.5)

    def test_dirac_zero_entropy(self):
        pdb = DiscretePDB.deterministic(world(1))
        assert world_entropy(pdb) == pytest.approx(0.0)

    def test_err_counts_as_outcome(self):
        pdb = DiscretePDB(DiscreteMeasure({world(1): 0.5}), err=0.5)
        assert world_entropy(pdb) == pytest.approx(1.0)

    def test_natural_log_base(self, flip_pdb):
        assert world_entropy(flip_pdb, base=math.e) == \
            pytest.approx(1.5 * math.log(2))


class TestMapWorld:
    def test_g0_map(self, flip_pdb):
        best, probability = map_world(flip_pdb)
        assert probability == pytest.approx(0.5)
        assert best == world(0, 1)

    def test_tie_breaking_deterministic(self):
        pdb = DiscretePDB(DiscreteMeasure(
            {world(0): 0.5, world(1): 0.5}))
        assert map_world(pdb) == map_world(pdb)

    def test_empty_rejected(self):
        pdb = DiscretePDB(DiscreteMeasure.zero(), err=1.0)
        with pytest.raises(MeasureError):
            map_world(pdb)


class TestSizesAndMarginals:
    def test_expected_size(self, flip_pdb):
        assert expected_size(flip_pdb) == pytest.approx(1.5)

    def test_size_distribution(self, flip_pdb):
        sizes = size_distribution(flip_pdb)
        assert sizes.mass(1) == pytest.approx(0.5)
        assert sizes.mass(2) == pytest.approx(0.5)

    def test_fact_marginals_exact(self, flip_pdb):
        marginals = fact_marginals(flip_pdb)
        assert marginals[Fact("R", (0,))] == pytest.approx(0.75)
        assert marginals[Fact("R", (1,))] == pytest.approx(0.75)

    def test_fact_marginals_relation_filter(self, program_h):
        pdb = exact_spdb(program_h)
        marginals = fact_marginals(pdb, relations=("R",))
        assert all(f.relation == "R" for f in marginals)

    def test_fact_marginals_monte_carlo(self, g0):
        pdb = sample_spdb(g0, n=3000, rng=0)
        marginals = fact_marginals(pdb)
        assert abs(marginals[Fact("R", (1,))] - 0.75) < 0.04


class TestRelationSummary:
    def test_summary_fields(self, flip_pdb):
        summary = relation_summary(flip_pdb, "R")
        assert summary.relation == "R"
        assert summary.expected_cardinality == pytest.approx(1.5)
        assert summary.min_cardinality == 1
        assert summary.max_cardinality == 2
        assert summary.certain_facts == 0

    def test_certain_facts_counted(self):
        program_output = DiscretePDB(DiscreteMeasure({
            Instance.of(Fact("A", (1,)), Fact("B", (1,))): 0.5,
            Instance.of(Fact("A", (1,))): 0.5,
        }))
        summary = relation_summary(program_output, "A")
        assert summary.certain_facts == 1
        summary = relation_summary(program_output, "B")
        assert summary.certain_facts == 0

    def test_monte_carlo_summary(self, g0):
        pdb = sample_spdb(g0, n=500, rng=1)
        summary = relation_summary(pdb, "R")
        assert 1 <= summary.min_cardinality <= \
            summary.max_cardinality <= 2


class TestSummarizePdb:
    def test_exact_summary_text(self, flip_pdb):
        text = summarize_pdb(flip_pdb)
        assert "3 worlds" in text
        assert "entropy" in text and "MAP world" in text

    def test_monte_carlo_summary_text(self, g0):
        pdb = sample_spdb(g0, n=100, rng=2)
        text = summarize_pdb(pdb)
        assert "Monte-Carlo PDB" in text
        assert "expected size" in text
