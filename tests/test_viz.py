"""Tests for tree/graph renderings (repro.viz)."""

import pytest

from repro.core.exact import enumerate_chase_tree
from repro.core.program import Program
from repro.core.translate import translate
from repro.viz import (chase_tree_to_dot, format_chase_tree,
                       position_graph_to_dot)
from repro.workloads import paper


@pytest.fixture
def flip_tree():
    return enumerate_chase_tree(Program.parse("R(Flip<0.5>) :- true."))


class TestFormatChaseTree:
    def test_contains_probabilities_and_leaves(self, flip_tree):
        text = format_chase_tree(flip_tree)
        assert "p=1.000000" in text
        assert "p=0.500000" in text
        assert "[leaf]" in text

    def test_shows_added_facts(self, flip_tree):
        text = format_chase_tree(flip_tree)
        assert "R(0)" in text and "R(1)" in text

    def test_truncation_marker(self):
        tree = enumerate_chase_tree(
            paper.discrete_cycle_program(1.0), paper.trigger_instance(),
            max_depth=2, tolerance=1e-3)
        assert "[truncated -> err]" in format_chase_tree(tree)

    def test_node_cap(self, flip_tree):
        text = format_chase_tree(flip_tree, max_nodes=2)
        assert "capped" in text


class TestChaseTreeDot:
    def test_valid_dot_structure(self, flip_tree):
        dot = chase_tree_to_dot(flip_tree)
        assert dot.startswith("digraph chase_tree {")
        assert dot.rstrip().endswith("}")
        assert "doublecircle" in dot  # leaves
        assert "->" in dot

    def test_branch_ratio_labels(self, flip_tree):
        dot = chase_tree_to_dot(flip_tree)
        assert "0.5" in dot

    def test_truncated_nodes_shaded(self):
        tree = enumerate_chase_tree(
            paper.discrete_cycle_program(1.0), paper.trigger_instance(),
            max_depth=2, tolerance=1e-3)
        assert "gray70" in chase_tree_to_dot(tree)


class TestPositionGraphDot:
    def test_special_edges_dashed(self):
        translated = translate(paper.continuous_feedback_program())
        dot = position_graph_to_dot(translated)
        assert "style=dashed" in dot
        assert "Result#" in dot

    def test_deterministic_program_no_dashed(self):
        translated = translate(Program.parse("A(x) :- B(x)."))
        dot = position_graph_to_dot(translated)
        assert "style=dashed" not in dot
        assert '"A.0"' in dot and '"B.0"' in dot

    def test_quotes_escaped(self, flip_tree):
        # instance tooltips contain quotes; they must be escaped
        dot = chase_tree_to_dot(flip_tree)
        assert 'tooltip="' in dot
