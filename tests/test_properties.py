"""Program-level property-based tests (hypothesis).

Each property quantifies over randomly generated weakly-acyclic
discrete programs and inputs, checking the paper's structural
invariants: mass conservation, chase independence, FD preservation,
engine agreement, projection/monotonicity laws.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.applicability import (IncrementalApplicability,
                                      NaiveApplicability)
from repro.core.chase import fire, run_chase
from repro.core.exact import exact_parallel_spdb, exact_sequential_spdb
from repro.core.fd import check_all_fds
from repro.core.policies import (FirstPolicy, LastPolicy,
                                 RandomTiePolicy)
from repro.core.semantics import sample_spdb
from repro.core.translate import translate
from repro.workloads.generators import (base_instance,
                                        random_discrete_program)

programs = st.builds(random_discrete_program,
                     n_base_rules=st.integers(1, 3),
                     n_derived_rules=st.integers(0, 3),
                     seed=st.integers(0, 500))
inputs = st.integers(1, 3).map(base_instance)


class TestMassConservation:
    @given(programs, inputs)
    @settings(max_examples=20, deadline=None)
    def test_exact_spdb_is_probability(self, program, instance):
        pdb = exact_sequential_spdb(program, instance)
        assert pdb.total_mass() + pdb.err_mass() == \
            pytest.approx(1.0, abs=1e-6)
        assert pdb.err_mass() == pytest.approx(0.0, abs=1e-9)

    @given(programs, inputs)
    @settings(max_examples=10, deadline=None)
    def test_parallel_mass(self, program, instance):
        pdb = exact_parallel_spdb(program, instance)
        assert pdb.total_mass() == pytest.approx(1.0, abs=1e-6)


class TestChaseIndependenceProperty:
    @given(programs, inputs, st.integers(0, 10))
    @settings(max_examples=15, deadline=None)
    def test_policies_agree(self, program, instance, salt):
        reference = exact_sequential_spdb(program, instance)
        for policy in (LastPolicy(), RandomTiePolicy(salt)):
            assert exact_sequential_spdb(
                program, instance, policy=policy).allclose(reference)

    @given(programs, inputs)
    @settings(max_examples=10, deadline=None)
    def test_parallel_agrees(self, program, instance):
        sequential = exact_sequential_spdb(program, instance)
        parallel = exact_parallel_spdb(program, instance)
        assert parallel.allclose(sequential)


class TestChaseInvariants:
    @given(programs, inputs, st.integers(0, 99))
    @settings(max_examples=20, deadline=None)
    def test_fd_and_termination(self, program, instance, seed):
        translated = translate(program)
        run = run_chase(translated, instance, rng=seed, max_steps=5000)
        assert run.terminated  # generator emits weakly-acyclic programs
        assert check_all_fds(translated, run.instance)
        assert instance.issubset(run.instance)

    @given(programs, inputs, st.integers(0, 99))
    @settings(max_examples=10, deadline=None)
    def test_engines_agree_along_chase(self, program, instance, seed):
        translated = translate(program)
        incremental = IncrementalApplicability(translated, instance)
        naive = NaiveApplicability(translated, instance)
        rng = np.random.default_rng(seed)
        for _ in range(200):
            a, b = incremental.applicable(), naive.applicable()
            assert a == b
            if not a:
                return
            new_fact = fire(translated, a[0], rng)
            incremental.add_fact(new_fact)
            naive.add_fact(new_fact)
        pytest.fail("chase exceeded 200 steps")


class TestSamplingConsistency:
    @given(programs)
    @settings(max_examples=5, deadline=None)
    def test_monte_carlo_approaches_exact(self, program):
        instance = base_instance(1)
        exact = exact_sequential_spdb(program, instance)
        sampled = sample_spdb(program, instance, n=1500, rng=0)
        # Compare the three most likely worlds (tolerance ~ 4σ).
        top = sorted(exact.worlds(), key=lambda wp: -wp[1])[:3]
        for world, probability in top:
            estimate = sampled.prob(lambda D, w=world: D == w)
            sigma = max((probability * (1 - probability)
                         / 1500) ** 0.5, 1e-3)
            assert abs(estimate - probability) < 5 * sigma


class TestProjectionLaws:
    @given(programs, inputs)
    @settings(max_examples=10, deadline=None)
    def test_keep_aux_projects_to_plain(self, program, instance):
        translated = translate(program)
        full = exact_sequential_spdb(translated, instance,
                                     keep_aux=True)
        plain = exact_sequential_spdb(translated, instance)
        assert full.project(translated.visible_relations()) \
            .allclose(plain)

    @given(programs, inputs)
    @settings(max_examples=10, deadline=None)
    def test_input_preserved_in_worlds(self, program, instance):
        pdb = exact_sequential_spdb(program, instance)
        for world, _ in pdb.worlds():
            assert instance.issubset(world)
