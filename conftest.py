"""Repository-level pytest configuration.

Registers the :mod:`repro.testing.pytest_plugin` plugin, which adds
the ``--fuzz-budget`` / ``--fuzz-seed`` options and fixtures consumed
by ``tests/test_fuzz.py`` (the per-run differential-fuzz pass) and
``tests/test_fuzz_corpus.py`` (replay of persisted reproducers).
"""

pytest_plugins = ("repro.testing.pytest_plugin",)
