"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot run PEP 517
editable installs; this shim enables ``pip install -e . --no-use-pep517``
(and plain ``python setup.py develop``).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
