#!/usr/bin/env python3
"""Section 6.3: termination behaviour of GDatalog programs.

Demonstrates the full termination toolbox through the facade:

* static analysis - weak acyclicity of the translated program
  (Theorem 6.3), with cycle classification by distribution kind,
  served from the compiled program's cached report;
* the paper's almost-sure non-termination argument for continuous
  special cycles, checked empirically;
* a genuinely non-weakly-acyclic *discrete* cycle (Poisson feedback)
  that is nonetheless almost surely terminating - the open class the
  paper defers to future work;
* Figure-1 style mass accounting (``session.mass_report``): how
  probability mass splits between instances (finite chase paths) and
  ``err`` (truncated paths) as the depth budget grows.

Run:  python examples/termination_analysis.py
"""

import repro
from repro.core import estimate_termination_probability
from repro.workloads import paper


def static_section() -> None:
    print("Static analysis (weak acyclicity, Theorem 6.3):")
    cases = [
        ("G0 (Ex. 1.1)", paper.example_1_1_g0()),
        ("earthquake (Ex. 3.4)", paper.example_3_4_program()),
        ("heights (Ex. 3.5)", paper.example_3_5_program()),
        ("continuous feedback", paper.continuous_feedback_program()),
        ("discrete Poisson cycle", paper.discrete_cycle_program()),
        ("Flip walk (finite chain)", paper.discrete_feedback_program()),
    ]
    for name, program in cases:
        report = repro.compile(program).analyze()
        print(f"  {name:26s} -> {report!r}")


def empirical_section() -> None:
    print("\nEmpirical termination probabilities:")
    continuous = paper.continuous_feedback_program()
    estimate = estimate_termination_probability(
        continuous, repro.Instance.of(repro.Fact("Seed", (0,))),
        n_runs=50, max_steps=500, rng=0)
    print(f"  continuous cycle: P(terminate within 500 steps) = "
          f"{estimate.probability:.3f}   (paper: a.s. non-terminating)")

    discrete = paper.discrete_cycle_program(1.0)
    for budget in (10, 50, 2000):
        estimate = estimate_termination_probability(
            discrete, paper.trigger_instance(), n_runs=300,
            max_steps=budget, rng=1)
        print(f"  discrete Poisson cycle: P(terminate within "
              f"{budget:4d} steps) = {estimate.probability:.3f}")
    print("  -> converges to 1: almost surely terminating, but not "
          "weakly acyclic (the class the paper leaves open).")


def mass_accounting_section() -> None:
    print("\nFigure-1 mass accounting (instance mass vs err mass):")
    print("  Terminating program (G0):")
    g0_session = repro.compile(paper.example_1_1_g0()).on()
    for report in g0_session.mass_report(budgets=(1, 2, 3, 4, 8)):
        print(f"    depth {report.budget:2d}: instances "
              f"{report.instance_mass:.4f}  err {report.err_mass:.4f}")
    print("  Discrete Poisson cycle (non-terminating tail):")
    cycle_session = repro.compile(
        paper.discrete_cycle_program(1.0)).on(
        paper.trigger_instance(), tolerance=1e-6)
    for report in cycle_session.mass_report(budgets=(2, 4, 8, 16)):
        print(f"    depth {report.budget:2d}: instances "
              f"{report.instance_mass:.4f}  err {report.err_mass:.4f}")
    print("  -> err mass shrinks with the budget but never quite "
          "reaches 0: mass of long chases.")


def main() -> None:
    static_section()
    empirical_section()
    mass_accounting_section()


if __name__ == "__main__":
    main()
