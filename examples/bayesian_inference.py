#!/usr/bin/env python3
"""Conditioning extension: Bayesian inference over GDatalog programs.

The paper reproduces only PPDL's *generative* component and flags
conditioning as delicate future work (§7).  This example shows the
reproduction's extension layer doing inference three ways:

1. **exact conditioning** (discrete): posterior diagnosis in the
   earthquake model after observing the alarm;
2. **rejection sampling**: the same posterior from samples, plus a
   continuous "thick" event (interval observation);
3. **likelihood weighting**: conditioning on *sample values* - sound
   even for continuous measure-zero observations, reproducing the
   textbook Normal-Normal conjugate update through the chase.

Run:  python examples/bayesian_inference.py
"""

import repro
from repro.core.constraints import (ConstrainedProgram,
                                    condition_by_rejection)
from repro.core.observe import likelihood_weighting, observe
from repro.pdb.events import ContainsFactEvent, CountingEvent, \
    FactSet, Interval
from repro.workloads import paper


def diagnosis_section() -> None:
    program = paper.example_3_4_program()
    instance = paper.example_3_4_instance(
        cities={"Napa": 0.03}, houses={"h": "Napa"}, businesses={})
    alarm = ContainsFactEvent(repro.Fact("Alarm", ("h",)))
    package = ConstrainedProgram(program, [alarm])

    prior = package.prior(instance)
    posterior = package.exact(instance)
    print("Diagnosis after observing Alarm(h):")
    for label, args in [("Burglary(h)", ("h", "Napa", 1)),
                        ]:
        f = repro.Fact("Burglary", args)
        print(f"  P({label})           prior {prior.marginal(f):.4f}"
              f"   posterior {posterior.marginal(f):.4f}")
    quake = repro.Fact("Earthquake", ("Napa", 1))
    print(f"  P(Earthquake(Napa))  prior {prior.marginal(quake):.4f}"
          f"   posterior {posterior.marginal(quake):.4f}")

    sampled = package.sample(instance, n=20_000, rng=0)
    estimate = sampled.posterior.marginal(
        repro.Fact("Burglary", ("h", "Napa", 1)))
    print(f"  rejection sampling posterior (n=20k, acceptance "
          f"{sampled.acceptance_rate:.3f}): {estimate:.4f}")


def thick_event_section() -> None:
    program = repro.Program.parse("""
        Temp(s, Normal<20, 9>) :- Sensor(s).
    """)
    instance = repro.Instance.of(repro.Fact("Sensor", ("t1",)))
    hot = CountingEvent(FactSet("Temp", None, Interval(low=23.0)), 1)
    result = condition_by_rejection(program, instance, [hot],
                                    n=10_000, rng=1)
    values = result.posterior.values_of(
        lambda D: [f.args[1] for f in D.facts_of("Temp")])
    from repro.measures import summarize
    summary = summarize(values)
    print(f"\nConditioning on the thick event Temp >= 23 "
          f"(P ≈ {result.acceptance_rate:.3f}):")
    print(f"  E[Temp | Temp >= 23] = {summary.mean:.2f} "
          f"(truncated-normal mean 20 + 3·φ(1)/(1−Φ(1)) ≈ 24.57)")


def conjugate_section() -> None:
    program = repro.Program.parse("""
        Mu(Normal<0, 1>) :- true.
        X(Normal<m, 1>)  :- Mu(m).
    """)
    print("\nLikelihood weighting on the measure-zero observation "
          "X = 2.0:")
    result = likelihood_weighting(program, None, [observe("X", 2.0)],
                                  n=20_000, rng=2)
    mean = result.posterior.weighted_mean(
        lambda D: [f.args[0] for f in D.facts_of("Mu")])
    second = result.posterior.expectation(
        lambda D: next(iter(D.facts_of("Mu"))).args[0] ** 2)
    print(f"  posterior mean(Mu) = {mean:.4f}    (analytic: 1.0)")
    print(f"  posterior var(Mu)  = {second - mean**2:.4f}  "
          f"(analytic: 0.5)")
    print(f"  effective sample size: "
          f"{result.effective_sample_size:.0f} / {result.n_runs}")


def main() -> None:
    diagnosis_section()
    thick_event_section()
    conjugate_section()


if __name__ == "__main__":
    main()
