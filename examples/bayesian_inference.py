#!/usr/bin/env python3
"""Conditioning extension: Bayesian inference over GDatalog programs.

The paper reproduces only PPDL's *generative* component and flags
conditioning as delicate future work (§7).  This example shows the
facade's fluent conditioning surface doing inference three ways:

1. **exact conditioning** (discrete): posterior diagnosis in the
   earthquake model after observing the alarm -
   ``session.observe(event).posterior(method="exact")``;
2. **rejection sampling**: the same posterior from samples, plus a
   continuous "thick" event (interval observation) -
   ``method="rejection"``;
3. **likelihood weighting**: conditioning on *sample values* - sound
   even for continuous measure-zero observations, reproducing the
   textbook Normal-Normal conjugate update through the chase -
   ``method="likelihood"``.

Run:  python examples/bayesian_inference.py
"""

import repro
from repro.pdb.events import ContainsFactEvent, CountingEvent, \
    FactSet, Interval
from repro.workloads import paper


def diagnosis_section() -> None:
    compiled = repro.compile(paper.example_3_4_program())
    instance = paper.example_3_4_instance(
        cities={"Napa": 0.03}, houses={"h": "Napa"}, businesses={})
    alarm = ContainsFactEvent(repro.Fact("Alarm", ("h",)))
    session = compiled.on(instance)
    observed = session.observe(alarm)

    prior = session.exact()
    posterior = observed.posterior(method="exact")
    print("Diagnosis after observing Alarm(h):")
    burglary = repro.Fact("Burglary", ("h", "Napa", 1))
    print(f"  P(Burglary(h))           "
          f"prior {prior.marginal(burglary):.4f}"
          f"   posterior {posterior.marginal(burglary):.4f}")
    quake = repro.Fact("Earthquake", ("Napa", 1))
    print(f"  P(Earthquake(Napa))  prior {prior.marginal(quake):.4f}"
          f"   posterior {posterior.marginal(quake):.4f}")

    sampled = compiled.on(instance, seed=0).observe(alarm).posterior(
        method="rejection", n=20_000)
    estimate = sampled.marginal(burglary)
    print(f"  rejection sampling posterior (n=20k, acceptance "
          f"{sampled.diagnostics['acceptance_rate']:.3f}): "
          f"{estimate:.4f}")


def thick_event_section() -> None:
    compiled = repro.compile("""
        Temp(s, Normal<20, 9>) :- Sensor(s).
    """)
    instance = repro.Instance.of(repro.Fact("Sensor", ("t1",)))
    hot = CountingEvent(FactSet("Temp", None, Interval(low=23.0)), 1)
    result = compiled.on(instance, seed=1).observe(hot).posterior(
        method="rejection", n=10_000)
    values = result.pdb.values_of(
        lambda D: [f.args[1] for f in D.facts_of("Temp")])
    from repro.measures import summarize
    summary = summarize(values)
    print(f"\nConditioning on the thick event Temp >= 23 "
          f"(P ≈ {result.diagnostics['acceptance_rate']:.3f}):")
    print(f"  E[Temp | Temp >= 23] = {summary.mean:.2f} "
          f"(truncated-normal mean 20 + 3·φ(1)/(1−Φ(1)) ≈ 24.57)")


def conjugate_section() -> None:
    compiled = repro.compile("""
        Mu(Normal<0, 1>) :- true.
        X(Normal<m, 1>)  :- Mu(m).
    """)
    print("\nLikelihood weighting on the measure-zero observation "
          "X = 2.0:")
    result = compiled.on(seed=2).observe(
        repro.observe("X", 2.0)).posterior(method="likelihood",
                                           n=20_000)
    mean = result.pdb.weighted_mean(
        lambda D: [f.args[0] for f in D.facts_of("Mu")])
    second = result.pdb.expectation(
        lambda D: next(iter(D.facts_of("Mu"))).args[0] ** 2)
    ess = result.diagnostics["effective_sample_size"]
    print(f"  posterior mean(Mu) = {mean:.4f}    (analytic: 1.0)")
    print(f"  posterior var(Mu)  = {second - mean**2:.4f}  "
          f"(analytic: 0.5)")
    print(f"  effective sample size: {ess:.0f} / {result.n_runs}")


def main() -> None:
    diagnosis_section()
    thick_event_section()
    conjugate_section()


if __name__ == "__main__":
    main()
