#!/usr/bin/env python3
"""Example 3.5 and beyond: continuous distributions in GDatalog.

The paper's motivating capability: rule heads sampling from *continuous*
laws.  This script:

* runs Example 3.5 (heights ~ Normal⟨µ, σ²⟩ per country) through a
  compiled session and verifies the sampled populations match the
  prescribed moments and pass a Kolmogorov-Smirnov test against the
  generating Normal;
* builds a noisy-sensor pipeline (the introduction's motivating
  scenario) mixing discrete gating (Flip) with Gaussian measurement
  noise and Exponential lifetimes;
* demonstrates measurable events over continuous values (interval
  conditions, counting events) and aggregate queries on the output PDB.

Run:  python examples/sensor_heights.py
"""

import repro
from repro.distributions import Normal
from repro.measures import ks_critical_value, ks_statistic, summarize
from repro.query.aggregates import Aggregate, agg_avg, agg_count
from repro.query.lifted import expected_aggregate
from repro.query.relalg import scan
from repro.workloads import paper


def heights_section() -> None:
    compiled = repro.compile(paper.example_3_5_program())
    moments = {"NL": (183.8, 49.0), "PE": (165.2, 36.0)}
    instance = paper.example_3_5_instance(moments,
                                          persons_per_country=3)
    print("Example 3.5 program:")
    print(compiled.program.pretty())

    result = compiled.on(instance, seed=0).sample(2000)
    pdb = result.pdb
    print(f"\nSampled {pdb.n_runs} worlds, err mass {pdb.err_mass()} "
          f"({result.elapsed:.2f} s, one translation)")

    normal = Normal()
    for country, (mu, var) in moments.items():
        prefix = country.lower()
        values = pdb.values_of(
            lambda D, p=prefix: [f.args[1] for f in D.facts_of("PHeight")
                                 if f.args[0].startswith(p)])
        summary = summarize(values)
        stat = ks_statistic(values,
                            lambda x, m=mu, v=var:
                            normal.cdf((m, v), x))
        critical = ks_critical_value(summary.n, alpha=0.001)
        verdict = "pass" if stat < critical else "FAIL"
        print(f"  {country}: n={summary.n}  mean {summary.mean:7.2f} "
              f"(target {mu})  var {summary.variance:6.2f} "
              f"(target {var})  KS {stat:.4f} < {critical:.4f} "
              f"[{verdict}]")

    # Aggregate query lifted to the PDB: expected mean height.
    mean_height = Aggregate(scan("PHeight", "p", "cm"), (),
                            {"m": agg_avg("cm")})
    print(f"  E[avg height] = "
          f"{expected_aggregate(pdb, mean_height):.2f} "
          f"(population mean {(183.8 + 165.2) / 2:.2f})")


def sensor_section() -> None:
    compiled = repro.compile("""
        % Each sensor survives an Exponential<lambda> lifetime.
        Lifetime(s, Exponential<0.1>) :- Sensor(s, mu).
        % Sensors emit Gaussian-noise readings around the true value.
        Reading(s, Normal<mu, 2.0>)   :- Sensor(s, mu).
        % A reading is anomalous if drawn while the sensor is flaky.
        Flaky(s, Flip<0.05>)          :- Sensor(s, mu).
        Anomaly(s, Normal<mu, 50.0>)  :- Sensor(s, mu), Flaky(s, 1).
    """)
    instance = repro.Instance.from_dict({
        "Sensor": [("t1", 20.0), ("t2", 22.5), ("t3", 18.0)],
    })
    print(f"\nSensor pipeline: {compiled.analyze()!r}")
    pdb = compiled.on(instance, seed=1).sample(3000).pdb

    # Event probabilities over continuous attributes.
    hot = repro.CountingEvent(
        repro.FactSet("Reading", None, repro.Interval(low=23.0)), 0)
    print(f"  P(no reading above 23.0) = {pdb.prob(hot):.4f}")
    anomalous = repro.FactSet("Anomaly", None, None)
    p_any = pdb.prob(repro.CountingEvent(anomalous, 0))
    print(f"  P(no anomalies at all)   = {p_any:.4f} "
          f"(expected {(0.95 ** 3):.4f})")

    lifetimes = pdb.values_of(
        lambda D: [f.args[1] for f in D.facts_of("Lifetime")])
    summary = summarize(lifetimes)
    print(f"  mean lifetime {summary.mean:.2f} (expected 10.0)")

    readings = Aggregate(scan("Reading", "s", "v"), (),
                         {"n": agg_count()})
    print(f"  E[#readings] = {expected_aggregate(pdb, readings):.2f} "
          f"(always 3)")


def main() -> None:
    heights_section()
    sensor_section()


if __name__ == "__main__":
    main()
