#!/usr/bin/env python3
"""Example 1.1 and Section 6.2: the two semantics, side by side.

Reproduces the paper's semantic-comparison discussion numerically,
compiling each program once per semantics via ``repro.compile``:

* ``G0`` / ``G'0`` / ``Gε`` under both this paper's semantics and the
  original semantics of Bárány et al. [3];
* the ε-sweep showing *continuity* of the new semantics and the
  *discontinuity* of the old one (the paper's core motivation);
* ``H`` vs ``H'`` and the mutual simulation theorems of Section 6.2,
  verified exactly.

Run:  python examples/semantics_comparison.py
"""

import repro
from repro.workloads import paper


def exact(program, semantics="grohe"):
    return repro.compile(program, semantics=semantics).on().exact().pdb


def show(pdb, label):
    worlds = ", ".join(f"{w.canonical_text()}: {p:.4f}"
                       for w, p in pdb.worlds())
    print(f"  {label:22s} {worlds}")


def example_1_1_section() -> None:
    print("Example 1.1 - G0 (two identical Flip<1/2> rules):")
    g0 = paper.example_1_1_g0()
    show(exact(g0), "ours:")
    show(exact(g0, semantics="barany"), "Barany et al.:")

    print("\nG'0 (same laws, renamed distribution Flip'):")
    g0p = paper.example_1_1_g0_prime()
    show(exact(g0p), "ours (unchanged):")
    show(exact(g0p, semantics="barany"),
         "Barany et al. (changed!):")


def epsilon_sweep_section() -> None:
    print("\nGε sweep: TV distance of outcome(Gε) from outcome(G0)")
    print(f"{'epsilon':>10s} {'ours':>10s} {'Barany':>10s}")
    g0 = paper.example_1_1_g0()
    ours_limit = exact(g0)
    barany_limit = exact(g0, semantics="barany")
    for exponent in range(1, 11):
        epsilon = 2.0 ** -exponent
        if epsilon > 0.5:
            continue
        g_eps = paper.example_1_1_g_eps(epsilon)
        ours = exact(g_eps).tv_distance(ours_limit)
        barany = exact(g_eps, semantics="barany") \
            .tv_distance(barany_limit)
        print(f"{epsilon:10.6f} {ours:10.6f} {barany:10.6f}")
    print("-> ours converges to 0 (continuity); Barany et al. stays "
          "bounded away (the paper's motivating discontinuity).")


def h_section() -> None:
    print("\nSection 6.2 - H vs H':")
    h = paper.section_6_2_h()
    hp = paper.section_6_2_h_prime()
    show(exact(h), "H, ours:")
    show(exact(h, semantics="barany"), "H, Barany:")
    show(exact(hp).project(["R", "S"]),
         "H', ours, |{R,S}:")
    print("-> H' under ours simulates H under Barany et al. exactly.")


def simulation_section() -> None:
    print("\nGeneral simulations (Section 6.2), verified exactly:")
    for name, program in [("G0", paper.example_1_1_g0()),
                          ("H", paper.section_6_2_h())]:
        visible = program.relations()
        barany = exact(program, semantics="barany").project(visible)
        simulated = exact(
            repro.to_grohe_simulation(program)).project(visible)
        assert simulated.allclose(barany)

        ours = exact(program).project(visible)
        rewritten, _registry = repro.to_barany_simulation(program)
        simulated = exact(rewritten, semantics="barany") \
            .project(visible)
        assert simulated.allclose(ours)
        print(f"  {name}: barany-in-ours OK, ours-in-barany OK")


def main() -> None:
    example_1_1_section()
    epsilon_sweep_section()
    h_section()
    simulation_section()


if __name__ == "__main__":
    main()
