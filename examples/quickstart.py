#!/usr/bin/env python3
"""Quickstart: compile a GDatalog program once, infer many times.

This walks the full pipeline of the paper on a small example through
the ``repro.compile(...)`` facade:

1. write a program with random terms (Section 3.1) and compile it,
2. inspect its cached translation to existential Datalog (Section 3.2),
3. compute the exact output SPDB by chase-tree enumeration (Section 4),
4. verify chase independence (Theorem 6.1) on the spot,
5. sample the Monte-Carlo semantics through the same session,
6. ask queries against the probabilistic output (Fact 2.6).

Run:  python examples/quickstart.py
"""

import repro
from repro.query.aggregates import Aggregate, agg_count
from repro.query.lifted import aggregate_distribution
from repro.query.relalg import scan


def main() -> None:
    # 1. A tiny generative program: each server fails a coin flip, and
    #    pairs of failing servers on one rack escalate to an incident.
    #    Compiling caches the translation and termination report; every
    #    inference below shares them.
    compiled = repro.compile("""
        Fails(s, Flip<p>)   :- Server(s, r, p).
        Incident(r)         :- Server(s1, r, p1), Fails(s1, 1),
                               Server(s2, r, p2), Fails(s2, 1),
                               Distinct(s1, s2).
    """)
    data = repro.Instance.from_dict({
        "Server": [("a", "rack1", 0.1), ("b", "rack1", 0.2),
                   ("c", "rack2", 0.5)],
        "Distinct": [("a", "b"), ("b", "a"), ("a", "c"), ("c", "a"),
                     ("b", "c"), ("c", "b")],
    })
    print("Program:")
    print(compiled.program.pretty())

    # 2. The associated existential Datalog program (rules 3.A/3.B),
    #    computed exactly once and cached on the compiled program.
    print("\nTranslated program (Datalog with existentials):")
    print(compiled.translated)

    # 3. Exact semantics: the output SPDB with closed-form weights.
    session = compiled.on(data)
    result = session.exact()
    pdb = result.pdb
    print(f"\nExact output SPDB: {pdb.support_size()} possible worlds, "
          f"err mass {pdb.err_mass():.3g} "
          f"({result.elapsed * 1e3:.1f} ms)")
    p_incident = result.marginal(repro.Fact("Incident", ("rack1",)))
    print(f"P(Incident(rack1)) = {p_incident:.6f}   "
          f"(closed form: 0.1 * 0.2 = {0.1 * 0.2:.6f})")

    # 4. Theorem 6.1: any policy / the parallel chase gives the same SPDB.
    for policy in repro.standard_policies()[:3]:
        alt = session.exact(policy=policy)
        assert alt.pdb.allclose(pdb), policy.name
    parallel = session.exact(parallel=True)
    assert parallel.pdb.allclose(pdb)
    print("Chase independence verified: 3 policies + parallel chase "
          "produce identical SPDBs.")

    # 5. Monte-Carlo semantics converges to the exact one - 20k runs,
    #    one translation, one applicability bootstrap.
    sampled = session.sample(20_000, seed=0)
    incident = repro.Fact("Incident", ("rack1",))
    estimate = sampled.marginal(incident)
    stderr = sampled.pdb.prob_standard_error(
        lambda D: incident in D)
    print(f"Monte-Carlo estimate (n=20000): {estimate:.4f} "
          f"+/- {stderr:.4f}")

    # 6. Queries on the probabilistic output: distribution of #failures.
    failures = Aggregate(scan("Fails", "server", "bit").where(bit=1),
                         (), {"n": agg_count()})
    distribution = aggregate_distribution(pdb, failures)
    print("\nDistribution of the number of failing servers:")
    for count in sorted(distribution.support()):
        print(f"  {count} failures: {distribution.mass(count):.4f}")


if __name__ == "__main__":
    main()
