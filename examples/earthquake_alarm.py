#!/usr/bin/env python3
"""Example 3.4: the earthquake/burglary/alarm model of [3, Figure 3].

The flagship discrete example of the GDatalog line of work.  This
script compiles the paper's program **once** and then:

* computes the **exact** output SPDB by chase-tree enumeration and
  reads off per-unit alarm probabilities,
* validates them against the closed-form expression
  ``P = 1 − (1 − p_q·p_tq)(1 − r·p_tb)``,
* cross-checks with Monte-Carlo sampling through the same session,
* scales the instance up and reports chase throughput (every chase
  reuses the cached translation; per-instance sessions amortize the
  applicability bootstrap).

Run:  python examples/earthquake_alarm.py
"""

import time

import repro
from repro.workloads import paper
from repro.workloads.generators import earthquake_city_instance

COMPILED = repro.compile(paper.example_3_4_program())


def exact_section() -> None:
    instance = paper.example_3_4_instance(
        cities={"Napa": 0.03, "Davis": 0.01},
        houses={"house-1": "Napa", "house-2": "Napa"},
        businesses={"biz-1": "Davis"})
    session = COMPILED.on(instance)
    result = session.exact()
    pdb = result.pdb
    print(f"Exact SPDB: {pdb.support_size()} worlds, "
          f"total mass {pdb.total_mass():.6f}")
    print(f"{'unit':10s} {'city':7s} {'exact':>10s} "
          f"{'closed-form':>12s}")
    units = [("house-1", "Napa", 0.03), ("house-2", "Napa", 0.03),
             ("biz-1", "Davis", 0.01)]
    for unit, city, rate in units:
        exact = result.marginal(repro.Fact("Alarm", (unit,)))
        closed = paper.alarm_probability_closed_form(rate)
        print(f"{unit:10s} {city:7s} {exact:10.6f} {closed:12.6f}")
        assert abs(exact - closed) < 1e-9

    # Conditioning (an extension beyond the paper's generative part):
    # alarm probability given that Napa had an earthquake.
    quake = repro.Fact("Earthquake", ("Napa", 1))
    # observe() derives a session sharing the cached enumeration above.
    conditioned = session.observe(
        lambda D: quake in D).posterior(method="exact")
    p = conditioned.marginal(repro.Fact("Alarm", ("house-1",)))
    print(f"\nP(Alarm(house-1) | Earthquake(Napa)) = {p:.6f} "
          f"(vs unconditional "
          f"{result.marginal(repro.Fact('Alarm', ('house-1',))):.6f})")


def monte_carlo_section() -> None:
    session = COMPILED.on(paper.example_3_4_instance())
    exact = session.exact()
    sampled = session.sample(20_000, seed=0)
    print("\nMonte-Carlo cross-check (n=20000):")
    for unit in ("house-1", "biz-1"):
        f = repro.Fact("Alarm", (unit,))
        print(f"  {unit}: exact {exact.marginal(f):.4f}  "
              f"sampled {sampled.marginal(f):.4f}")


def scaling_section() -> None:
    print("\nChase throughput while scaling the city grid:")
    print(f"{'cities':>7s} {'units':>6s} {'facts out':>10s} "
          f"{'steps':>6s} {'seconds':>8s}")
    for n_cities in (5, 20, 50):
        instance = earthquake_city_instance(n_cities, 4, seed=1)
        session = COMPILED.on(instance, seed=0)
        start = time.perf_counter()
        run = session.run()
        elapsed = time.perf_counter() - start
        assert run.terminated
        print(f"{n_cities:7d} {n_cities * 4:6d} "
              f"{len(run.instance):10d} {run.steps:6d} {elapsed:8.3f}")


def main() -> None:
    exact_section()
    monte_carlo_section()
    scaling_section()


if __name__ == "__main__":
    main()
