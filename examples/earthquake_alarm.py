#!/usr/bin/env python3
"""Example 3.4: the earthquake/burglary/alarm model of [3, Figure 3].

The flagship discrete example of the GDatalog line of work.  This
script:

* builds the paper's program and the two-city input instance,
* computes the **exact** output SPDB by chase-tree enumeration and
  reads off per-unit alarm probabilities,
* validates them against the closed-form expression
  ``P = 1 − (1 − p_q·p_tq)(1 − r·p_tb)``,
* cross-checks with Monte-Carlo sampling,
* scales the instance up and reports chase throughput.

Run:  python examples/earthquake_alarm.py
"""

import time

import repro
from repro.workloads import paper
from repro.workloads.generators import earthquake_city_instance


def exact_section() -> None:
    program = paper.example_3_4_program()
    instance = paper.example_3_4_instance(
        cities={"Napa": 0.03, "Davis": 0.01},
        houses={"house-1": "Napa", "house-2": "Napa"},
        businesses={"biz-1": "Davis"})
    pdb = repro.exact_spdb(program, instance)
    print(f"Exact SPDB: {pdb.support_size()} worlds, "
          f"total mass {pdb.total_mass():.6f}")
    print(f"{'unit':10s} {'city':7s} {'exact':>10s} "
          f"{'closed-form':>12s}")
    units = [("house-1", "Napa", 0.03), ("house-2", "Napa", 0.03),
             ("biz-1", "Davis", 0.01)]
    for unit, city, rate in units:
        exact = pdb.marginal(repro.Fact("Alarm", (unit,)))
        closed = paper.alarm_probability_closed_form(rate)
        print(f"{unit:10s} {city:7s} {exact:10.6f} {closed:12.6f}")
        assert abs(exact - closed) < 1e-9

    # Conditioning (an extension beyond the paper's generative part):
    # alarm probability given that Napa had an earthquake.
    quake = repro.Fact("Earthquake", ("Napa", 1))
    conditioned = pdb.condition(lambda D: quake in D)
    p = conditioned.marginal(repro.Fact("Alarm", ("house-1",)))
    print(f"\nP(Alarm(house-1) | Earthquake(Napa)) = {p:.6f} "
          f"(vs unconditional "
          f"{pdb.marginal(repro.Fact('Alarm', ('house-1',))):.6f})")


def monte_carlo_section() -> None:
    program = paper.example_3_4_program()
    instance = paper.example_3_4_instance()
    exact = repro.exact_spdb(program, instance)
    sampled = repro.sample_spdb(program, instance, n=20_000, rng=0)
    print("\nMonte-Carlo cross-check (n=20000):")
    for unit in ("house-1", "biz-1"):
        f = repro.Fact("Alarm", (unit,))
        print(f"  {unit}: exact {exact.marginal(f):.4f}  "
              f"sampled {sampled.marginal(f):.4f}")


def scaling_section() -> None:
    program = paper.example_3_4_program()
    print("\nChase throughput while scaling the city grid:")
    print(f"{'cities':>7s} {'units':>6s} {'facts out':>10s} "
          f"{'steps':>6s} {'seconds':>8s}")
    for n_cities in (5, 20, 50):
        instance = earthquake_city_instance(n_cities, 4, seed=1)
        start = time.perf_counter()
        run = repro.run_chase(program, instance, rng=0)
        elapsed = time.perf_counter() - start
        assert run.terminated
        print(f"{n_cities:7d} {n_cities * 4:6d} "
              f"{len(run.instance):10d} {run.steps:6d} {elapsed:8.3f}")


def main() -> None:
    exact_section()
    monte_carlo_section()
    scaling_section()


if __name__ == "__main__":
    main()
